//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's three bench targets compiling and runnable with
//! `cargo bench` without crates.io access. Measurement is intentionally
//! simple — warm-up, then timed batches around `std::time::Instant`, with
//! median-of-batches ns/iter printed per benchmark — no statistics engine,
//! HTML reports, or regression baselines. Honours `WSN_QUICK=1` by cutting
//! measuring time ~10×, like the workspace's experiment binaries.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

fn quick() -> bool {
    std::env::var("WSN_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Run one benchmark closure and report its per-iteration time.
pub struct Bencher {
    measured: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = if quick() {
            Duration::from_millis(30)
        } else {
            Duration::from_millis(300)
        };
        // Warm-up and per-iteration estimate.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best: Option<Duration> = None;
        let mut iters = 0u64;
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t0.elapsed() / batch as u32;
            iters += batch;
            best = Some(match best {
                Some(b) => b.min(per_iter),
                None => per_iter,
            });
        }
        self.measured = best;
        self.iters_done = iters;
    }
}

fn report(id: &str, b: &Bencher) {
    match b.measured {
        Some(t) => println!(
            "bench: {id:<48} {:>12.1} ns/iter ({} iters)",
            t.as_nanos() as f64,
            b.iters_done
        ),
        None => println!("bench: {id:<48} (no measurement — iter() never called)"),
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measured: None,
        iters_done: 0,
    };
    f(&mut b);
    report(id, &b);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().id, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim sizes batches by wall
    /// clock, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into().id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        std::env::set_var("WSN_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
    }
}
