//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow API surface it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real `SmallRng`
//!   uses on 64-bit targets), seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] — deterministic construction.
//! * [`RngExt`] (re-exported as [`Rng`]) — `random::<T>()` and
//!   `random_range(..)` for the primitive types the simulations draw.
//!
//! Determinism contract: for a fixed seed the output stream is fixed by
//! this file alone — there is no platform, thread or scheduler dependence —
//! so every experiment in the workspace reproduces bit-for-bit.

use core::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. Everything else is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG's raw bits
/// (`rng.random::<T>()`).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

macro_rules! standard_signed {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_signed!(i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// bits-to-double construction).
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (`rng.random_range(lo..hi)`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Lemire-style widening multiply keeps modulo bias below
                // 2^-64 for the span sizes the simulations use.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return Standard::from_rng(rng);
                }
                let span = (hi as u128).wrapping_sub(lo as u128) as u64 + 1;
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u: $t = Standard::from_rng(rng);
                let v = self.start + u * (self.end - self.start);
                // u < 1 does not guarantee v < end: for narrow ranges the
                // multiply-add rounds up to the excluded bound. Clamp to
                // the largest value below it (real rand guards likewise).
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let u: $t = Standard::from_rng(rng);
                // Closed-interval draw; the endpoint is hit with the same
                // measure-zero probability as any other point.
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draw a `T` from its standard (full-range / unit-interval)
    /// distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from a half-open or inclusive range.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli(p) draw.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept so that both `use rand::Rng` and `use rand::RngExt` import the
/// same extension trait (matching code written against either spelling).
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind the real crate's 64-bit
    /// `SmallRng`. Fast, 256-bit state, passes BigCrush; not
    /// cryptographically secure (nothing here needs that).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        /// Expand the 64-bit seed through SplitMix64, the seeding procedure
        /// recommended by the xoshiro authors: distinct seeds yield
        /// decorrelated streams.
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let equal = (0..256)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.random_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&v));
            let w = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }
}
