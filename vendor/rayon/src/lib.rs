//! Offline stand-in for `rayon`.
//!
//! The workspace's parallel call sites are all embarrassingly parallel
//! Monte-Carlo replicate sweeps of the form
//! `(0..reps).into_par_iter().map(f).sum()` / `.collect()` /
//! `.flat_map_iter(f).collect()`, with per-replicate RNG seeds derived from
//! the item index — so results are schedule-independent by construction.
//!
//! This shim reproduces exactly that surface. Work is fanned out over
//! `std::thread::scope` through a shared batch queue with guided batch
//! sizes — workers that finish early steal the remaining batches, so a few
//! slow items (a dense shard, a big tile row) no longer stall the whole
//! fan-out the way static one-chunk-per-worker splitting did. Every result
//! is tagged with its input index and the output is sorted back into input
//! order, so `collect` preserves the sequential ordering and every
//! reduction is deterministic regardless of which worker ran what.

use std::collections::VecDeque;
use std::iter::Sum;
use std::sync::Mutex;
use std::thread;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of workers: `RAYON_NUM_THREADS` when set (like real rayon's
/// global pool), otherwise the machine's available parallelism — bounded so
/// that tiny sweeps don't pay thread spawn cost for nothing.
///
/// The variable is re-read on every fan-out, so tests can vary the thread
/// count within one process to assert schedule independence.
fn workers(n_items: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(n_items).max(1)
}

/// Largest batch a worker claims in one queue access. Guided scheduling
/// shrinks batches as the queue drains; the cap bounds the worst-case
/// imbalance from one early oversized claim.
const MAX_BATCH: usize = 256;

/// Run `f` over `items` on a scoped thread pool, preserving input order in
/// the concatenated output.
///
/// Scheduling is guided self-stealing: indexed items sit in a shared deque
/// and each worker repeatedly claims a batch of `remaining / (workers * 4)`
/// (clamped to `1..=MAX_BATCH`), so early batches are large (low contention)
/// and the tail splits finely enough that no worker idles while another
/// still holds a long run of slow items. Results carry their input index
/// and are sorted back into input order before returning — callers observe
/// exactly the sequential result, at any thread count.
fn run_chunked<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let nw = workers(n);
    if nw <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(n);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nw);
        for _ in 0..nw {
            let (queue, f) = (&queue, &f);
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, U)> = Vec::new();
                let mut batch: Vec<(usize, T)> = Vec::new();
                loop {
                    {
                        let mut q = queue.lock().expect("rayon-shim queue poisoned");
                        if q.is_empty() {
                            return out;
                        }
                        let take = (q.len() / (nw * 4)).clamp(1, MAX_BATCH).min(q.len());
                        batch.extend(q.drain(..take));
                    }
                    out.extend(batch.drain(..).map(|(i, x)| (i, f(x))));
                }
            }));
        }
        for h in handles {
            // Re-raise worker panics with their original payload so
            // assertion messages survive the fan-out.
            match h.join() {
                Ok(part) => tagged.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(tagged.len() == n);
    tagged.into_iter().map(|(_, u)| u).collect()
}

/// Conversion into a "parallel" iterator, mirroring rayon's entry point.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// The adaptor/terminal surface shared by all pipeline stages.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materialise the pipeline, running stages on the worker pool.
    fn run(self) -> Vec<Self::Item>;

    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, f: F) -> Map<Self, F> {
        Map { base: self, f }
    }

    /// rayon's `flat_map_iter`: the per-item expansion runs sequentially
    /// inside the owning worker.
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    fn filter<F: Fn(&Self::Item) -> bool + Sync>(self, f: F) -> Filter<Self, F> {
        Filter { base: self, f }
    }

    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        self.run().into_iter().for_each(f);
    }

    fn sum<S: Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }

    fn count(self) -> usize {
        self.run().len()
    }

    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }
}

/// Source stage: an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// `map` stage.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U;
    fn run(self) -> Vec<U> {
        run_chunked(self.base.run(), self.f)
    }
}

/// `flat_map_iter` stage.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U::Item;
    fn run(self) -> Vec<U::Item> {
        run_chunked(self.base.run(), |x| {
            (self.f)(x).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// `filter` stage.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    fn run(self) -> Vec<P::Item> {
        run_chunked(
            self.base.run(),
            |x| if (self.f)(&x) { Some(x) } else { None },
        )
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0u64..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sum_matches_sequential() {
        let par: u64 = (0u64..10_000).into_par_iter().map(|x| x % 7).sum();
        let seq: u64 = (0u64..10_000).map(|x| x % 7).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let out: Vec<u64> = (0u64..100)
            .into_par_iter()
            .flat_map_iter(|x| vec![x, x + 1000])
            .collect();
        let seq: Vec<u64> = (0u64..100).flat_map(|x| vec![x, x + 1000]).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn filter_and_count() {
        let n = (0u64..1000).into_par_iter().filter(|x| x % 3 == 0).count();
        assert_eq!(n, 334);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0u64..0).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_workloads_preserve_order() {
        // A handful of heavy items at the front would pin static chunking's
        // first worker; the batch queue must still return input order.
        let out: Vec<u64> = (0u64..500)
            .into_par_iter()
            .map(|x| {
                if x < 4 {
                    // Busy-ish work, deterministic result.
                    (0..50_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
                } else {
                    x
                }
            })
            .collect();
        let seq: Vec<u64> = (0u64..500)
            .map(|x| {
                if x < 4 {
                    (0..50_000u64).fold(x, |a, b| a.wrapping_add(b % 13))
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn single_item_and_single_worker_paths() {
        let out: Vec<u64> = (0u64..1).into_par_iter().map(|x| x + 7).collect();
        assert_eq!(out, vec![7]);
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * 3).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(out, (0u64..100).map(|x| x * 3).collect::<Vec<_>>());
    }
}
