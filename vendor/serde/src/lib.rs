//! Offline stand-in for `serde`.
//!
//! crates.io is unreachable in the build environment, so the workspace
//! vendors a minimal serialisation framework with the same spelling as
//! serde's: a [`Serialize`] / [`Deserialize`] trait pair plus
//! `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//! shim). Instead of serde's visitor-based data model, both traits go
//! through one concrete self-describing tree, [`value::Value`] — all the
//! workspace ever does with serde is dump experiment records to JSON, and
//! `serde_json`'s shim renders/parses that tree.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Error type shared by serialisation and deserialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Reconstruction from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::$variant(*self as $conv))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i128()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| Error::new(concat!("number out of range for ", stringify!($t)))),
                    other => Err(Error::new(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

ser_int!(
    u8 => U as u64, u16 => U as u64, u32 => U as u64, u64 => U as u64, usize => U as u64,
    i8 => I as i64, i16 => I as i64, i32 => I as i64, i64 => I as i64, isize => I as i64
);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::new(format!("expected float, found {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}

ser_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
