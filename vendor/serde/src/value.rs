//! The self-describing tree both shim traits serialise through — the shape
//! of a JSON document.

use std::ops::Index;

/// A JSON-shaped number. Integers keep full 64-bit fidelity rather than
/// round-tripping through f64 (experiment seeds are u64).
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

/// Numeric equality: `U(5) == I(5)` (the parser maps every non-negative
/// integer to `U`, so round-tripped `I` values must still compare equal),
/// while floats stay a distinct class, as in serde_json (`5.0 != 5`).
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::F(a), Number::F(b)) => a == b,
            (Number::F(_), _) | (_, Number::F(_)) => false,
            (a, b) => a.as_i128() == b.as_i128(),
        }
    }
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    pub(crate) fn as_i128(&self) -> Option<i128> {
        match *self {
            Number::U(u) => Some(u as i128),
            Number::I(i) => Some(i as i128),
            Number::F(f) if f.fract() == 0.0 => Some(f as i128),
            Number::F(_) => None,
        }
    }
}

/// A JSON document. Objects are ordered field lists (insertion order is the
/// struct's declaration order), matching what the derive macro emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing fields or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    /// serde_json-style indexing: missing keys yield `Null` rather than
    /// panicking.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}
