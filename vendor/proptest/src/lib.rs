//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property suite uses: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! numeric [`Strategy`] ranges (`0u64..500`, `5.0f64..45.0`), and the
//! `prop_assert!` / `prop_assert_eq!` family.
//!
//! Unlike upstream proptest this shim is **fully deterministic**: case `i`
//! of a test is generated from an RNG seeded by `(BASE_SEED, test name,
//! i)`, so a reported failing case reproduces exactly on re-run with no
//! persistence files. There is no shrinking — the failure report instead
//! carries the concrete generated inputs, which the deterministic seeding
//! makes stable.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Fixed base seed for case generation (change to explore a different
/// deterministic sample of the input space).
pub const BASE_SEED: u64 = 0x5EED_CAFE_F00D;

/// Subset of proptest's run configuration: the number of generated cases.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Deliberately lower than upstream's 256: the workspace caps property
    /// suites so `cargo test -q` stays in the seconds range.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property-level assertion, or a `prop_assume!` rejection.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    pub message: String,
    pub rejected: bool,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// `prop_assume!` failed: skip this case rather than fail the test.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }
}

/// Input generators. Only what the suite needs: uniform draws from
/// half-open and inclusive numeric ranges, plus `Just`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SmallRng, Strategy};
    use rand::RngExt;

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A constant "strategy".
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// FNV-1a over the test name, mixed with the base seed and case index, so
/// each (test, case) pair has an independent deterministic stream.
pub fn case_rng(test_name: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(BASE_SEED ^ h ^ ((case as u64) << 32))
}

/// Drive one property: run `body` for each generated case, panicking (the
/// test failure) on the first case whose assertions fail.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut SmallRng, &mut String) -> Result<(), TestCaseError>,
{
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = case_rng(test_name, case);
        let mut inputs = String::new();
        if let Err(e) = body(&mut rng, &mut inputs) {
            if e.rejected {
                rejected += 1;
                continue;
            }
            panic!(
                "property `{test_name}` failed at case {case}/{} with inputs [{inputs}]: {}\n\
                 (deterministic: re-running reproduces this case)",
                config.cases, e.message
            );
        }
    }
    // A property whose every case was rejected by prop_assume! asserted
    // nothing; passing silently would hide lost coverage (upstream
    // proptest aborts on too many rejects for the same reason).
    assert!(
        config.cases == 0 || rejected < config.cases,
        "property `{test_name}`: all {rejected} generated cases were rejected by prop_assume!; \
         the test exercised nothing — widen the strategy or the assumption"
    );
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&__config, stringify!($name), |__rng, __inputs| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), __rng);
                        if !__inputs.is_empty() { __inputs.push_str(", "); }
                        __inputs.push_str(&format!("{} = {:?}", stringify!($arg), $arg));
                    )+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { #![proptest_config($crate::ProptestConfig::default())] $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}` (both: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            __l,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Generated values respect their range bounds.
        #[test]
        fn ranges_respected(x in 0u64..100, y in 1.5f64..2.5) {
            prop_assert!(x < 100);
            prop_assert!((1.5..2.5).contains(&y));
        }
    }

    proptest! {
        /// Default config path (no header) also compiles and runs.
        #[test]
        fn default_config_runs(x in 0u32..10) {
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let a: u64 = {
            let mut rng = crate::case_rng("some_test", 3);
            Strategy::generate(&(0u64..1000), &mut rng)
        };
        let b: u64 = {
            let mut rng = crate::case_rng("some_test", 3);
            Strategy::generate(&(0u64..1000), &mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property `failing` failed at case 0")]
    fn failure_reports_case_and_inputs() {
        let cfg = ProptestConfig::with_cases(4);
        crate::run_cases(&cfg, "failing", |_rng, inputs| {
            inputs.push_str("x = 1");
            Err(TestCaseError::fail("boom"))
        });
    }
}
