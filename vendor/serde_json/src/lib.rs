//! Offline stand-in for `serde_json`, over the `serde` shim's [`Value`]
//! data model: [`to_string`] / [`to_string_pretty`] render, [`from_str`]
//! parses (full JSON grammar: nesting, escapes, exponents), and
//! [`Value`] re-exports the tree with serde_json-style indexing
//! (`v["field"].as_u64()`).

pub use serde::value::{Number, Value};
pub use serde::Error;

/// Serialise to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON document.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON document",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            level,
            ('[', ']'),
            write_value,
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            level,
            ('{', '}'),
            |out, (k, val), ind, lvl| {
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, lvl);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * level));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        // Non-finite floats have no JSON representation; serde_json emits
        // null for them.
        Number::F(f) if !f.is_finite() => out.push_str("null"),
        Number::F(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // Keep floats recognisable as floats on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the ASCII
                            // field names this workspace emits; reject them
                            // rather than decode incorrectly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::new("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let n = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I(i)
            } else {
                Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                )
            }
        } else {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("grid".into())),
            ("n".into(), Value::Number(Number::U(42))),
            ("mean".into(), Value::Number(Number::F(1.5))),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"grid","n":42,"mean":1.5,"flags":[true,null]}"#
        );
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_indents() {
        let v = Value::Object(vec![("a".into(), Value::Number(Number::U(1)))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn indexing_and_accessors() {
        let v: Value =
            from_str(r#"{"max_degree": 4, "stretch": 1.25, "tags": ["a", "b"]}"#).unwrap();
        assert_eq!(v["max_degree"].as_u64(), Some(4));
        assert_eq!(v["stretch"].as_f64(), Some(1.25));
        assert_eq!(v["tags"][1].as_str(), Some("b"));
        assert!(v["absent"].is_null());
    }

    #[test]
    fn parses_escapes_and_exponents() {
        let v: Value = from_str(r#"{"s": "line\nbreak A", "e": 2.5e3, "neg": -7}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("line\nbreak A"));
        assert_eq!(v["e"].as_f64(), Some(2500.0));
        assert_eq!(v["neg"].as_i64(), Some(-7));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} extra").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }

    #[test]
    fn float_without_fraction_keeps_point() {
        let s = to_string(&Value::Number(Number::F(3.0))).unwrap();
        assert_eq!(s, "3.0");
    }
}
