//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no crates.io access), so this macro walks
//! the raw `proc_macro` token trees itself. It supports exactly the shapes
//! the workspace derives on — named-field structs and unit-variant enums,
//! no generics — and emits a `compile_error!` for anything else, so an
//! unsupported use fails loudly at the derive site instead of misbehaving
//! at run time.
//!
//! Generated impls target the `serde` shim's `Value`-tree data model:
//! structs become ordered JSON objects (declaration order), unit enum
//! variants become their name as a JSON string — matching real serde's
//! default representation for these shapes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    /// Named-field struct: `(field_name, type_tokens)` in declaration order.
    Struct(Vec<(String, String)>),
    /// Unit-variant enum: variant names in declaration order.
    Enum(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => render(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Skip leading attributes (`#[...]`, including desugared doc comments).
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < toks.len() {
            if let TokenTree::Group(g) = &toks[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&toks, skip_attrs(&toks, 0));

    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim: expected a type name".into()),
    };
    i += 1;

    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported"
        ));
    }

    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
            "serde shim: `{name}` must be a braced struct or enum (tuple/unit shapes unsupported)"
        ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => parse_struct_fields(&name, &body).map(|f| (name, Shape::Struct(f))),
        "enum" => parse_enum_variants(&name, &body).map(|v| (name, Shape::Enum(v))),
        other => Err(format!("serde shim: cannot derive for `{other}`")),
    }
}

fn parse_struct_fields(name: &str, body: &[TokenTree]) -> Result<Vec<(String, String)>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_vis(body, skip_attrs(body, i));
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => return Err(format!("serde shim: unexpected token `{t}` in `{name}`")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim: `{name}` must use named fields")),
        }
        // Collect type tokens up to the next top-level comma (tracking
        // angle-bracket depth so `Foo<A, B>` stays intact).
        let mut ty = String::new();
        let mut depth = 0i32;
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&body[i].to_string());
            i += 1;
        }
        fields.push((field, ty));
    }
    Ok(fields)
}

fn parse_enum_variants(name: &str, body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            t => {
                return Err(format!(
                    "serde shim: unexpected token `{t}` in enum `{name}`"
                ))
            }
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(_) => {
                return Err(format!(
                    "serde shim: enum `{name}` has a non-unit variant `{variant}` (unsupported)"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn render(name: &str, shape: &Shape, mode: Mode) -> String {
    match (shape, mode) {
        (Shape::Struct(fields), Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "__fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Struct(fields), Mode::Deserialize) => {
            let inits: String = fields
                .iter()
                .map(|(f, ty)| {
                    format!(
                        "{f}: <{ty} as ::serde::Deserialize>::from_value(\
                             __v.get({f:?}).ok_or_else(|| ::serde::Error::new(\
                                 concat!(\"missing field `\", {f:?}, \"` in \", {name:?})))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::new(\
                                     format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(\
                                 format!(\"expected string for {name}, found {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
