//! # wsn-perc
//!
//! Site percolation on Z² — the analytical engine of the paper.
//!
//! Both SENS constructions couple tiles of R² to sites of Z²: a site is
//! *open* iff its tile is *good*. Everything the paper proves then flows
//! through standard percolation facts:
//!
//! * supercriticality (`P[good] > p_c ≈ 0.5927`) ⇒ an infinite cluster ⇒ an
//!   infinite SENS subgraph (Theorems 2.2 / 2.4);
//! * Antal–Pisztora chemical-distance bounds ⇒ constant stretch
//!   (Theorem 3.2, via Lemma 1.1);
//! * exponential decay of finite-cluster radii ⇒ coverage (Theorem 3.3);
//! * Angel et al. routing on the percolated mesh ⇒ the paper's Fig. 9
//!   routing algorithm with constant expected probe overhead.
//!
//! This crate implements the finite-volume versions of all four: lattice
//! sampling, cluster structure, critical-point estimation, chemical
//! distance, and x–y-path routing with distributed-BFS repair.

pub mod chemical;
pub mod cluster;
pub mod critical;
pub mod lattice;
pub mod routing;
pub mod sample;

pub use lattice::{Lattice, Site};
pub use routing::{route_xy, RouteOutcome};

/// Accepted bracket for the site-percolation threshold on Z²; the paper
/// quotes `p_c ∈ [0.592, 0.593]` (its reference \[13\]) and uses 0.593 as the
/// goodness target for both constructions.
pub const PC_SITE_LOWER: f64 = 0.592;
pub const PC_SITE_UPPER: f64 = 0.593;
