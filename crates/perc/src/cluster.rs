//! Open-cluster structure.
//!
//! An *open cluster* is a maximal set of open sites connected through open
//! edges (edges between open sites). Labelling uses union–find over the open
//! sub-lattice; a BFS reference implementation cross-checks it in tests.

use crate::lattice::{Lattice, Site};
use wsn_graph::UnionFind;

/// Cluster labelling of a lattice.
#[derive(Clone, Debug)]
pub struct Clusters {
    /// For each site id: the cluster root id, or `u32::MAX` for closed sites.
    pub label: Vec<u32>,
    /// Number of open clusters.
    pub count: usize,
    /// Size of the largest cluster (0 when no site is open).
    pub largest_size: usize,
    /// Root label of the largest cluster (`u32::MAX` when none).
    pub largest_root: u32,
}

impl Clusters {
    #[inline]
    pub fn same_cluster(&self, l: &Lattice, a: Site, b: Site) -> bool {
        let (la, lb) = (self.label[l.id(a) as usize], self.label[l.id(b) as usize]);
        la != u32::MAX && la == lb
    }

    #[inline]
    pub fn in_largest(&self, l: &Lattice, s: Site) -> bool {
        self.largest_root != u32::MAX && self.label[l.id(s) as usize] == self.largest_root
    }

    /// Mask of sites in the largest cluster.
    pub fn largest_mask(&self) -> Vec<bool> {
        self.label
            .iter()
            .map(|&l| l != u32::MAX && l == self.largest_root)
            .collect()
    }
}

/// Label all open clusters with union–find (near-linear time).
pub fn label_clusters(l: &Lattice) -> Clusters {
    let n = l.len();
    let mut uf = UnionFind::new(n);
    for s in l.sites() {
        if !l.is_open(s) {
            continue;
        }
        // Union with right and up neighbours only — each open edge once.
        let right = (s.0 + 1, s.1);
        if l.in_bounds(right) && l.is_open(right) {
            uf.union(l.id(s), l.id(right));
        }
        let up = (s.0, s.1 + 1);
        if l.in_bounds(up) && l.is_open(up) {
            uf.union(l.id(s), l.id(up));
        }
    }
    let mut label = vec![u32::MAX; n];
    let mut sizes: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for s in l.sites() {
        if l.is_open(s) {
            let root = uf.find(l.id(s));
            label[l.id(s) as usize] = root;
            *sizes.entry(root).or_insert(0) += 1;
        }
    }
    let (largest_root, largest_size) = sizes
        .iter()
        .max_by_key(|&(r, s)| (*s, std::cmp::Reverse(*r)))
        .map(|(&r, &s)| (r, s))
        .unwrap_or((u32::MAX, 0));
    Clusters {
        label,
        count: sizes.len(),
        largest_size,
        largest_root,
    }
}

/// BFS reference labelling (used by tests as an oracle).
pub fn label_clusters_bfs(l: &Lattice) -> Clusters {
    let n = l.len();
    let mut label = vec![u32::MAX; n];
    let mut count = 0usize;
    let mut largest_size = 0usize;
    let mut largest_root = u32::MAX;
    let mut queue = std::collections::VecDeque::new();
    for start in l.sites() {
        if !l.is_open(start) || label[l.id(start) as usize] != u32::MAX {
            continue;
        }
        let root = l.id(start);
        count += 1;
        let mut size = 0usize;
        label[root as usize] = root;
        queue.push_back(start);
        while let Some(s) = queue.pop_front() {
            size += 1;
            for nb in l.neighbors(s) {
                if l.is_open(nb) && label[l.id(nb) as usize] == u32::MAX {
                    label[l.id(nb) as usize] = root;
                    queue.push_back(nb);
                }
            }
        }
        if size > largest_size {
            largest_size = size;
            largest_root = root;
        }
    }
    Clusters {
        label,
        count,
        largest_size,
        largest_root,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::bernoulli_lattice;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn all_open_is_one_cluster() {
        let l = Lattice::open_all(5, 4);
        let c = label_clusters(&l);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest_size, 20);
        assert!(c.same_cluster(&l, (0, 0), (4, 3)));
    }

    #[test]
    fn all_closed_has_no_clusters() {
        let l = Lattice::closed(5, 4);
        let c = label_clusters(&l);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest_size, 0);
        assert_eq!(c.largest_root, u32::MAX);
        assert!(!c.in_largest(&l, (0, 0)));
    }

    #[test]
    fn diagonal_sites_are_not_connected() {
        // Site percolation uses 4-neighbour adjacency: a diagonal pair is two
        // clusters.
        let mut l = Lattice::closed(3, 3);
        l.set((0, 0), true);
        l.set((1, 1), true);
        let c = label_clusters(&l);
        assert_eq!(c.count, 2);
        assert!(!c.same_cluster(&l, (0, 0), (1, 1)));
    }

    #[test]
    fn two_strips() {
        // Rows 0 and 2 open, row 1 closed → two clusters of 4.
        let l = Lattice::from_fn(4, 3, |_, j| j != 1);
        let c = label_clusters(&l);
        assert_eq!(c.count, 2);
        assert_eq!(c.largest_size, 4);
        assert!(c.same_cluster(&l, (0, 0), (3, 0)));
        assert!(!c.same_cluster(&l, (0, 0), (0, 2)));
    }

    #[test]
    fn largest_mask_matches_membership() {
        let l = Lattice::from_fn(5, 1, |i, _| i != 2); // sizes 2 and 2 → tie
        let c = label_clusters(&l);
        let mask = c.largest_mask();
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
        for s in l.sites() {
            assert_eq!(mask[l.id(s) as usize], c.in_largest(&l, s));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Union–find labelling ≡ BFS labelling as partitions.
        #[test]
        fn prop_uf_equals_bfs(seed in 0u64..500, cols in 1usize..24, rows in 1usize..24, p in 0.0f64..1.0) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let l = bernoulli_lattice(&mut rng, cols, rows, p);
            let uf = label_clusters(&l);
            let bfs = label_clusters_bfs(&l);
            prop_assert_eq!(uf.count, bfs.count);
            prop_assert_eq!(uf.largest_size, bfs.largest_size);
            // Same partition (labels may differ).
            for a in l.sites() {
                for b in l.sites() {
                    prop_assert_eq!(
                        uf.same_cluster(&l, a, b),
                        bfs.same_cluster(&l, a, b)
                    );
                }
            }
        }
    }
}
