//! Distributed routing on the percolated mesh — the paper's Fig. 9
//! algorithm, after Angel, Benjamini, Ofek & Wieder (PODC 2005).
//!
//! The packet follows the canonical x–y path (fix the x coordinate first,
//! then y). Before each step the current node *probes* whether the next site
//! is open; if it is closed, a distributed BFS over open sites finds the next
//! open site lying further along the x–y path, the packet is forwarded along
//! the BFS tree, and normal routing resumes. Angel et al. prove the expected
//! number of probes is O(shortest path length); experiment EXP-F9 measures
//! exactly that ratio.

use crate::lattice::{Lattice, Site};
use serde::Serialize;
use std::collections::VecDeque;

/// Result of routing one packet.
#[derive(Clone, Debug, Serialize)]
pub struct RouteOutcome {
    pub delivered: bool,
    /// Lattice steps actually travelled by the packet.
    pub hops: u32,
    /// Probe messages: one per `isOpen` check plus one per site expanded
    /// during BFS repairs.
    pub probes: u32,
    /// Number of BFS repairs that were needed.
    pub repairs: u32,
    /// Sites visited by the packet, `src` first; ends at `dst` iff delivered.
    pub path: Vec<Site>,
}

/// Position of `s` along the canonical x–y path `curr → dst`, if it lies on
/// it: the path walks horizontally from `curr.x` to `dst.x` at height
/// `curr.y`, then vertically to `dst.y` at column `dst.x`. Position 0 is
/// `curr` itself.
fn xy_path_position(curr: Site, dst: Site, s: Site) -> Option<u32> {
    let horiz = curr.0.abs_diff(dst.0);
    let between = |a: usize, b: usize, x: usize| (a.min(b)..=a.max(b)).contains(&x);
    if s.1 == curr.1 && between(curr.0, dst.0, s.0) {
        // On the horizontal leg. (When curr.y == dst.y the vertical leg is
        // empty, so this covers the whole path.)
        Some(s.0.abs_diff(curr.0) as u32)
    } else if s.0 == dst.0 && between(curr.1, dst.1, s.1) {
        Some((horiz + s.1.abs_diff(curr.1)) as u32)
    } else {
        None
    }
}

/// The next site on the canonical x–y path from `curr` toward `dst`.
fn compute_next(curr: Site, dst: Site) -> Site {
    if curr.0 != dst.0 {
        if curr.0 < dst.0 {
            (curr.0 + 1, curr.1)
        } else {
            (curr.0 - 1, curr.1)
        }
    } else if curr.1 < dst.1 {
        (curr.0, curr.1 + 1)
    } else {
        (curr.0, curr.1 - 1)
    }
}

/// BFS from `curr` through open sites until reaching a site on the x–y path
/// `curr → dst` at position ≥ 1. Returns the site, the tree path to it
/// (excluding `curr`), and the number of sites expanded.
fn bfs_repair(lat: &Lattice, curr: Site, dst: Site) -> (Option<(Site, Vec<Site>)>, u32) {
    let mut parent: Vec<u32> = vec![u32::MAX; lat.len()];
    let mut queue = VecDeque::new();
    parent[lat.id(curr) as usize] = lat.id(curr);
    queue.push_back(curr);
    let mut expanded = 0u32;
    while let Some(s) = queue.pop_front() {
        expanded += 1;
        if s != curr {
            if let Some(k) = xy_path_position(curr, dst, s) {
                if k >= 1 {
                    // Reconstruct tree path curr → s.
                    let mut rev = vec![s];
                    let mut c = s;
                    while c != curr {
                        c = lat.site(parent[lat.id(c) as usize]);
                        if c != curr {
                            rev.push(c);
                        }
                    }
                    rev.reverse();
                    return (Some((s, rev)), expanded);
                }
            }
        }
        for nb in lat.neighbors(s) {
            if lat.is_open(nb) && parent[lat.id(nb) as usize] == u32::MAX {
                parent[lat.id(nb) as usize] = lat.id(s);
                queue.push_back(nb);
            }
        }
    }
    (None, expanded)
}

/// Route a packet from `src` to `dst` with the Fig. 9 algorithm.
///
/// Terminates after at most `D(src, dst)` outer iterations because every
/// move — direct step or BFS repair — strictly decreases the L¹ distance to
/// the target. Undeliverable packets (endpoints closed, or in different
/// open clusters) return `delivered = false` with the probes spent
/// discovering that.
pub fn route_xy(lat: &Lattice, src: Site, dst: Site) -> RouteOutcome {
    assert!(
        lat.in_bounds(src) && lat.in_bounds(dst),
        "route endpoints out of bounds"
    );
    let mut out = RouteOutcome {
        delivered: false,
        hops: 0,
        probes: 0,
        repairs: 0,
        path: vec![src],
    };
    if !lat.is_open(src) || !lat.is_open(dst) {
        return out;
    }
    let mut curr = src;
    while curr != dst {
        let next = compute_next(curr, dst);
        out.probes += 1; // the isOpen(next) check
        if lat.is_open(next) {
            curr = next;
            out.hops += 1;
            out.path.push(curr);
        } else {
            out.repairs += 1;
            let (found, expanded) = bfs_repair(lat, curr, dst);
            out.probes += expanded;
            match found {
                Some((v, tree_path)) => {
                    out.hops += tree_path.len() as u32;
                    out.path.extend_from_slice(&tree_path);
                    curr = v;
                }
                None => return out, // different cluster: undeliverable
            }
        }
    }
    out.delivered = true;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_position_enumerates_the_path() {
        let curr = (1, 1);
        let dst = (4, 3);
        // Path: (1,1) (2,1) (3,1) (4,1) (4,2) (4,3) — positions 0..=5.
        let expect = [
            ((1, 1), 0),
            ((2, 1), 1),
            ((3, 1), 2),
            ((4, 1), 3),
            ((4, 2), 4),
            ((4, 3), 5),
        ];
        for (s, k) in expect {
            assert_eq!(xy_path_position(curr, dst, s), Some(k), "{s:?}");
        }
        assert_eq!(xy_path_position(curr, dst, (2, 2)), None);
        assert_eq!(xy_path_position(curr, dst, (0, 1)), None);
        assert_eq!(xy_path_position(curr, dst, (4, 4)), None);
    }

    #[test]
    fn compute_next_walks_x_then_y() {
        assert_eq!(compute_next((0, 0), (2, 2)), (1, 0));
        assert_eq!(compute_next((2, 0), (2, 2)), (2, 1));
        assert_eq!(compute_next((5, 5), (2, 2)), (4, 5));
        assert_eq!(compute_next((2, 5), (2, 2)), (2, 4));
    }

    #[test]
    fn clear_lattice_routes_along_l1() {
        let lat = Lattice::open_all(10, 10);
        let r = route_xy(&lat, (1, 1), (7, 4));
        assert!(r.delivered);
        assert_eq!(r.hops, 9);
        assert_eq!(r.repairs, 0);
        assert_eq!(r.probes, 9); // one isOpen per step
        assert_eq!(*r.path.first().unwrap(), (1, 1));
        assert_eq!(*r.path.last().unwrap(), (7, 4));
        // Path steps are lattice-adjacent.
        for w in r.path.windows(2) {
            assert_eq!(Lattice::dist_l1(w[0], w[1]), 1);
        }
    }

    #[test]
    fn single_obstacle_triggers_one_repair() {
        let mut lat = Lattice::open_all(9, 9);
        lat.set((4, 2), false); // on the horizontal leg of (1,2) → (7,2)
        let r = route_xy(&lat, (1, 2), (7, 2));
        assert!(r.delivered);
        assert_eq!(r.repairs, 1);
        assert!(r.hops > 6, "detour must exceed L1 = 6, got {}", r.hops);
        assert!(r.probes > r.hops - 1);
        for w in r.path.windows(2) {
            assert_eq!(Lattice::dist_l1(w[0], w[1]), 1);
            assert!(lat.is_open(w[1]));
        }
    }

    #[test]
    fn wall_with_gap_is_routed_around() {
        // Vertical wall at x = 4 except the top row.
        let lat = Lattice::from_fn(9, 9, |i, j| i != 4 || j == 8);
        let r = route_xy(&lat, (0, 0), (8, 0));
        assert!(r.delivered);
        assert!(r.hops >= 8 + 2 * 8, "hops = {}", r.hops);
        assert!(r.repairs >= 1);
    }

    #[test]
    fn disconnected_destination_is_undeliverable() {
        let lat = Lattice::from_fn(9, 9, |i, _| i != 4); // solid wall
        let r = route_xy(&lat, (0, 0), (8, 0));
        assert!(!r.delivered);
        assert!(r.probes > 0, "must spend probes discovering the cut");
    }

    #[test]
    fn closed_endpoints_fail_immediately() {
        let mut lat = Lattice::open_all(5, 5);
        lat.set((0, 0), false);
        let r = route_xy(&lat, (0, 0), (4, 4));
        assert!(!r.delivered);
        assert_eq!(r.probes, 0);
        lat.set((0, 0), true);
        lat.set((4, 4), false);
        let r2 = route_xy(&lat, (0, 0), (4, 4));
        assert!(!r2.delivered);
    }

    #[test]
    fn src_equals_dst() {
        let lat = Lattice::open_all(3, 3);
        let r = route_xy(&lat, (1, 1), (1, 1));
        assert!(r.delivered);
        assert_eq!(r.hops, 0);
        assert_eq!(r.probes, 0);
        assert_eq!(r.path, vec![(1, 1)]);
    }

    #[test]
    fn hops_never_below_l1_and_terminates_supercritical() {
        use crate::sample::bernoulli_lattice;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
        let lat = bernoulli_lattice(&mut rng, 40, 40, 0.75);
        let clusters = crate::cluster::label_clusters(&lat);
        let members: Vec<Site> = lat
            .sites()
            .filter(|&s| clusters.in_largest(&lat, s))
            .collect();
        let mut routed = 0;
        for k in 0..40usize.min(members.len() / 2) {
            let (a, b) = (members[k], members[members.len() - 1 - k]);
            if a == b {
                continue;
            }
            let r = route_xy(&lat, a, b);
            assert!(r.delivered, "same-cluster pair must deliver");
            assert!(r.hops >= Lattice::dist_l1(a, b));
            routed += 1;
        }
        assert!(routed > 10);
    }
}
