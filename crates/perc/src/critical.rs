//! Critical-point estimation (experiment EXP-PC).
//!
//! Two standard finite-size observables:
//!
//! * `θ_L(p)` — fraction of sites in the largest cluster; converges to the
//!   infinite-cluster density θ(p) above p_c and to 0 below.
//! * crossing probability — probability of a left-to-right open crossing,
//!   whose crossing point in `p` converges quickly to p_c ≈ 0.5927.
//!
//! Replicates are embarrassingly parallel (rayon) with per-replicate derived
//! seeds, so results are independent of thread count.

use crate::cluster::label_clusters;
use crate::lattice::Lattice;
use crate::sample::bernoulli_lattice;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::Serialize;
use wsn_geom::hash::derive_seed2;
use wsn_graph::UnionFind;

/// Monte-Carlo estimate of `θ_L(p)` = E[largest cluster / sites] on an
/// `L × L` lattice over `reps` replicates.
pub fn theta_estimate(p: f64, l_size: usize, reps: usize, seed: u64) -> f64 {
    let total: f64 = (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(derive_seed2(seed, r, p.to_bits()));
            let lat = bernoulli_lattice(&mut rng, l_size, l_size, p);
            label_clusters(&lat).largest_size as f64 / lat.len() as f64
        })
        .sum();
    total / reps as f64
}

/// Whether the lattice has a left-to-right crossing of open sites.
pub fn has_lr_crossing(l: &Lattice) -> bool {
    // Union–find with two virtual nodes for the left and right walls.
    let n = l.len();
    let left = n as u32;
    let right = n as u32 + 1;
    let mut uf = UnionFind::new(n + 2);
    for s in l.sites() {
        if !l.is_open(s) {
            continue;
        }
        if s.0 == 0 {
            uf.union(l.id(s), left);
        }
        if s.0 == l.cols() - 1 {
            uf.union(l.id(s), right);
        }
        let r = (s.0 + 1, s.1);
        if l.in_bounds(r) && l.is_open(r) {
            uf.union(l.id(s), l.id(r));
        }
        let u = (s.0, s.1 + 1);
        if l.in_bounds(u) && l.is_open(u) {
            uf.union(l.id(s), l.id(u));
        }
    }
    uf.connected(left, right)
}

/// Monte-Carlo crossing probability at `p`.
pub fn crossing_probability(p: f64, l_size: usize, reps: usize, seed: u64) -> f64 {
    let hits: usize = (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let mut rng =
                rand::rngs::SmallRng::seed_from_u64(derive_seed2(seed, r, p.to_bits() ^ 0xC5));
            let lat = bernoulli_lattice(&mut rng, l_size, l_size, p);
            has_lr_crossing(&lat) as usize
        })
        .sum();
    hits as f64 / reps as f64
}

/// One point of a `θ(p)` / crossing sweep.
#[derive(Clone, Debug, Serialize)]
pub struct CriticalPoint {
    pub p: f64,
    pub theta: f64,
    pub crossing: f64,
}

/// Sweep `p` over `values`, measuring both observables.
pub fn sweep(values: &[f64], l_size: usize, reps: usize, seed: u64) -> Vec<CriticalPoint> {
    values
        .iter()
        .map(|&p| CriticalPoint {
            p,
            theta: theta_estimate(p, l_size, reps, seed),
            crossing: crossing_probability(p, l_size, reps, seed),
        })
        .collect()
}

/// Estimate p_c by bisecting the crossing probability to 1/2.
///
/// On an `L × L` box the estimate is within O(L^(−3/4)) of the true
/// p_c ≈ 0.592746; `L = 128, reps = 200` lands within ±0.01 reliably.
pub fn estimate_pc(l_size: usize, reps: usize, iterations: usize, seed: u64) -> f64 {
    let (mut lo, mut hi) = (0.45, 0.75);
    for it in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let cross = crossing_probability(mid, l_size, reps, derive_seed2(seed, it as u64, 0));
        if cross < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossing_on_deterministic_patterns() {
        // Full row open → crossing; full column open (no row) → no crossing.
        let row = Lattice::from_fn(6, 6, |_, j| j == 3);
        assert!(has_lr_crossing(&row));
        let col = Lattice::from_fn(6, 6, |i, _| i == 3);
        assert!(!has_lr_crossing(&col));
        assert!(has_lr_crossing(&Lattice::open_all(4, 4)));
        assert!(!has_lr_crossing(&Lattice::closed(4, 4)));
    }

    #[test]
    fn single_column_lattice() {
        // cols = 1: any open site is both walls.
        let l = Lattice::from_fn(1, 5, |_, j| j == 2);
        assert!(has_lr_crossing(&l));
        assert!(!has_lr_crossing(&Lattice::closed(1, 5)));
    }

    #[test]
    fn theta_is_monotone_across_the_transition() {
        let lo = theta_estimate(0.45, 48, 24, 7);
        let hi = theta_estimate(0.75, 48, 24, 7);
        assert!(lo < 0.15, "θ(0.45) = {lo}");
        assert!(hi > 0.55, "θ(0.75) = {hi}");
    }

    #[test]
    fn crossing_probability_brackets_pc() {
        let below = crossing_probability(0.50, 48, 40, 11);
        let above = crossing_probability(0.68, 48, 40, 11);
        assert!(below < 0.35, "cross(0.50) = {below}");
        assert!(above > 0.65, "cross(0.68) = {above}");
    }

    #[test]
    fn pc_estimate_is_near_known_value() {
        // Small lattice + few reps keeps the test fast; the bench target
        // EXP-PC runs the precise version.
        let pc = estimate_pc(48, 30, 8, 3);
        assert!(
            (0.54..=0.65).contains(&pc),
            "p_c estimate {pc} outside sanity band"
        );
    }

    #[test]
    fn sweep_is_monotone_in_p_on_average() {
        let pts = sweep(&[0.4, 0.6, 0.8], 32, 20, 5);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].theta < pts[2].theta);
        assert!(pts[0].crossing <= pts[2].crossing);
    }

    #[test]
    fn determinism_independent_of_parallelism() {
        let a = theta_estimate(0.6, 32, 16, 99);
        let b = theta_estimate(0.6, 32, 16, 99);
        assert_eq!(a, b);
    }
}
