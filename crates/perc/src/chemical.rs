//! Chemical distance in the supercritical phase (Lemma 1.1 substrate,
//! experiment EXP-AP).
//!
//! Antal–Pisztora: above p_c, the graph distance `D_p(x, y)` between sites
//! of the same open cluster is at most `ρ · D(x, y)` except with probability
//! exponentially small in the distance. The experiment samples same-cluster
//! pairs and records the ratio `D_p / D`.

use crate::cluster::label_clusters;
use crate::lattice::{Lattice, Site};
use crate::sample::bernoulli_lattice;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::VecDeque;
use wsn_geom::hash::derive_seed;

/// BFS graph distance through open sites, or `None` when not connected (or
/// either endpoint closed).
pub fn chemical_distance(l: &Lattice, a: Site, b: Site) -> Option<u32> {
    if !l.is_open(a) || !l.is_open(b) {
        return None;
    }
    if a == b {
        return Some(0);
    }
    let mut dist = vec![u32::MAX; l.len()];
    let mut queue = VecDeque::new();
    dist[l.id(a) as usize] = 0;
    queue.push_back(a);
    while let Some(s) = queue.pop_front() {
        let d = dist[l.id(s) as usize];
        for nb in l.neighbors(s) {
            if l.is_open(nb) && dist[l.id(nb) as usize] == u32::MAX {
                if nb == b {
                    return Some(d + 1);
                }
                dist[l.id(nb) as usize] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    None
}

/// One sampled same-cluster pair.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ChemicalSample {
    pub l1: u32,
    pub chemical: u32,
}

impl ChemicalSample {
    /// The stretch ratio `D_p / D` (≥ 1).
    #[inline]
    pub fn ratio(&self) -> f64 {
        self.chemical as f64 / self.l1.max(1) as f64
    }
}

/// Sample same-largest-cluster pairs on fresh `L × L` lattices at `p` and
/// return their `(D, D_p)` values. Pairs are drawn uniformly from the
/// largest cluster, `pairs_per_rep` per replicate.
pub fn sample_ratios(
    p: f64,
    l_size: usize,
    reps: usize,
    pairs_per_rep: usize,
    seed: u64,
) -> Vec<ChemicalSample> {
    (0..reps as u64)
        .into_par_iter()
        .flat_map_iter(|rep| {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(derive_seed(seed, rep));
            let lat = bernoulli_lattice(&mut rng, l_size, l_size, p);
            let clusters = label_clusters(&lat);
            let members: Vec<Site> = lat
                .sites()
                .filter(|&s| clusters.in_largest(&lat, s))
                .collect();
            let mut out = Vec::new();
            if members.len() >= 2 {
                for _ in 0..pairs_per_rep {
                    let a = members[rng.random_range(0..members.len())];
                    let b = members[rng.random_range(0..members.len())];
                    if a == b {
                        continue;
                    }
                    if let Some(chem) = chemical_distance(&lat, a, b) {
                        out.push(ChemicalSample {
                            l1: Lattice::dist_l1(a, b),
                            chemical: chem,
                        });
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_on_open_lattice_is_l1() {
        let l = Lattice::open_all(8, 8);
        assert_eq!(chemical_distance(&l, (0, 0), (3, 4)), Some(7));
        assert_eq!(chemical_distance(&l, (2, 2), (2, 2)), Some(0));
    }

    #[test]
    fn detour_lengthens_chemical_distance() {
        // Wall at column 2 with a gap only at the top row forces a detour.
        let l = Lattice::from_fn(5, 5, |i, j| i != 2 || j == 4);
        let d = chemical_distance(&l, (0, 0), (4, 0)).unwrap();
        assert!(d > Lattice::dist_l1((0, 0), (4, 0)));
        assert_eq!(d, 4 + 2 * 4); // up 4, across 4, down 4
    }

    #[test]
    fn closed_endpoints_or_disconnection_return_none() {
        let mut l = Lattice::open_all(4, 4);
        l.set((1, 1), false);
        assert_eq!(chemical_distance(&l, (1, 1), (0, 0)), None);
        // Split into two halves.
        let split = Lattice::from_fn(5, 5, |i, _| i != 2);
        assert_eq!(chemical_distance(&split, (0, 0), (4, 0)), None);
    }

    #[test]
    fn ratios_are_at_least_one() {
        let samples = sample_ratios(0.75, 32, 4, 16, 9);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.chemical >= s.l1, "chemical < L1: {s:?}");
            assert!(s.ratio() >= 1.0);
        }
    }

    #[test]
    fn mean_ratio_shrinks_with_higher_p() {
        let lo = sample_ratios(0.65, 40, 6, 24, 10);
        let hi = sample_ratios(0.95, 40, 6, 24, 10);
        let mean = |v: &[ChemicalSample]| v.iter().map(|s| s.ratio()).sum::<f64>() / v.len() as f64;
        assert!(
            mean(&lo) > mean(&hi),
            "ratio(0.65) = {} vs ratio(0.95) = {}",
            mean(&lo),
            mean(&hi)
        );
        // Near p = 1 the ratio approaches 1.
        assert!(mean(&hi) < 1.1);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = sample_ratios(0.7, 24, 3, 8, 5);
        let b = sample_ratios(0.7, 24, 3, 8, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.l1, y.l1);
            assert_eq!(x.chemical, y.chemical);
        }
    }
}
