//! Bernoulli site sampling.

use crate::lattice::Lattice;
use rand::Rng;

/// Sample a `cols × rows` lattice with i.i.d. open probability `p` — the
/// site-percolation measure `∏ {0,1}` of the paper's Section 1.1.
pub fn bernoulli_lattice<R: Rng>(rng: &mut R, cols: usize, rows: usize, p: f64) -> Lattice {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    Lattice::from_fn(cols, rows, |_, _| rng.random::<f64>() < p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::hash::derive_seed;

    fn rng(seed: u64) -> impl Rng {
        use rand::SeedableRng;
        rand::rngs::SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn extreme_probabilities() {
        let mut r = rng(1);
        assert_eq!(bernoulli_lattice(&mut r, 10, 10, 0.0).open_count(), 0);
        assert_eq!(bernoulli_lattice(&mut r, 10, 10, 1.0).open_count(), 100);
    }

    #[test]
    fn open_fraction_concentrates() {
        let mut r = rng(2);
        let l = bernoulli_lattice(&mut r, 200, 200, 0.6);
        let f = l.open_fraction();
        // sd = √(p(1−p)/n) ≈ 0.00245; allow 5σ.
        assert!((f - 0.6).abs() < 0.013, "fraction = {f}");
    }

    #[test]
    fn determinism_via_seed() {
        let a = bernoulli_lattice(&mut rng(42), 30, 30, 0.5);
        let b = bernoulli_lattice(&mut rng(42), 30, 30, 0.5);
        assert_eq!(a, b);
        let c = bernoulli_lattice(&mut rng(derive_seed(42, 1)), 30, 30, 0.5);
        assert_ne!(a, c);
    }
}
