//! The finite site lattice.

use serde::{Deserialize, Serialize};

/// A lattice site, `(column, row)` with the origin at the bottom-left.
pub type Site = (usize, usize);

/// A finite `cols × rows` window of Z² with an open/closed state per site.
///
/// Row-major `Vec<bool>` storage; site ids (`u32`) are `row * cols + col`,
/// which is also the node id used when the lattice is viewed as a graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lattice {
    cols: usize,
    rows: usize,
    open: Vec<bool>,
}

impl Lattice {
    /// All-closed lattice.
    pub fn closed(cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "degenerate lattice");
        Lattice {
            cols,
            rows,
            open: vec![false; cols * rows],
        }
    }

    /// All-open lattice.
    pub fn open_all(cols: usize, rows: usize) -> Self {
        let mut l = Lattice::closed(cols, rows);
        l.open.fill(true);
        l
    }

    /// Build from a predicate — this is the tile-goodness coupling hook: the
    /// SENS constructions call it with `|i, j| tile (i, j) is good`.
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(cols: usize, rows: usize, mut f: F) -> Self {
        let mut l = Lattice::closed(cols, rows);
        for j in 0..rows {
            for i in 0..cols {
                l.open[j * cols + i] = f(i, j);
            }
        }
        l
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.open.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    #[inline]
    pub fn in_bounds(&self, s: Site) -> bool {
        s.0 < self.cols && s.1 < self.rows
    }

    #[inline]
    pub fn id(&self, s: Site) -> u32 {
        debug_assert!(self.in_bounds(s));
        (s.1 * self.cols + s.0) as u32
    }

    #[inline]
    pub fn site(&self, id: u32) -> Site {
        (id as usize % self.cols, id as usize / self.cols)
    }

    #[inline]
    pub fn is_open(&self, s: Site) -> bool {
        self.open[s.1 * self.cols + s.0]
    }

    #[inline]
    pub fn set(&mut self, s: Site, open: bool) {
        let id = self.id(s) as usize;
        self.open[id] = open;
    }

    /// Number of open sites.
    pub fn open_count(&self) -> usize {
        self.open.iter().filter(|&&o| o).count()
    }

    /// Fraction of open sites.
    pub fn open_fraction(&self) -> f64 {
        self.open_count() as f64 / self.len() as f64
    }

    /// In-bounds lattice neighbours of `s` (up to 4), in right/left/up/down
    /// order.
    pub fn neighbors(&self, s: Site) -> impl Iterator<Item = Site> + '_ {
        let (x, y) = (s.0 as isize, s.1 as isize);
        [(x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)]
            .into_iter()
            .filter_map(move |(i, j)| {
                if i >= 0 && j >= 0 && (i as usize) < self.cols && (j as usize) < self.rows {
                    Some((i as usize, j as usize))
                } else {
                    None
                }
            })
    }

    /// All sites, row-major.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.rows).flat_map(move |j| (0..self.cols).map(move |i| (i, j)))
    }

    /// L¹ distance — `D(x, y)` in the paper.
    #[inline]
    pub fn dist_l1(a: Site, b: Site) -> u32 {
        (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        let l = Lattice::closed(7, 5);
        for s in l.sites() {
            assert_eq!(l.site(l.id(s)), s);
        }
        assert_eq!(l.len(), 35);
    }

    #[test]
    fn from_fn_sets_pattern() {
        let l = Lattice::from_fn(4, 4, |i, j| (i + j) % 2 == 0);
        assert!(l.is_open((0, 0)));
        assert!(!l.is_open((1, 0)));
        assert!(l.is_open((1, 1)));
        assert_eq!(l.open_count(), 8);
        assert_eq!(l.open_fraction(), 0.5);
    }

    #[test]
    fn set_and_get() {
        let mut l = Lattice::closed(3, 3);
        assert_eq!(l.open_count(), 0);
        l.set((1, 2), true);
        assert!(l.is_open((1, 2)));
        l.set((1, 2), false);
        assert_eq!(l.open_count(), 0);
    }

    #[test]
    fn corner_and_edge_neighbors() {
        let l = Lattice::closed(3, 3);
        let corner: Vec<Site> = l.neighbors((0, 0)).collect();
        assert_eq!(corner.len(), 2);
        assert!(corner.contains(&(1, 0)) && corner.contains(&(0, 1)));
        let edge: Vec<Site> = l.neighbors((1, 0)).collect();
        assert_eq!(edge.len(), 3);
        let middle: Vec<Site> = l.neighbors((1, 1)).collect();
        assert_eq!(middle.len(), 4);
    }

    #[test]
    fn l1_distance() {
        assert_eq!(Lattice::dist_l1((0, 0), (3, 4)), 7);
        assert_eq!(Lattice::dist_l1((3, 4), (0, 0)), 7);
        assert_eq!(Lattice::dist_l1((2, 2), (2, 2)), 0);
    }

    #[test]
    fn sites_iterates_row_major_once_each() {
        let l = Lattice::closed(3, 2);
        let all: Vec<Site> = l.sites().collect();
        assert_eq!(all, vec![(0, 0), (1, 0), (2, 0), (0, 1), (1, 1), (2, 1)]);
    }
}
