//! # wsn-pointproc
//!
//! Stochastic substrate: seeded random-number plumbing, an exact Poisson
//! sampler, and the point processes that generate sensor deployments.
//!
//! The paper models sensor positions as a homogeneous Poisson point process
//! (PPP) of intensity λ in R². Experiments realise the process inside a
//! finite window; [`ppp::sample_poisson_window`] does exactly that (count
//! `N ~ Poisson(λ·area)`, then `N` i.i.d. uniform positions).
//!
//! Modules:
//!
//! * [`rng`] — deterministic RNG construction from `u64` seeds.
//! * [`poisson`] — exact Poisson(μ) sampling for any μ ≥ 0 (inversion for
//!   small means, Hörmann's PTRS transformed rejection for large).
//! * [`points`] — the flat [`points::PointSet`] container (SoA layout).
//! * [`ppp`] — homogeneous Poisson and binomial point processes in a window.
//! * [`matern`] — Matérn type-II hard-core thinning (a dependent-deployment
//!   workload variant used by the robustness experiments).
//! * [`order`] — Morton (Z-order) and explicit point reorderings with
//!   rank ↔ original-id maps, the cache-layout substrate of the ordered
//!   builders.
//! * [`window`] — simulation windows with optional torus wrap-around.

pub mod matern;
pub mod order;
pub mod points;
pub mod poisson;
pub mod ppp;
pub mod rng;
pub mod window;

pub use order::PointOrder;
pub use points::PointSet;
pub use poisson::sample_poisson;
pub use ppp::{sample_binomial_window, sample_poisson_window};
pub use rng::{rng_from_seed, SimRng};
pub use window::Window;
