//! Deterministic RNG construction.
//!
//! All randomness in the workspace flows through [`SimRng`], seeded from an
//! explicit `u64`. Parallel sweeps derive independent per-task seeds with
//! [`wsn_geom::hash::derive_seed`], so outputs are schedule-independent.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wsn_geom::{Aabb, Point};

/// The simulation RNG. `SmallRng` (xoshiro-family) is fast, has good
/// statistical quality, and — important for reproducibility — its algorithm
/// is fixed for a given `rand` major version.
pub type SimRng = SmallRng;

/// Build an RNG from a 64-bit seed.
#[inline]
pub fn rng_from_seed(seed: u64) -> SimRng {
    SimRng::seed_from_u64(seed)
}

/// Build an RNG for a derived stream (`seed`, `stream`).
#[inline]
pub fn rng_for_stream(seed: u64, stream: u64) -> SimRng {
    rng_from_seed(wsn_geom::hash::derive_seed(seed, stream))
}

/// A uniform point in the closed box.
#[inline]
pub fn uniform_in<R: Rng>(rng: &mut R, b: &Aabb) -> Point {
    Point::new(
        rng.random_range(b.min.x..=b.max.x),
        rng.random_range(b.min.y..=b.max.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_derivation_is_deterministic_and_distinct() {
        let mut a = rng_for_stream(7, 0);
        let mut b = rng_for_stream(7, 0);
        let mut c = rng_for_stream(7, 1);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
        let mut a2 = rng_for_stream(7, 0);
        assert_ne!(a2.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn uniform_points_stay_in_box() {
        let b = Aabb::from_coords(-2.0, 3.0, 5.0, 4.0);
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            let p = uniform_in(&mut rng, &b);
            assert!(b.contains(p));
        }
    }

    #[test]
    fn uniform_points_fill_the_box() {
        // Quadrant counts of 4000 samples in the unit square should all be
        // within a loose band around 1000.
        let b = Aabb::square(1.0);
        let mut rng = rng_from_seed(11);
        let mut q = [0usize; 4];
        for _ in 0..4000 {
            let p = uniform_in(&mut rng, &b);
            let idx = (p.x >= 0.5) as usize + 2 * ((p.y >= 0.5) as usize);
            q[idx] += 1;
        }
        for &count in &q {
            assert!((800..=1200).contains(&count), "quadrants {q:?}");
        }
    }
}
