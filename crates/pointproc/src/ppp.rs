//! Homogeneous point processes in a window.

use crate::points::PointSet;
use crate::poisson::sample_poisson;
use crate::rng::uniform_in;
use rand::Rng;
use wsn_geom::Aabb;

/// Realise a homogeneous Poisson point process of intensity `lambda` in the
/// window: `N ~ Poisson(λ · area)` followed by `N` i.i.d. uniform positions.
///
/// This is the standard construction and is exact — counts in disjoint
/// sub-regions are independent Poissons, which the tests verify.
pub fn sample_poisson_window<R: Rng>(rng: &mut R, lambda: f64, window: &Aabb) -> PointSet {
    assert!(lambda >= 0.0 && lambda.is_finite(), "invalid intensity");
    let n = sample_poisson(rng, lambda * window.area());
    sample_binomial_window(rng, n as usize, window)
}

/// Realise a binomial point process: exactly `n` i.i.d. uniform points.
pub fn sample_binomial_window<R: Rng>(rng: &mut R, n: usize, window: &Aabb) -> PointSet {
    let mut set = PointSet::with_capacity(n);
    for _ in 0..n {
        set.push(uniform_in(rng, window));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use wsn_geom::Point;

    #[test]
    fn count_matches_intensity() {
        let mut rng = rng_from_seed(3);
        let window = Aabb::square(50.0);
        let lambda = 2.0;
        let mean = lambda * window.area(); // 5000
        let n = sample_poisson_window(&mut rng, lambda, &window).len() as f64;
        // 5σ band: σ = √5000 ≈ 70.7.
        assert!((n - mean).abs() < 5.0 * mean.sqrt(), "n = {n}");
    }

    #[test]
    fn all_points_inside_window() {
        let mut rng = rng_from_seed(4);
        let window = Aabb::from_coords(10.0, -5.0, 20.0, 5.0);
        let pts = sample_poisson_window(&mut rng, 1.5, &window);
        assert!(pts.iter().all(|p| window.contains(p)));
    }

    #[test]
    fn disjoint_regions_have_independent_counts() {
        // Split a window into left/right halves; over many realisations the
        // sample correlation of the two counts should be near zero.
        let window = Aabb::square(10.0);
        let lambda = 1.0;
        let reps = 2000;
        let mut lefts = Vec::with_capacity(reps);
        let mut rights = Vec::with_capacity(reps);
        let mut rng = rng_from_seed(5);
        for _ in 0..reps {
            let pts = sample_poisson_window(&mut rng, lambda, &window);
            let l = pts.iter().filter(|p| p.x < 5.0).count() as f64;
            let r = pts.len() as f64 - l;
            lefts.push(l);
            rights.push(r);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let (ml, mr) = (mean(&lefts), mean(&rights));
        let mut cov = 0.0;
        let mut vl = 0.0;
        let mut vr = 0.0;
        for i in 0..reps {
            cov += (lefts[i] - ml) * (rights[i] - mr);
            vl += (lefts[i] - ml).powi(2);
            vr += (rights[i] - mr).powi(2);
        }
        let corr = cov / (vl.sqrt() * vr.sqrt());
        assert!(corr.abs() < 0.08, "corr = {corr}");
        // Each half has mean 50.
        assert!((ml - 50.0).abs() < 2.0 && (mr - 50.0).abs() < 2.0);
    }

    #[test]
    fn binomial_process_has_exact_count() {
        let mut rng = rng_from_seed(6);
        let pts = sample_binomial_window(&mut rng, 137, &Aabb::square(3.0));
        assert_eq!(pts.len(), 137);
    }

    #[test]
    fn determinism() {
        let w = Aabb::square(20.0);
        let a = sample_poisson_window(&mut rng_from_seed(77), 0.8, &w);
        let b = sample_poisson_window(&mut rng_from_seed(77), 0.8, &w);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(p, q)| p == q));
    }

    #[test]
    fn zero_intensity_gives_empty_set() {
        let mut rng = rng_from_seed(8);
        assert!(sample_poisson_window(&mut rng, 0.0, &Aabb::square(100.0)).is_empty());
    }

    #[test]
    fn spatial_uniformity_quadrants() {
        let mut rng = rng_from_seed(9);
        let w = Aabb::square(10.0);
        let pts = sample_binomial_window(&mut rng, 8000, &w);
        let mut q = [0usize; 4];
        for p in pts.iter() {
            q[(p.x >= 5.0) as usize + 2 * (p.y >= 5.0) as usize] += 1;
        }
        for &c in &q {
            assert!((1800..=2200).contains(&c), "{q:?}");
        }
        let _ = Point::ORIGIN; // silence unused import when asserts compile out
    }
}
