//! Construction-time point reorderings.
//!
//! A [`PointOrder`] is a reordered *copy* of a deployment: the same point
//! multiset stored in a different id order (ranks), plus the two maps
//! between rank space and the original deployment ids. The canonical use
//! is [`PointOrder::morton`]: sorting the copy into Z-order makes every
//! spatially local scan downstream — `GridIndex` buckets, ghost gathers,
//! per-shard resident lists — walk the SoA nearly sequentially.
//!
//! The *logical* id space of every graph, golden, and seeded draw stays
//! the original deployment order: builders run over `points()` in rank
//! space and remap their emissions through [`PointOrder::to_orig`] at the
//! emission boundary (`wsn_rgg::ordered`, `wsn_core`'s `*_ordered`
//! builders). Churn, HNG level promotion, and every other per-node seeded
//! stream key on original ids, so reordering can never change an observable
//! byte — the permutation-invariance suite pins this for all eight
//! topology kinds.

use wsn_geom::morton::morton_key;

use crate::points::PointSet;

/// A reordered copy of a point set with rank ↔ original id maps.
#[derive(Clone, Debug)]
pub struct PointOrder {
    points: PointSet,
    /// `to_orig[rank]` = original id stored at `rank`.
    to_orig: Vec<u32>,
    /// `to_rank[orig]` = rank holding original id `orig`.
    to_rank: Vec<u32>,
}

impl PointOrder {
    /// Morton (Z-order) layout of `points`, quantised against the tight
    /// bounding box. Key ties (coincident or quantisation-coincident
    /// points) break by original id, so the order is deterministic.
    pub fn morton(points: &PointSet) -> PointOrder {
        let Some(bb) = points.bounding_box() else {
            return PointOrder::from_to_orig(points, Vec::new());
        };
        let mut keyed: Vec<(u64, u32)> = points
            .iter_enumerated()
            .map(|(i, p)| (morton_key(p, &bb), i))
            .collect();
        keyed.sort_unstable();
        PointOrder::from_to_orig(points, keyed.into_iter().map(|(_, i)| i).collect())
    }

    /// The identity layout (rank = original id). Useful as a differential
    /// baseline: an ordered build over the identity order must equal the
    /// plain build structurally, not just after remapping.
    pub fn identity(points: &PointSet) -> PointOrder {
        PointOrder::from_to_orig(points, (0..points.len() as u32).collect())
    }

    /// An explicit layout: `to_orig[rank]` names the original id stored at
    /// `rank`. Panics unless `to_orig` is a permutation of `0..len` — a
    /// partial or duplicated map would silently drop or alias points.
    pub fn from_to_orig(points: &PointSet, to_orig: Vec<u32>) -> PointOrder {
        let n = points.len();
        assert_eq!(to_orig.len(), n, "order must cover every point");
        let mut to_rank = vec![u32::MAX; n];
        let mut reordered = PointSet::with_capacity(n);
        for (rank, &orig) in to_orig.iter().enumerate() {
            assert!(
                to_rank[orig as usize] == u32::MAX,
                "id {orig} appears twice in the order"
            );
            to_rank[orig as usize] = rank as u32;
            reordered.push(points.get(orig));
        }
        PointOrder {
            points: reordered,
            to_orig,
            to_rank,
        }
    }

    /// The reordered copy: `points().get(rank)` is the original point
    /// `to_orig()[rank]`, bit-for-bit (reordering copies coordinates, it
    /// never recomputes them).
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Rank → original id.
    #[inline]
    pub fn to_orig(&self) -> &[u32] {
        &self.to_orig
    }

    /// Original id → rank.
    #[inline]
    pub fn to_rank(&self) -> &[u32] {
        &self.to_rank
    }

    /// Map a per-original-id attribute vector (levels, priorities, alive
    /// masks …) into rank space, so rank-space builders can consume values
    /// seeded in the stable original id space.
    pub fn gather_values<T: Copy>(&self, per_orig: &[T]) -> Vec<T> {
        assert_eq!(per_orig.len(), self.points.len());
        self.to_orig.iter().map(|&o| per_orig[o as usize]).collect()
    }
}

/// The Morton permutation of `points` alone (rank → original id), without
/// materialising the reordered copy.
pub fn morton_permutation(points: &PointSet) -> Vec<u32> {
    PointOrder::morton(points).to_orig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rng_from_seed, sample_binomial_window};
    use wsn_geom::{Aabb, Point};

    fn pts(n: usize, seed: u64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(10.0))
    }

    #[test]
    fn morton_is_a_permutation_preserving_coordinates() {
        let p = pts(500, 1);
        let ord = PointOrder::morton(&p);
        assert_eq!(ord.len(), p.len());
        let mut seen = vec![false; p.len()];
        for (rank, &orig) in ord.to_orig().iter().enumerate() {
            assert!(!seen[orig as usize]);
            seen[orig as usize] = true;
            assert_eq!(ord.points().get(rank as u32), p.get(orig));
            assert_eq!(ord.to_rank()[orig as usize], rank as u32);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn morton_order_is_sorted_by_key() {
        let p = pts(300, 2);
        let bb = p.bounding_box().unwrap();
        let ord = PointOrder::morton(&p);
        let keys: Vec<(u64, u32)> = ord
            .to_orig()
            .iter()
            .map(|&o| (wsn_geom::morton_key(p.get(o), &bb), o))
            .collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn identity_order_is_the_same_layout() {
        let p = pts(50, 3);
        let ord = PointOrder::identity(&p);
        assert_eq!(ord.points(), &p);
        assert_eq!(ord.to_orig(), ord.to_rank());
    }

    #[test]
    fn gather_values_translates_attribute_spaces() {
        let p = pts(40, 4);
        let ord = PointOrder::morton(&p);
        let per_orig: Vec<u32> = (0..p.len() as u32).map(|i| i * 10).collect();
        let per_rank = ord.gather_values(&per_orig);
        for (rank, &orig) in ord.to_orig().iter().enumerate() {
            assert_eq!(per_rank[rank], orig * 10);
        }
    }

    #[test]
    fn empty_and_degenerate_sets() {
        let empty = PointSet::new();
        let ord = PointOrder::morton(&empty);
        assert!(ord.is_empty());
        // All-coincident points: keys tie, order falls back to original id.
        let same: PointSet = (0..5).map(|_| wsn_geom::Point::new(1.0, 2.0)).collect();
        let ord = PointOrder::morton(&same);
        assert_eq!(ord.to_orig(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_ids_in_an_explicit_order_panic() {
        let p = pts(3, 5);
        PointOrder::from_to_orig(&p, vec![0, 0, 2]);
    }

    #[test]
    fn morton_ranks_are_spatially_coherent() {
        // Consecutive ranks should on average be far closer in space than
        // consecutive original ids of a uniform deployment.
        let p = pts(2000, 6);
        let ord = PointOrder::morton(&p);
        let mean_step = |ids: &dyn Fn(u32) -> Point| -> f64 {
            (0..p.len() as u32 - 1)
                .map(|i| ids(i).dist(ids(i + 1)))
                .sum::<f64>()
                / (p.len() - 1) as f64
        };
        let orig = mean_step(&|i| p.get(i));
        let morton = mean_step(&|i| ord.points().get(i));
        assert!(
            morton < orig * 0.25,
            "morton mean step {morton} vs original {orig}"
        );
    }
}
