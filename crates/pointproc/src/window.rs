//! Simulation windows.
//!
//! The paper's processes live in infinite R²; experiments realise them in a
//! finite window. Boundary effects are handled either by torus wrap-around
//! (periodic boundary, no edge bias — used for threshold estimation) or by
//! measuring only in an interior sub-window (used when Euclidean geometry
//! must stay faithful, e.g. stretch measurements).

use serde::{Deserialize, Serialize};
use wsn_geom::{Aabb, Point};

/// A rectangular simulation window with optional periodic boundary.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Window {
    pub bounds: Aabb,
    pub torus: bool,
}

impl Window {
    /// Plane window `[0, side]²` with hard boundary.
    pub fn square(side: f64) -> Self {
        Window {
            bounds: Aabb::square(side),
            torus: false,
        }
    }

    /// Torus window `[0, side)²`.
    pub fn torus(side: f64) -> Self {
        Window {
            bounds: Aabb::square(side),
            torus: true,
        }
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.bounds.width()
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.bounds.height()
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.bounds.area()
    }

    /// Distance respecting the boundary convention.
    #[inline]
    pub fn dist(&self, a: Point, b: Point) -> f64 {
        self.dist_sq(a, b).sqrt()
    }

    /// Squared distance respecting the boundary convention.
    #[inline]
    pub fn dist_sq(&self, a: Point, b: Point) -> f64 {
        if !self.torus {
            return a.dist_sq(b);
        }
        let (w, h) = (self.width(), self.height());
        let mut dx = (a.x - b.x).abs();
        let mut dy = (a.y - b.y).abs();
        if dx > w * 0.5 {
            dx = w - dx;
        }
        if dy > h * 0.5 {
            dy = h - dy;
        }
        dx * dx + dy * dy
    }

    /// The interior sub-window at `margin` from every edge (for edge-bias-free
    /// measurement on hard-boundary windows).
    pub fn interior(&self, margin: f64) -> Aabb {
        self.bounds.inflate(-margin)
    }

    /// Wrap a point into the window (torus only; identity otherwise).
    #[inline]
    pub fn wrap(&self, p: Point) -> Point {
        if !self.torus {
            return p;
        }
        let (w, h) = (self.width(), self.height());
        Point::new(
            self.bounds.min.x + (p.x - self.bounds.min.x).rem_euclid(w),
            self.bounds.min.y + (p.y - self.bounds.min.y).rem_euclid(h),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_distance_is_euclidean() {
        let w = Window::square(10.0);
        assert_eq!(w.dist(Point::new(0.0, 0.0), Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn torus_distance_wraps() {
        let w = Window::torus(10.0);
        // Points near opposite edges are close on the torus.
        let a = Point::new(0.5, 5.0);
        let b = Point::new(9.5, 5.0);
        assert!((w.dist(a, b) - 1.0).abs() < 1e-12);
        // Interior pairs are unchanged.
        assert_eq!(w.dist(Point::new(2.0, 2.0), Point::new(5.0, 6.0)), 5.0);
        // Corner wrap uses both axes.
        let c = Point::new(0.5, 0.5);
        let d = Point::new(9.5, 9.5);
        assert!((w.dist(c, d) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn torus_distance_is_a_metric_sample() {
        let w = Window::torus(7.0);
        let pts = [
            Point::new(0.1, 0.2),
            Point::new(6.9, 0.1),
            Point::new(3.5, 3.5),
            Point::new(0.0, 6.9),
        ];
        for &a in &pts {
            assert_eq!(w.dist(a, a), 0.0);
            for &b in &pts {
                assert!((w.dist(a, b) - w.dist(b, a)).abs() < 1e-12);
                for &c in &pts {
                    assert!(w.dist(a, c) <= w.dist(a, b) + w.dist(b, c) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn torus_distance_never_exceeds_half_diagonal() {
        let w = Window::torus(10.0);
        let max = (2.0 * 5.0_f64.powi(2)).sqrt();
        let mut worst: f64 = 0.0;
        for i in 0..20 {
            for j in 0..20 {
                let a = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                let d = w.dist(Point::new(0.0, 0.0), a);
                worst = worst.max(d);
            }
        }
        assert!(worst <= max + 1e-12);
    }

    #[test]
    fn wrap_maps_into_bounds() {
        let w = Window::torus(10.0);
        let p = w.wrap(Point::new(13.0, -2.5));
        assert_eq!(p, Point::new(3.0, 7.5));
        assert!(w.bounds.contains(p));
        // Plane windows do not wrap.
        let plane = Window::square(10.0);
        assert_eq!(plane.wrap(Point::new(13.0, -2.5)), Point::new(13.0, -2.5));
    }

    #[test]
    fn interior_shrinks_symmetrically() {
        let w = Window::square(10.0);
        assert_eq!(w.interior(2.0), Aabb::from_coords(2.0, 2.0, 8.0, 8.0));
    }
}
