//! Flat point-set container.
//!
//! Structure-of-arrays layout (two `Vec<f64>`) per the performance-book
//! guidance: sequential scans over one coordinate stay cache-dense, and node
//! ids are plain `u32` indices used consistently by the spatial index, the
//! graph substrate and the SENS constructions.

use wsn_geom::{Aabb, Point};

/// An indexed set of points in R². Node `i` of every graph built downstream
/// is point `i` of this set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointSet {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PointSet {
    pub fn new() -> Self {
        PointSet::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        PointSet {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let iter = points.into_iter();
        let mut set = PointSet::with_capacity(iter.size_hint().0);
        for p in iter {
            set.push(p);
        }
        set
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    #[inline]
    pub fn push(&mut self, p: Point) {
        debug_assert!(p.is_finite());
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// Point by id. Panics on out-of-range (ids are internal, so this is a
    /// logic error, not an input error).
    #[inline]
    pub fn get(&self, i: u32) -> Point {
        Point::new(self.xs[i as usize], self.ys[i as usize])
    }

    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .map(|(&x, &y)| Point::new(x, y))
    }

    /// Ids and points together.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (u32, Point)> + '_ {
        self.iter().enumerate().map(|(i, p)| (i as u32, p))
    }

    /// Tight bounding box, or `None` when empty.
    pub fn bounding_box(&self) -> Option<Aabb> {
        if self.is_empty() {
            return None;
        }
        let (mut x0, mut y0, mut x1, mut y1) = (f64::MAX, f64::MAX, f64::MIN, f64::MIN);
        for p in self.iter() {
            x0 = x0.min(p.x);
            y0 = y0.min(p.y);
            x1 = x1.max(p.x);
            y1 = y1.max(p.y);
        }
        Some(Aabb::from_coords(x0, y0, x1, y1))
    }

    /// Keep only points satisfying the predicate; returns the old→new id map
    /// (`u32::MAX` marks removed points).
    #[allow(clippy::needless_range_loop)] // in-place compaction: w trails r over the same buffers
    pub fn retain_with_map<F: FnMut(u32, Point) -> bool>(&mut self, mut keep: F) -> Vec<u32> {
        let mut map = vec![u32::MAX; self.len()];
        let mut w = 0usize;
        for r in 0..self.len() {
            let p = Point::new(self.xs[r], self.ys[r]);
            if keep(r as u32, p) {
                self.xs[w] = self.xs[r];
                self.ys[w] = self.ys[r];
                map[r] = w as u32;
                w += 1;
            }
        }
        self.xs.truncate(w);
        self.ys.truncate(w);
        map
    }
}

impl FromIterator<Point> for PointSet {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> Self {
        PointSet::from_points(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut s = PointSet::new();
        assert!(s.is_empty());
        s.push(Point::new(1.0, 2.0));
        s.push(Point::new(-3.0, 4.5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Point::new(1.0, 2.0));
        assert_eq!(s.get(1), Point::new(-3.0, 4.5));
    }

    #[test]
    fn iter_matches_indexing() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 4.0),
        ];
        let s = PointSet::from_points(pts.clone());
        let collected: Vec<Point> = s.iter().collect();
        assert_eq!(collected, pts);
        for (i, p) in s.iter_enumerated() {
            assert_eq!(s.get(i), p);
        }
    }

    #[test]
    fn bounding_box_is_tight() {
        let s: PointSet = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(
            s.bounding_box(),
            Some(Aabb::from_coords(-2.0, -1.0, 4.0, 5.0))
        );
        assert_eq!(PointSet::new().bounding_box(), None);
    }

    #[test]
    fn retain_compacts_and_maps() {
        let mut s: PointSet = (0..6).map(|i| Point::new(i as f64, 0.0)).collect();
        // Keep even x.
        let map = s.retain_with_map(|_, p| (p.x as i64) % 2 == 0);
        assert_eq!(s.len(), 3);
        assert_eq!(map, vec![0, u32::MAX, 1, u32::MAX, 2, u32::MAX]);
        assert_eq!(s.get(2), Point::new(4.0, 0.0));
    }

    #[test]
    fn soa_slices_are_aligned() {
        let s: PointSet = vec![Point::new(1.0, 10.0), Point::new(2.0, 20.0)]
            .into_iter()
            .collect();
        assert_eq!(s.xs(), &[1.0, 2.0]);
        assert_eq!(s.ys(), &[10.0, 20.0]);
    }
}
