//! Exact Poisson sampling for arbitrary mean.
//!
//! Two regimes:
//!
//! * `μ < 10` — Knuth's multiplication (inversion) method, exact and O(μ).
//! * `μ ≥ 10` — Hörmann's PTRS transformed-rejection sampler (W. Hörmann,
//!   *The transformed rejection method for generating Poisson random
//!   variables*, Insurance: Mathematics & Economics 12, 1993), exact with
//!   O(1) expected trials.
//!
//! `ln Γ` (needed by PTRS) is implemented locally with a Lanczos
//! approximation because the std float gamma functions are not yet stable.

use rand::Rng;

/// Natural log of the gamma function, Lanczos approximation (g = 7, n = 9).
/// Absolute error < 1e-13 for x > 0.5 — far below what rejection sampling
/// needs.
#[allow(clippy::excessive_precision)] // published Lanczos coefficients, kept verbatim
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients from Numerical Recipes (Lanczos, g = 7).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma domain");
    if x < 0.5 {
        // Reflection formula keeps precision near 0.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(k!)` via `ln Γ(k + 1)` with a small exact table for tiny `k`.
#[inline]
#[allow(clippy::approx_constant, clippy::excessive_precision)] // table IS ln(k!), ln(2!) = LN_2
pub fn ln_factorial(k: u64) -> f64 {
    const TABLE: [f64; 10] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
    ];
    if (k as usize) < TABLE.len() {
        TABLE[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

/// Draw one Poisson(μ) variate. Exact for all finite `mean ≥ 0`.
pub fn sample_poisson<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    assert!(
        mean >= 0.0 && mean.is_finite(),
        "invalid Poisson mean {mean}"
    );
    if mean == 0.0 {
        0
    } else if mean < 10.0 {
        poisson_inversion(rng, mean)
    } else {
        poisson_ptrs(rng, mean)
    }
}

/// Knuth's multiplication method: count uniforms until the running product
/// drops below e^(−μ).
fn poisson_inversion<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let limit = (-mean).exp();
    let mut product: f64 = rng.random::<f64>();
    let mut k = 0u64;
    while product > limit {
        product *= rng.random::<f64>();
        k += 1;
    }
    k
}

/// Hörmann's PTRS sampler for μ ≥ 10.
fn poisson_ptrs<R: Rng>(rng: &mut R, mean: f64) -> u64 {
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.123_9 + 1.132_8 / (b - 3.4);
    let v_r = 0.927_7 - 3.622_4 / (b - 2.0);
    let ln_mean = mean.ln();

    loop {
        let u = rng.random::<f64>() - 0.5;
        let v = rng.random::<f64>();
        let us = 0.5 - u.abs();
        let k_f = (2.0 * a / us + b) * u + mean + 0.43;
        if k_f < 0.0 {
            continue;
        }
        let k = k_f.floor();
        if us >= 0.07 && v <= v_r {
            return k as u64;
        }
        if us < 0.013 && v > us {
            continue;
        }
        let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
        let rhs = k * ln_mean - mean - ln_factorial(k as u64);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        let half = ln_gamma(0.5);
        assert!((half - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_factorial_table_consistent_with_gamma() {
        for k in 0..20u64 {
            let direct: f64 = (1..=k).map(|i| (i as f64).ln()).sum();
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-10,
                "k = {k}: {} vs {direct}",
                ln_factorial(k)
            );
        }
    }

    #[test]
    fn zero_mean_is_always_zero() {
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    fn check_moments(mean: f64, n: usize, seed: u64) {
        let mut rng = rng_from_seed(seed);
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, mean)).collect();
        let m = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        // Sample mean of Poisson(μ): sd = √(μ/n); allow 5σ.
        let tol_mean = 5.0 * (mean / n as f64).sqrt();
        assert!(
            (m - mean).abs() < tol_mean,
            "mean {mean}: sample mean {m}, tol {tol_mean}"
        );
        // Variance should also be ≈ μ (Poisson); tolerance is loose.
        let tol_var = 6.0 * mean * (2.0 / n as f64).sqrt() + 0.2;
        assert!(
            (var - mean).abs() < tol_var,
            "mean {mean}: sample var {var}, tol {tol_var}"
        );
    }

    #[test]
    fn inversion_regime_moments() {
        check_moments(0.5, 40_000, 101);
        check_moments(3.0, 40_000, 102);
        check_moments(9.5, 40_000, 103);
    }

    #[test]
    fn ptrs_regime_moments() {
        check_moments(10.5, 40_000, 201);
        check_moments(50.0, 40_000, 202);
        check_moments(400.0, 20_000, 203);
        check_moments(10_000.0, 5_000, 204);
    }

    #[test]
    fn pmf_chi_square_at_mean_four() {
        // Compare empirical frequencies of k = 0..12 against the exact pmf
        // for μ = 4 with a generous chi-square bound.
        let mean = 4.0;
        let n = 100_000;
        let mut rng = rng_from_seed(42);
        let mut counts = [0u64; 13];
        let mut overflow = 0u64;
        for _ in 0..n {
            let k = sample_poisson(&mut rng, mean);
            if (k as usize) < counts.len() {
                counts[k as usize] += 1;
            } else {
                overflow += 1;
            }
        }
        let mut chi2 = 0.0;
        for (k, &c) in counts.iter().enumerate() {
            let p =
                (mean.powi(k as i32) * (-mean).exp()) / (1..=k).product::<usize>().max(1) as f64;
            let expected = p * n as f64;
            chi2 += (c as f64 - expected).powi(2) / expected;
        }
        // 12 dof, p = 0.001 critical value ≈ 32.9; be generous.
        assert!(chi2 < 40.0, "chi2 = {chi2}, counts = {counts:?}");
        // P(K > 12 | μ=4) ≈ 0.000297 → expect ~30 of 100k.
        assert!(overflow < 120, "overflow = {overflow}");
    }

    #[test]
    fn boundary_between_regimes_is_smooth() {
        // Means just below/above the 10.0 switch should give statistically
        // indistinguishable results.
        let mut rng = rng_from_seed(77);
        let n = 60_000;
        let m_lo: f64 = (0..n)
            .map(|_| sample_poisson(&mut rng, 9.999) as f64)
            .sum::<f64>()
            / n as f64;
        let m_hi: f64 = (0..n)
            .map(|_| sample_poisson(&mut rng, 10.001) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((m_lo - m_hi).abs() < 0.15, "{m_lo} vs {m_hi}");
    }

    #[test]
    fn determinism_across_calls() {
        let a: Vec<u64> = {
            let mut rng = rng_from_seed(9);
            (0..50).map(|_| sample_poisson(&mut rng, 123.4)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = rng_from_seed(9);
            (0..50).map(|_| sample_poisson(&mut rng, 123.4)).collect()
        };
        assert_eq!(a, b);
    }
}
