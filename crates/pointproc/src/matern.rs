//! Matérn type-II hard-core thinning.
//!
//! Real deployments are rarely perfectly Poisson: minimum-separation
//! constraints (e.g. aerial dispersal, manual placement) produce *hard-core*
//! processes. The robustness experiments run the SENS constructions on
//! Matérn-II deployments to check that the topology properties are not an
//! artifact of complete spatial randomness.
//!
//! Matérn type II: realise a primary PPP, give every point an independent
//! uniform mark, and delete any point that has a neighbour within `hard_core`
//! distance carrying a *smaller* mark.

use crate::points::PointSet;
use crate::ppp::sample_poisson_window;
use rand::Rng;
use wsn_geom::{Aabb, Point};

/// Sample a Matérn type-II hard-core process with primary intensity
/// `lambda_parent` and hard-core radius `hard_core` in `window`.
///
/// The retained intensity is `λ_ret = (1 − e^(−λπr²)) / (πr²)` in the
/// infinite-volume limit; the tests verify this.
pub fn sample_matern_ii<R: Rng>(
    rng: &mut R,
    lambda_parent: f64,
    hard_core: f64,
    window: &Aabb,
) -> PointSet {
    assert!(hard_core >= 0.0, "negative hard-core radius");
    let primary = sample_poisson_window(rng, lambda_parent, window);
    let marks: Vec<f64> = (0..primary.len()).map(|_| rng.random::<f64>()).collect();
    thin_by_marks(&primary, &marks, hard_core)
}

/// Mark-based thinning used by [`sample_matern_ii`]; exposed for testing with
/// deterministic marks.
///
/// Uses a uniform grid of cell size `hard_core` so the expected cost is
/// O(n · points-per-neighbourhood) instead of O(n²).
pub fn thin_by_marks(points: &PointSet, marks: &[f64], hard_core: f64) -> PointSet {
    assert_eq!(points.len(), marks.len());
    if hard_core == 0.0 || points.len() <= 1 {
        return points.clone();
    }
    let Some(bb) = points.bounding_box() else {
        return PointSet::new();
    };
    let cell = hard_core;
    let cols = (bb.width() / cell).floor() as i64 + 1;
    let rows = (bb.height() / cell).floor() as i64 + 1;
    let cell_of = |p: Point| -> (i64, i64) {
        (
            (((p.x - bb.min.x) / cell).floor() as i64).clamp(0, cols - 1),
            (((p.y - bb.min.y) / cell).floor() as i64).clamp(0, rows - 1),
        )
    };
    // Bucket point ids by cell.
    let mut buckets: std::collections::HashMap<(i64, i64), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, p) in points.iter_enumerated() {
        buckets.entry(cell_of(p)).or_default().push(i);
    }
    let r2 = hard_core * hard_core;
    let survives = |i: u32, p: Point| -> bool {
        let (ci, cj) = cell_of(p);
        for di in -1..=1 {
            for dj in -1..=1 {
                if let Some(ids) = buckets.get(&(ci + di, cj + dj)) {
                    for &j in ids {
                        if j != i
                            && points.get(j).dist_sq(p) <= r2
                            && (marks[j as usize], j) < (marks[i as usize], i)
                        {
                            return false;
                        }
                    }
                }
            }
        }
        true
    };
    points
        .iter_enumerated()
        .filter(|&(i, p)| survives(i, p))
        .map(|(_, p)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn respects_hard_core_distance() {
        let mut rng = rng_from_seed(21);
        let window = Aabb::square(30.0);
        let r = 1.0;
        let pts = sample_matern_ii(&mut rng, 2.0, r, &window);
        assert!(!pts.is_empty());
        // O(n²) verification of the invariant.
        let v: Vec<Point> = pts.iter().collect();
        for i in 0..v.len() {
            for j in (i + 1)..v.len() {
                assert!(
                    v[i].dist(v[j]) > r - 1e-12,
                    "pair at distance {}",
                    v[i].dist(v[j])
                );
            }
        }
    }

    #[test]
    fn retained_intensity_matches_theory() {
        let mut rng = rng_from_seed(22);
        let window = Aabb::square(100.0);
        let (lambda, r) = (1.0, 0.5);
        let pts = sample_matern_ii(&mut rng, lambda, r, &window);
        let pi_r2 = std::f64::consts::PI * r * r;
        let expected = (1.0 - (-lambda * pi_r2).exp()) / pi_r2 * window.area();
        let n = pts.len() as f64;
        // Boundary effects inflate retention slightly; accept ±10%.
        assert!(
            (n - expected).abs() < 0.10 * expected,
            "n = {n}, expected ≈ {expected}"
        );
    }

    #[test]
    fn zero_radius_keeps_everything() {
        let mut rng = rng_from_seed(23);
        let window = Aabb::square(10.0);
        let primary = sample_poisson_window(&mut rng, 1.0, &window);
        let marks: Vec<f64> = (0..primary.len()).map(|i| i as f64).collect();
        let thinned = thin_by_marks(&primary, &marks, 0.0);
        assert_eq!(thinned.len(), primary.len());
    }

    #[test]
    fn lower_mark_wins_pairwise() {
        // Two points within the hard core: the one with the smaller mark
        // survives.
        let pts: PointSet = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.0)]
            .into_iter()
            .collect();
        let thinned = thin_by_marks(&pts, &[0.9, 0.1], 1.0);
        assert_eq!(thinned.len(), 1);
        assert_eq!(thinned.get(0), Point::new(0.3, 0.0));
    }

    #[test]
    fn chain_thinning_is_mark_local_not_sequential() {
        // Three colinear points each within r of the next: A(0.2) B(0.1)
        // C(0.3). B kills both neighbours; A does NOT protect C (Matérn II
        // compares marks pairwise against all core neighbours).
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(0.8, 0.0),
            Point::new(1.6, 0.0),
        ]
        .into_iter()
        .collect();
        let thinned = thin_by_marks(&pts, &[0.2, 0.1, 0.3], 1.0);
        let v: Vec<Point> = thinned.iter().collect();
        assert_eq!(v, vec![Point::new(0.8, 0.0)]);
    }

    #[test]
    fn grid_thinning_matches_bruteforce() {
        let mut rng = rng_from_seed(24);
        let window = Aabb::square(12.0);
        let primary = sample_poisson_window(&mut rng, 1.5, &window);
        let marks: Vec<f64> = (0..primary.len()).map(|_| rng.random::<f64>()).collect();
        let fast = thin_by_marks(&primary, &marks, 0.8);
        // Brute-force reference.
        let r2 = 0.8 * 0.8;
        let slow: PointSet = primary
            .iter_enumerated()
            .filter(|&(i, p)| {
                primary.iter_enumerated().all(|(j, q)| {
                    j == i || q.dist_sq(p) > r2 || (marks[j as usize], j) > (marks[i as usize], i)
                })
            })
            .map(|(_, p)| p)
            .collect();
        assert_eq!(fast, slow);
    }
}
