//! Morton-ordered construction entry points.
//!
//! Each `build_*_on_order` runs the sharded builder over the spatially
//! sorted copy held by a [`PointOrder`] — grid buckets, ghost gathers and
//! per-shard resident lists then walk the point SoA near-sequentially —
//! and remaps the resulting graph back to original deployment ids at the
//! emission boundary ([`wsn_graph::perm::remap_csr`]). The `build_*_ordered`
//! wrappers construct the Morton order themselves.
//!
//! ## Why the remapped graph is the deployment-order graph
//!
//! The reordered copy carries bit-identical coordinates, and every
//! predicate these builders evaluate is symmetric in its operands
//! (`dist_sq`, `midpoint`) or canonicalised through `min`/`max`, so the
//! *edge set* a builder derives is a pure function of the point multiset —
//! ids only name the endpoints. Remapping endpoint names through
//! `to_orig` and re-canonicalising via `Csr::from_canonical_edges`'s
//! per-node sort therefore reproduces the deployment-order graph
//! byte-for-byte. Selection tie-breaks (k-NN, Yao cones, HNG uplinks) do
//! key on ids as a *last* resort, but only after exact distance equality —
//! a measure-zero event for the continuous deployments this pipeline
//! generates; the permutation-invariance suite and the golden matrix pin
//! the equality in practice. HNG level draws are seeded per *original* id
//! ([`crate::hng::hng_levels`]) and gathered into rank space, so the level
//! structure itself is layout-independent by construction.

use wsn_graph::perm::remap_csr;
use wsn_graph::Csr;
use wsn_pointproc::{PointOrder, PointSet};

use crate::hng::{build_hng_sharded_on_levels, hng_levels, HngParams};
use crate::sharded::{
    build_gabriel_sharded, build_knn_sharded, build_rng_sharded, build_udg_sharded,
    build_yao_sharded,
};

/// UDG over a prepared order — edge-identical to [`crate::build_udg`].
pub fn build_udg_on_order(order: &PointOrder, radius: f64, tiles_per_shard: usize) -> Csr {
    remap_csr(
        &build_udg_sharded(order.points(), radius, tiles_per_shard),
        order.to_orig(),
    )
}

/// Gabriel graph over a prepared order — edge-identical to
/// [`crate::build_gabriel`].
pub fn build_gabriel_on_order(order: &PointOrder, radius: f64, tiles_per_shard: usize) -> Csr {
    remap_csr(
        &build_gabriel_sharded(order.points(), radius, tiles_per_shard),
        order.to_orig(),
    )
}

/// Relative neighborhood graph over a prepared order — edge-identical to
/// [`crate::build_rng`].
pub fn build_rng_on_order(order: &PointOrder, radius: f64, tiles_per_shard: usize) -> Csr {
    remap_csr(
        &build_rng_sharded(order.points(), radius, tiles_per_shard),
        order.to_orig(),
    )
}

/// Yao graph over a prepared order — edge-identical to [`crate::build_yao`].
pub fn build_yao_on_order(
    order: &PointOrder,
    radius: f64,
    cones: usize,
    tiles_per_shard: usize,
) -> Csr {
    remap_csr(
        &build_yao_sharded(order.points(), radius, cones, tiles_per_shard),
        order.to_orig(),
    )
}

/// Symmetrised k-NN over a prepared order — edge-identical to
/// [`crate::build_knn`].
pub fn build_knn_on_order(order: &PointOrder, k: usize, tiles_per_shard: usize) -> Csr {
    remap_csr(
        &build_knn_sharded(order.points(), k, tiles_per_shard),
        order.to_orig(),
    )
}

/// HNG over a prepared order — edge-identical to [`crate::build_hng`].
///
/// Level promotion draws are keyed on original deployment ids (the same
/// `derive_seed2(seed, node, level)` stream every other HNG builder uses)
/// and gathered into rank space, so the hierarchy is identical no matter
/// the layout.
pub fn build_hng_on_order(
    order: &PointOrder,
    params: HngParams,
    seed: u64,
    tiles_per_shard: usize,
) -> Csr {
    let params = HngParams::new(params.p, params.links); // validate
    let levels = hng_levels(order.len(), params.p, seed);
    let rank_levels = order.gather_values(&levels);
    remap_csr(
        &build_hng_sharded_on_levels(order.points(), &rank_levels, params.links, tiles_per_shard),
        order.to_orig(),
    )
}

/// Morton-ordered UDG: reorder, build sharded, remap.
pub fn build_udg_ordered(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    build_udg_on_order(&PointOrder::morton(points), radius, tiles_per_shard)
}

/// Morton-ordered Gabriel graph.
pub fn build_gabriel_ordered(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    build_gabriel_on_order(&PointOrder::morton(points), radius, tiles_per_shard)
}

/// Morton-ordered relative neighborhood graph.
pub fn build_rng_ordered(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    build_rng_on_order(&PointOrder::morton(points), radius, tiles_per_shard)
}

/// Morton-ordered Yao graph.
pub fn build_yao_ordered(
    points: &PointSet,
    radius: f64,
    cones: usize,
    tiles_per_shard: usize,
) -> Csr {
    build_yao_on_order(&PointOrder::morton(points), radius, cones, tiles_per_shard)
}

/// Morton-ordered symmetrised k-NN.
pub fn build_knn_ordered(points: &PointSet, k: usize, tiles_per_shard: usize) -> Csr {
    build_knn_on_order(&PointOrder::morton(points), k, tiles_per_shard)
}

/// Morton-ordered HNG.
pub fn build_hng_ordered(
    points: &PointSet,
    params: HngParams,
    seed: u64,
    tiles_per_shard: usize,
) -> Csr {
    build_hng_on_order(&PointOrder::morton(points), params, seed, tiles_per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_gabriel, build_hng, build_knn, build_rng, build_udg, build_yao};
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    fn pts(n: usize, seed: u64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(12.0))
    }

    #[test]
    fn ordered_builders_match_monolithic() {
        let p = pts(900, 41);
        assert_eq!(build_udg_ordered(&p, 1.0, 4), build_udg(&p, 1.0));
        assert_eq!(build_gabriel_ordered(&p, 1.2, 4), build_gabriel(&p, 1.2));
        assert_eq!(build_rng_ordered(&p, 1.2, 4), build_rng(&p, 1.2));
        assert_eq!(build_yao_ordered(&p, 1.0, 6, 4), build_yao(&p, 1.0, 6));
        assert_eq!(build_knn_ordered(&p, 8, 4), build_knn(&p, 8));
        let hp = HngParams::new(0.5, 2);
        assert_eq!(build_hng_ordered(&p, hp, 7, 4), build_hng(&p, hp, 7));
    }

    #[test]
    fn arbitrary_orders_also_match() {
        // Not just Morton: any bijection must remap back to the same graph.
        let p = pts(400, 42);
        let n = p.len() as u32;
        // A fixed "shuffle": reverse, which is maximally non-monotone.
        let rev: Vec<u32> = (0..n).rev().collect();
        let order = PointOrder::from_to_orig(&p, rev);
        assert_eq!(build_udg_on_order(&order, 1.0, 4), build_udg(&p, 1.0));
        assert_eq!(build_knn_on_order(&order, 6, 4), build_knn(&p, 6));
        let hp = HngParams::new(0.4, 2);
        assert_eq!(build_hng_on_order(&order, hp, 3, 4), build_hng(&p, hp, 3));
    }

    #[test]
    fn empty_point_sets_are_fine() {
        let p = PointSet::new();
        let order = PointOrder::morton(&p);
        assert_eq!(build_udg_on_order(&order, 1.0, 4).n(), 0);
        assert_eq!(build_knn_on_order(&order, 4, 4).n(), 0);
    }
}
