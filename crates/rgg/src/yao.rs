//! Yao-graph topology control (baseline).
//!
//! Around every node the plane is divided into `cones` equal angular
//! sectors; the node keeps a (directed) edge to the nearest UDG neighbour in
//! each sector, and the undirected Yao graph is the symmetrised union. For
//! `cones ≥ 6` the construction preserves UDG connectivity and is a
//! constant-factor spanner — the classical degree-bounded baseline.

use crate::udg::build_udg;
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

/// The directed Yao selections: `lists[u]` = the nearest UDG neighbour of
/// `u` in each non-empty cone, in cone order. At most `cones` entries per
/// node — the degree-bound witness the property tests pin.
pub fn yao_out_lists(points: &PointSet, radius: f64, cones: usize) -> Vec<Vec<u32>> {
    assert!(cones >= 1, "need at least one cone");
    let index = GridIndex::build(points, radius);
    let sector = std::f64::consts::TAU / cones as f64;
    // best[c] = (dist, id) of the nearest neighbour in cone c.
    let mut best: Vec<Option<(f64, u32)>> = vec![None; cones];
    let mut lists = Vec::with_capacity(points.len());
    for (u, p) in points.iter_enumerated() {
        best.iter_mut().for_each(|b| *b = None);
        index.for_each_in_disk(p, radius, |v, q| {
            if v == u {
                return;
            }
            let angle = (q.y - p.y)
                .atan2(q.x - p.x)
                .rem_euclid(std::f64::consts::TAU);
            let cone = ((angle / sector) as usize).min(cones - 1);
            let d = p.dist(q);
            // Deterministic tie-break by id keeps the build reproducible.
            let cand = (d, v);
            if best[cone].is_none_or(|cur| cand < cur) {
                best[cone] = Some(cand);
            }
        });
        lists.push(best.iter().flatten().map(|b| b.1).collect());
    }
    lists
}

/// Build the Yao subgraph of `UDG(points, radius)` with `cones` sectors.
pub fn build_yao(points: &PointSet, radius: f64, cones: usize) -> Csr {
    assert!(cones >= 1, "need at least one cone");
    if points.is_empty() {
        return build_udg(points, radius);
    }
    let mut el = EdgeList::new(points.len());
    for (u, targets) in yao_out_lists(points, radius, cones).iter().enumerate() {
        for &v in targets {
            el.add(u as u32, v);
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wsn_geom::{Aabb, Point};
    use wsn_graph::components::connected_components;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    #[test]
    fn keeps_nearest_per_cone() {
        // Two points to the right of the origin: only the nearer is kept by
        // the origin's right-facing cone (cones = 4 → quadrant-ish sectors).
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.05),
            Point::new(0.9, 0.05),
        ]
        .into_iter()
        .collect();
        let g = build_yao(&pts, 1.0, 4);
        assert!(g.has_edge(0, 1));
        // Edge 0–2 exists only if node 2 selected 0 in one of ITS cones;
        // 2's left cone contains both 0 and 1, and 1 is nearer.
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn single_cone_is_nearest_neighbor_union() {
        let pts = sample_binomial_window(&mut rng_from_seed(3), 40, &Aabb::square(4.0));
        let yao1 = build_yao(&pts, 2.0, 1);
        // With one cone each node keeps exactly its nearest UDG neighbour.
        for u in 0..pts.len() as u32 {
            let udg_nbrs: Vec<u32> = wsn_spatial::bruteforce::in_disk(&pts, pts.get(u), 2.0)
                .into_iter()
                .filter(|&v| v != u)
                .collect();
            if udg_nbrs.is_empty() {
                continue;
            }
            let nearest = udg_nbrs
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    pts.get(u)
                        .dist(pts.get(a))
                        .total_cmp(&pts.get(u).dist(pts.get(b)))
                        .then(a.cmp(&b))
                })
                .unwrap();
            assert!(
                yao1.has_edge(u, nearest),
                "node {u} must keep nearest {nearest}"
            );
        }
    }

    #[test]
    fn max_out_degree_bounds_total_degree_distribution() {
        let pts = sample_binomial_window(&mut rng_from_seed(4), 300, &Aabb::square(8.0));
        let cones = 6;
        let yao = build_yao(&pts, 1.0, cones);
        let udg = build_udg(&pts, 1.0);
        // Yao has at most `cones` out-edges per node, so total edge count is
        // ≤ cones·n (and typically far below the UDG's).
        assert!(yao.m() <= cones * pts.len());
        assert!(yao.m() <= udg.m());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Yao(≥6) ⊆ UDG and preserves UDG connectivity.
        #[test]
        fn prop_subgraph_connectivity(seed in 0u64..200, n in 2usize..80) {
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(5.0));
            let udg = build_udg(&pts, 1.2);
            let yao = build_yao(&pts, 1.2, 6);
            for (u, v) in yao.edges() {
                prop_assert!(udg.has_edge(u, v));
            }
            let cu = connected_components(&udg);
            let cy = connected_components(&yao);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(cu.same(a, b), cy.same(a, b));
                }
            }
        }
    }
}
