//! Hierarchical neighbor graphs — Bagchi–Madan–Premi (arXiv:0903.0742).
//!
//! A sparse, connected-by-construction overlay from the SENS authors'
//! own lineage, built from two ingredients:
//!
//! * **Probabilistic level promotion.** Every node starts at level 1 and
//!   is promoted one level at a time by independent coin flips with
//!   success probability `p` (capped at [`MAX_LEVEL`]), so levels are
//!   geometric: the expected population at level `≥ j` thins by `p` per
//!   level. Each flip is a pure function of `(seed, node, trial)` via the
//!   repo-wide hash streams, which makes the whole hierarchy — like every
//!   other topology here — a pure function of `(seed, node)`: shards can
//!   compute levels independently and churn never re-rolls them.
//! * **Nearest-neighbor uplinks.** A node `u` at level `ℓ(u)` links, for
//!   every level `i ∈ 1..=min(ℓ(u), T−1)` (where `T` is the top occupied
//!   level), to its [`HngParams::links`] nearest nodes of level `≥ i+1`
//!   (ties broken by `(distance, id)` exactly as k-NN does). The nodes at
//!   level `T` form a clique.
//!
//! Connectivity is by construction: from any node, following an uplink
//! strictly increases the level, so every node reaches the top clique in
//! at most `T` hops. The expected degree is `O(links / (p·(1−p)))`,
//! independent of network size — the bounded-expected-degree claim the
//! scenario layer's claim-audit metrics check.
//!
//! Three byte-identical builders mirror the established pattern: a
//! monolithic serial one ([`build_hng`]), a tile-sharded parallel one
//! ([`build_hng_sharded`]) whose per-node certificates follow the same
//! kth-distance margin rule as the sharded k-NN derivation, and the
//! shard derivation (`derive_hng`) the incremental engine re-runs under
//! churn.

use wsn_geom::hash::{derive_seed2, mix64};
use wsn_geom::{Aabb, Point};
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

use crate::sharded::{fan_out, interior_margin, knn_cell_size, plan, Shard};

/// Promotion cap: levels are geometric, so 24 levels cover any population
/// this repo reaches (`p = 0.5` exhausts ~16 million nodes) while keeping
/// the per-node trial loop trivially bounded.
pub const MAX_LEVEL: u32 = 24;

/// The two knobs of a hierarchical neighbor graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HngParams {
    /// Per-trial promotion probability, strictly inside `(0, 1)`.
    pub p: f64,
    /// Uplinks per occupied level (the classic construction uses 1; more
    /// links trade degree for robustness and stretch).
    pub links: usize,
}

impl HngParams {
    pub fn new(p: f64, links: usize) -> Self {
        assert!(p > 0.0 && p < 1.0, "promotion probability must be in (0,1)");
        assert!(links >= 1, "need at least one uplink per level");
        HngParams { p, links }
    }
}

/// Uniform in `[0, 1)` from one hash word (the simnet engine keeps an
/// identical crate-private copy; promotion draws must not depend on it).
fn u01(h: u64) -> f64 {
    (mix64(h) >> 11) as f64 / (1u64 << 53) as f64
}

/// The level of every node: 1 + the number of consecutive successful
/// promotion trials, each an independent `(seed, node, trial)`-keyed coin
/// with success probability `p`, capped at [`MAX_LEVEL`].
///
/// Levels are keyed by *universe* id and never re-rolled: a churned
/// population restricts this vector through its alive mask instead of
/// recomputing over the survivors, so repair, cold rebuild, and serial
/// reference all see the same hierarchy.
pub fn hng_levels(n: usize, p: f64, seed: u64) -> Vec<u32> {
    (0..n as u64)
        .map(|u| {
            let mut lvl = 1u32;
            while lvl < MAX_LEVEL && u01(derive_seed2(seed, u, lvl as u64)) < p {
                lvl += 1;
            }
            lvl
        })
        .collect()
}

/// Per-level candidate subsets of one population: `sets[j - 2]` holds the
/// points of level `≥ j` for `j ∈ 2..=top_level`, ids ascending in the
/// population's own id space (so monotone id maps preserve every
/// tie-break).
pub(crate) struct LevelSets {
    /// Highest occupied level `T` (1 for an empty or all-level-1 set).
    pub(crate) top_level: u32,
    /// Ascending ids of the level-`T` nodes — the clique.
    pub(crate) top: Vec<u32>,
    pub(crate) sets: Vec<(PointSet, Vec<u32>)>,
}

impl LevelSets {
    pub(crate) fn build(points: &PointSet, levels: &[u32]) -> LevelSets {
        debug_assert_eq!(points.len(), levels.len());
        let top_level = levels.iter().copied().max().unwrap_or(1);
        let top: Vec<u32> = (0..points.len() as u32)
            .filter(|&u| levels[u as usize] == top_level)
            .collect();
        let mut sets: Vec<(PointSet, Vec<u32>)> = (2..=top_level)
            .map(|_| (PointSet::new(), Vec::new()))
            .collect();
        // One forward pass keeps every subset ascending by construction.
        for (u, p) in points.iter_enumerated() {
            for j in 2..=levels[u as usize] {
                let (pts, ids) = &mut sets[(j - 2) as usize];
                pts.push(p);
                ids.push(u);
            }
        }
        LevelSets {
            top_level,
            top,
            sets,
        }
    }

    /// One exact-k-NN index per level subset (the cell size is a search
    /// heuristic only — [`GridIndex::knn`] is exact for any cell).
    pub(crate) fn indexes(&self, links: usize) -> Vec<GridIndex<'_>> {
        self.sets
            .iter()
            .map(|(pts, _)| GridIndex::build(pts, knn_cell_size(pts, links.max(1))))
            .collect()
    }
}

/// `u`'s exact uplink targets over the whole population behind `sets`:
/// for each `i ∈ 1..=min(lvl_u, T−1)`, the `links` nearest members of
/// level `≥ i+1` (excluding `u` itself), in the population's id space.
pub(crate) fn upward_links(
    sets: &LevelSets,
    indexes: &[GridIndex],
    p: Point,
    u: u32,
    lvl_u: u32,
    links: usize,
) -> Vec<u32> {
    let mut out = Vec::new();
    let hi = lvl_u.min(sets.top_level.saturating_sub(1));
    for i in 1..=hi {
        let j = i + 1;
        let (_, ids) = &sets.sets[(j - 2) as usize];
        let skip = if lvl_u >= j {
            Some(ids.binary_search(&u).expect("member of its own level set") as u32)
        } else {
            None
        };
        for (v, _) in indexes[(j - 2) as usize].knn(p, links, skip) {
            out.push(ids[v as usize]);
        }
    }
    out
}

/// Build `HNG(points, levels, links)` on an explicit level assignment —
/// the monolithic reference builder, and the entry point cold rebuilds of
/// churned populations use (restrict the universe levels through the
/// alive mask; do **not** re-roll them over survivor ids).
pub fn build_hng_on_levels(points: &PointSet, levels: &[u32], links: usize) -> Csr {
    assert!(links >= 1, "need at least one uplink per level");
    assert_eq!(levels.len(), points.len(), "level per point");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let sets = LevelSets::build(points, levels);
    let indexes = sets.indexes(links);
    let mut el = EdgeList::with_capacity(points.len(), points.len() * (links + 1));
    for (u, p) in points.iter_enumerated() {
        for v in upward_links(&sets, &indexes, p, u, levels[u as usize], links) {
            el.add(u, v);
        }
    }
    for (i, &a) in sets.top.iter().enumerate() {
        for &b in &sets.top[i + 1..] {
            el.add(a, b);
        }
    }
    Csr::from_edge_list(el)
}

/// Build `HNG(points, params, seed)` — levels rolled from `(seed, node)`,
/// then [`build_hng_on_levels`].
pub fn build_hng(points: &PointSet, params: HngParams, seed: u64) -> Csr {
    let params = HngParams::new(params.p, params.links); // validate
    let levels = hng_levels(points.len(), params.p, seed);
    build_hng_on_levels(points, &levels, params.links)
}

/// Shard halo for HNG: 3× the radius expected to contain `links + 1`
/// level-`≥2` nodes, the [`crate::knn_halo`] analogue at the promoted
/// density — computed from the *observed* level assignment so churned
/// subsets stay self-consistent. Level-1 uplinks almost surely fit;
/// higher-level queries routinely exceed it and take the certified
/// fallback path instead, which is why HNG shards behave like k-NN
/// straggler shards under incremental repair.
pub fn hng_halo(points: &PointSet, levels: &[u32], links: usize) -> f64 {
    let bb = points.bounding_box().expect("caller guards empty sets");
    let area = bb.area().max(1e-9);
    let promoted = levels.iter().filter(|&&l| l >= 2).count().max(1);
    let density = promoted as f64 / area;
    3.0 * ((links as f64 + 1.0) / (std::f64::consts::PI * density))
        .sqrt()
        .clamp(1e-3, bb.width().max(bb.height()).max(1e-3))
}

/// What one shard's cached HNG emissions depend on *beyond* its own
/// ghost-padded geometry. Margin-certified uplink rungs need no record —
/// their answer disk provably fits the padded box, so any churn that
/// could change them also marks the shard geometrically. Every other
/// rung (answered through `covers_all` or the exact fallback) records a
/// dependence box: churn of a node of level `≥ j` inside the box may
/// change the cached answer, so the incremental engine re-derives the
/// shard. Boxes are unioned per target level, ascending `j`, so a shard
/// carries at most `T − 1` of them.
///
/// Top-clique edges are deliberately *not* recorded here: they depend
/// only on the alive top level and its member set, which the engine
/// tracks directly (`IncrementalGraph::hng_top`).
#[derive(Clone, Debug, Default)]
pub(crate) struct HngDeps {
    /// `(target level j, union of answer disks)` per fallback-answered
    /// rung, ascending `j`.
    pub(crate) boxes: Vec<(u32, Aabb)>,
}

impl HngDeps {
    /// Record one rung's dependence: the disk around `p` reaching the
    /// worst answered distance (any closer level-`≥ j` churn can displace
    /// an answer), or the whole plane when the answer ran short of
    /// `links` — then a level-`≥ j` join *anywhere* adds an edge.
    fn record(&mut self, j: u32, p: Point, answer: &[(u32, f64)], links: usize) {
        let bb = if answer.len() < links {
            Aabb::new(
                Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
                Point::new(f64::INFINITY, f64::INFINITY),
            )
        } else {
            let worst = answer.last().map(|&(_, d)| d).unwrap_or(0.0);
            Aabb::centered_square(p, 2.0 * worst)
        };
        match self.boxes.binary_search_by_key(&j, |&(lvl, _)| lvl) {
            Ok(i) => self.boxes[i].1 = self.boxes[i].1.union(&bb),
            Err(i) => self.boxes.insert(i, (j, bb)),
        }
    }
}

/// One shard's HNG emissions as canonical `(min, max)` pairs (symmetrised
/// and deduplicated downstream like Yao/k-NN), plus the straggler flag
/// and the dependence record.
///
/// `levels` is indexed by the ids in `shard.ids`; `top`/`top_level`
/// describe the top occupied level of the *whole* population. Each uplink
/// rung is certified independently: a rung is locally certain iff it
/// found `links` candidates whose worst distance fits the node's
/// [`interior_margin`] of the shard's `padded` box — the same per-answer
/// certificate as k-NN, so a certified list provably cannot depend on
/// points beyond the box. A failed rung is answered exactly — through the
/// gather itself when `covers_all`, else through
/// `fallback(p, gu, j)` (the node's exact `links` nearest level-`≥ j`
/// nodes as `(universe id, distance)`, in k-NN `(distance, id)` order) —
/// and records its dependence disk in the returned [`HngDeps`].
///
/// The straggler flag keeps the sharded builder's conservative meaning
/// (clique owners and `covers_all`-certified answers depend on global
/// structure); the incremental engine ignores it for HNG and trusts the
/// dependence record plus its own top-level tracking instead.
#[allow(clippy::too_many_arguments)]
pub(crate) fn derive_hng<F>(
    shard: &Shard,
    levels: &[u32],
    links: usize,
    top: &[u32],
    top_level: u32,
    padded: &Aabb,
    covers_all: bool,
    fallback: F,
) -> (Vec<(u32, u32)>, bool, HngDeps)
where
    F: Fn(Point, u32, u32) -> Vec<(u32, f64)>,
{
    let mut out = Vec::new();
    let mut straggled = false;
    let mut deps = HngDeps::default();
    if shard.pts.is_empty() {
        return (out, straggled, deps);
    }
    let local_levels: Vec<u32> = shard.ids.iter().map(|&g| levels[g as usize]).collect();
    let local_sets = LevelSets::build(&shard.pts, &local_levels);
    let indexes = local_sets.indexes(links);
    for (u, p) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        let lu = levels[gu as usize];
        if lu >= top_level {
            // Clique member: exact from the global top list.
            straggled = true;
            for &gv in top {
                if gv != gu {
                    out.push((gu.min(gv), gu.max(gv)));
                }
            }
        }
        let hi = lu.min(top_level.saturating_sub(1));
        for i in 1..=hi {
            let j = i + 1;
            let Some((_, ids_j)) = local_sets.sets.get((j - 2) as usize) else {
                // No local candidates at this level at all (cannot happen
                // under `covers_all`: `j ≤ top_level`, so the level is
                // occupied globally); only the fallback knows.
                let ans = fallback(p, gu, j);
                deps.record(j, p, &ans, links);
                for &(gv, _) in &ans {
                    out.push((gu.min(gv), gu.max(gv)));
                }
                continue;
            };
            let skip = if local_levels[u as usize] >= j {
                Some(
                    ids_j
                        .binary_search(&u)
                        .expect("member of its own level set") as u32,
                )
            } else {
                None
            };
            let found = indexes[(j - 2) as usize].knn(p, links, skip);
            let margin_ok = found.len() == links
                && found
                    .last()
                    .is_none_or(|&(_, d)| d <= interior_margin(p, padded));
            if margin_ok {
                // Certified: the answer disk fits the padded box, no
                // record needed — churn inside it marks the shard
                // geometrically.
                for &(v, _) in &found {
                    let gv = shard.ids[ids_j[v as usize] as usize];
                    out.push((gu.min(gv), gu.max(gv)));
                }
            } else if covers_all {
                // Exact (the gather saw everyone) but certified only by
                // global knowledge — record the dependence disk.
                straggled = true;
                deps.record(j, p, &found, links);
                for &(v, _) in &found {
                    let gv = shard.ids[ids_j[v as usize] as usize];
                    out.push((gu.min(gv), gu.max(gv)));
                }
            } else {
                let ans = fallback(p, gu, j);
                deps.record(j, p, &ans, links);
                for &(gv, _) in &ans {
                    out.push((gu.min(gv), gu.max(gv)));
                }
            }
        }
    }
    (out, straggled, deps)
}

/// Sharded `HNG` on an explicit level assignment — edge-identical to
/// [`build_hng_on_levels`]. The plan's halo is [`hng_halo`]; stragglers
/// (uplinks the margin certificate cannot vouch for, plus the top clique)
/// fall back to exact queries on shared whole-population level indexes.
pub fn build_hng_sharded_on_levels(
    points: &PointSet,
    levels: &[u32],
    links: usize,
    tiles_per_shard: usize,
) -> Csr {
    assert!(links >= 1, "need at least one uplink per level");
    assert_eq!(levels.len(), points.len(), "level per point");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let halo = hng_halo(points, levels, links);
    let gather = GridIndex::build(points, halo / 3.0);
    let grid = plan(points, halo, tiles_per_shard);
    let bbox = points.bounding_box().unwrap();
    let sets = LevelSets::build(points, levels);
    let indexes = sets.indexes(links);
    let edges = fan_out(&grid, |s| {
        let shard = Shard::gather(points, &gather, &grid, s, halo);
        let padded = grid.padded(s, halo);
        let covers_all = padded.contains_aabb(&bbox);
        derive_hng(
            &shard,
            levels,
            links,
            &sets.top,
            sets.top_level,
            &padded,
            covers_all,
            |p, gu, j| {
                // One exact rung from the whole-population level index
                // (ids are already global here).
                let (_, ids_j) = &sets.sets[(j - 2) as usize];
                let skip = if levels[gu as usize] >= j {
                    Some(
                        ids_j
                            .binary_search(&gu)
                            .expect("member of its own level set") as u32,
                    )
                } else {
                    None
                };
                indexes[(j - 2) as usize]
                    .knn(p, links, skip)
                    .into_iter()
                    .map(|(v, d)| (ids_j[v as usize], d))
                    .collect()
            },
        )
        .0
    });
    let mut el = EdgeList::with_capacity(points.len(), edges.len());
    for (u, v) in edges {
        el.add(u, v);
    }
    Csr::from_edge_list(el)
}

/// Sharded `HNG(points, params, seed)` — edge-identical to [`build_hng`].
pub fn build_hng_sharded(
    points: &PointSet,
    params: HngParams,
    seed: u64,
    tiles_per_shard: usize,
) -> Csr {
    let params = HngParams::new(params.p, params.links); // validate
    let levels = hng_levels(points.len(), params.p, seed);
    build_hng_sharded_on_levels(points, &levels, params.links, tiles_per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WHOLE_WINDOW;
    use proptest::prelude::*;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    fn pts(n: usize, seed: u64, side: f64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(side))
    }

    fn connected(g: &Csr) -> bool {
        let n = g.n();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == n
    }

    #[test]
    fn levels_are_geometric_and_deterministic() {
        let levels = hng_levels(20_000, 0.5, 42);
        assert_eq!(levels, hng_levels(20_000, 0.5, 42));
        let l2 = levels.iter().filter(|&&l| l >= 2).count() as f64;
        let frac = l2 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "level-2 fraction {frac}");
        assert!(levels.iter().all(|&l| (1..=MAX_LEVEL).contains(&l)));
        // A different seed rolls a different hierarchy.
        assert_ne!(levels, hng_levels(20_000, 0.5, 43));
    }

    #[test]
    fn serial_graph_is_connected_across_seeds() {
        for seed in 0..8u64 {
            let p = pts(300, seed, 10.0);
            let g = build_hng(&p, HngParams::new(0.5, 1), derive_seed2(seed, 1, 2));
            assert!(connected(&g), "seed {seed}: HNG must be connected");
        }
    }

    #[test]
    fn expected_degree_stays_bounded_as_n_grows() {
        // O(1) expected degree: mean degree must not grow with n.
        let mut means = Vec::new();
        for (seed, n) in [(1u64, 500usize), (2, 2000), (3, 8000)] {
            let p = pts(n, seed, (n as f64).sqrt());
            let g = build_hng(&p, HngParams::new(0.5, 1), 7);
            means.push(2.0 * g.m() as f64 / n as f64);
        }
        for &m in &means {
            // E[deg] ≈ 2·links·E[ℓ] = 4 at p = 0.5; the clique adds o(1).
            assert!(m < 6.0, "mean degree {m} too large for O(1) claim");
        }
        assert!(
            (means[2] - means[0]).abs() < 1.0,
            "mean degree drifts with n: {means:?}"
        );
    }

    #[test]
    fn singleton_and_empty_sets() {
        let empty = PointSet::new();
        assert_eq!(build_hng(&empty, HngParams::new(0.5, 1), 1).n(), 0);
        let one: PointSet = [Point::new(0.0, 0.0)].into_iter().collect();
        let g = build_hng(&one, HngParams::new(0.5, 1), 1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.m(), 0);
    }

    use wsn_geom::Point;

    #[test]
    fn uplinks_go_to_nearest_higher_level_node() {
        // Hand-placed line; pick a seed/level layout via explicit levels.
        let p: PointSet = [0.0, 1.0, 3.0, 7.0]
            .iter()
            .map(|&x| Point::new(x, 0.0))
            .collect();
        // Levels: node 1 and 3 at level 2 (top); 0 and 2 at level 1.
        let levels = vec![1, 2, 1, 2];
        let g = build_hng_on_levels(&p, &levels, 1);
        assert!(g.has_edge(0, 1), "0's nearest level-2 node is 1");
        assert!(
            g.has_edge(2, 1),
            "2's nearest level-2 node is 1 (dist 2 < 4)"
        );
        assert!(g.has_edge(1, 3), "top clique");
        assert!(!g.has_edge(0, 2), "no lateral level-1 edges");
        assert_eq!(g.m(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The tile-sharded builder is edge-identical to the serial one for
        /// every shard granularity, including the degenerate whole window.
        #[test]
        fn prop_sharded_matches_serial(seed in 0u64..300, n in 2usize..160, links in 1usize..3) {
            let p = pts(n, seed, 8.0);
            let params = HngParams::new(0.5, links);
            let hseed = derive_seed2(seed, 0x48, 0);
            let serial = build_hng(&p, params, hseed);
            for tiles in [1usize, 4, WHOLE_WINDOW] {
                let sharded = build_hng_sharded(&p, params, hseed, tiles);
                prop_assert_eq!(&serial, &sharded, "tiles = {}", tiles);
            }
        }

        /// Connectivity holds for any seed, density, and promotion rate.
        #[test]
        fn prop_always_connected(seed in 0u64..200, n in 1usize..120, pr in 0.2f64..0.8) {
            let p = pts(n, seed, 6.0);
            let g = build_hng(&p, HngParams::new(pr, 1), derive_seed2(seed, 9, 9));
            prop_assert!(connected(&g));
        }
    }
}
