//! Gabriel-graph topology control (baseline).
//!
//! The Gabriel graph keeps an edge `uv` iff the disk with diameter `uv`
//! contains no other point. Computed, as in the topology-control literature
//! (Li–Wan–Wang), as a spanning subgraph of the UDG: only edges of length
//! ≤ `radius` are considered, which is what a radio can realise anyway.
//!
//! The Gabriel graph is a power spanner (power stretch 1 for β ≥ 2) and
//! preserves UDG connectivity — properties the tests check — which makes it
//! the natural "classical" baseline for EXP-PWR.

use crate::udg::build_udg;
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

/// Build the Gabriel subgraph of `UDG(points, radius)`.
pub fn build_gabriel(points: &PointSet, radius: f64) -> Csr {
    let udg = build_udg(points, radius);
    if points.is_empty() {
        return udg;
    }
    let index = GridIndex::build(points, radius);
    let mut el = EdgeList::new(points.len());
    for (u, v) in udg.edges() {
        let (pu, pv) = (points.get(u), points.get(v));
        let mid = pu.midpoint(pv);
        let r = pu.dist(pv) * 0.5;
        let mut empty = true;
        index.for_each_in_disk(mid, r, |w, q| {
            // Strict interior: boundary points (and the endpoints, which lie
            // exactly on the boundary) do not block the edge.
            if w != u && w != v && q.dist_sq(mid) < r * r - 1e-12 {
                empty = false;
            }
        });
        if empty {
            el.add(u, v);
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wsn_geom::{Aabb, Point};
    use wsn_graph::components::connected_components;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    #[test]
    fn blocking_point_removes_edge() {
        // w sits at the midpoint of uv → uv is not Gabriel.
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.0),
        ]
        .into_iter()
        .collect();
        let g = build_gabriel(&pts, 1.0);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn point_outside_diameter_disk_does_not_block() {
        // w at (0.5, 0.6): outside the radius-0.5 disk centred at (0.5, 0).
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.6),
        ]
        .into_iter()
        .collect();
        let g = build_gabriel(&pts, 1.0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn right_angle_vertex_is_on_boundary_not_blocking() {
        // w such that angle uwv = 90° lies exactly ON the diameter circle;
        // closed-boundary points must not block (degenerate but decided).
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.5),
        ]
        .into_iter()
        .collect();
        let g = build_gabriel(&pts, 1.0);
        assert!(g.has_edge(0, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Gabriel ⊆ UDG, and connectivity of the UDG is preserved.
        #[test]
        fn prop_subgraph_and_connectivity(seed in 0u64..200, n in 2usize..80) {
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(5.0));
            let udg = build_udg(&pts, 1.2);
            let gg = build_gabriel(&pts, 1.2);
            for (u, v) in gg.edges() {
                prop_assert!(udg.has_edge(u, v), "GG edge not in UDG");
            }
            // Same components.
            let cu = connected_components(&udg);
            let cg = connected_components(&gg);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(cu.same(a, b), cg.same(a, b), "pair ({}, {})", a, b);
                }
            }
        }
    }
}
