//! k-nearest-neighbour graphs — the `NN(2, k)` model of Häggström & Meester.
//!
//! Every point establishes an (undirected) edge to the k points nearest to
//! it; the resulting undirected graph is the union of the directed k-NN
//! relation with its reverse. Ties (measure-zero for a PPP) are broken
//! deterministically by point id, as the paper permits ("any tie-breaking
//! mechanism we deem fit").

use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

/// Choose a grid cell size that makes k-NN searches cheap: roughly the
/// radius expected to contain k points at the set's average density.
fn knn_cell_size(points: &PointSet, k: usize) -> f64 {
    let bb = points.bounding_box().unwrap();
    let area = bb.area().max(1e-9);
    let density = points.len() as f64 / area;
    ((k as f64 + 1.0) / (std::f64::consts::PI * density.max(1e-9)))
        .sqrt()
        .clamp(1e-3, bb.width().max(bb.height()).max(1e-3))
}

/// The directed k-NN lists: `lists[u]` = ids of the (up to) k nearest
/// neighbours of `u`, ordered by increasing distance.
pub fn knn_lists(points: &PointSet, k: usize) -> Vec<Vec<u32>> {
    if points.is_empty() || k == 0 {
        return vec![Vec::new(); points.len()];
    }
    let index = GridIndex::build(points, knn_cell_size(points, k));
    points
        .iter_enumerated()
        .map(|(u, p)| {
            index
                .knn(p, k, Some(u))
                .into_iter()
                .map(|(id, _)| id)
                .collect()
        })
        .collect()
}

/// Build the undirected `NN(points, k)` graph.
pub fn build_knn(points: &PointSet, k: usize) -> Csr {
    let lists = knn_lists(points, k);
    let mut el = EdgeList::with_capacity(points.len(), points.len() * k);
    for (u, nbrs) in lists.iter().enumerate() {
        for &v in nbrs {
            el.add(u as u32, v);
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wsn_geom::{Aabb, Point};
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    #[test]
    fn colinear_example() {
        // x positions 0, 1, 3, 7: 1-NN edges are 0→1, 1→0, 2→1, 3→2.
        let pts: PointSet = [0.0, 1.0, 3.0, 7.0]
            .iter()
            .map(|&x| Point::new(x, 0.0))
            .collect();
        let g = build_knn(&pts, 1);
        assert!(g.has_edge(0, 1));
        assert!(
            g.has_edge(1, 2),
            "2's nearest is 1 even though 1's nearest is 0"
        );
        assert!(g.has_edge(2, 3), "3's nearest is 2");
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn degree_is_at_least_k_for_large_sets() {
        let pts = sample_binomial_window(&mut rng_from_seed(5), 200, &Aabb::square(10.0));
        let k = 4;
        let g = build_knn(&pts, k);
        for u in 0..g.n() as u32 {
            assert!(g.degree(u) >= k, "node {u} degree {}", g.degree(u));
        }
    }

    #[test]
    fn small_sets_clamp_k() {
        let pts: PointSet = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]
            .into_iter()
            .collect();
        let g = build_knn(&pts, 10);
        assert_eq!(g.m(), 1);
        let lists = knn_lists(&pts, 10);
        assert_eq!(lists[0], vec![1]);
    }

    #[test]
    fn zero_k_gives_empty_graph() {
        let pts = sample_binomial_window(&mut rng_from_seed(6), 20, &Aabb::square(5.0));
        let g = build_knn(&pts, 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn lists_are_sorted_by_distance() {
        let pts = sample_binomial_window(&mut rng_from_seed(7), 100, &Aabb::square(10.0));
        let lists = knn_lists(&pts, 6);
        for (u, l) in lists.iter().enumerate() {
            let p = pts.get(u as u32);
            for w in l.windows(2) {
                assert!(p.dist(pts.get(w[0])) <= p.dist(pts.get(w[1])) + 1e-12);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Directed lists match the brute-force k-NN oracle; the undirected
        /// graph is exactly the symmetrised relation.
        #[test]
        fn prop_matches_bruteforce(seed in 0u64..200, n in 2usize..90, k in 1usize..8) {
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(6.0));
            let lists = knn_lists(&pts, k);
            for (u, list) in lists.iter().enumerate() {
                let oracle: Vec<u32> = wsn_spatial::bruteforce::knn(&pts, pts.get(u as u32), k, Some(u as u32))
                    .into_iter()
                    .map(|(id, _)| id)
                    .collect();
                prop_assert_eq!(list.clone(), oracle, "node {}", u);
            }
            let g = build_knn(&pts, k);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    let expected = lists[u as usize].contains(&v) || lists[v as usize].contains(&u);
                    prop_assert_eq!(g.has_edge(u, v), expected);
                }
            }
        }
    }
}

#[cfg(test)]
mod theory_tests {
    use super::*;
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    /// Classical fact: a point can be the k-nearest-neighbour target of at
    /// most 6k points in the plane (one per 60° cone), so the undirected
    /// NN(2,k) degree is at most ~6k. We check the much looser 7k bound to
    /// stay clear of boundary-effect edge cases.
    #[test]
    fn undirected_degree_is_linearly_bounded_in_k() {
        for k in [1usize, 3, 6] {
            let pts =
                sample_binomial_window(&mut rng_from_seed(k as u64), 600, &Aabb::square(10.0));
            let g = build_knn(&pts, k);
            let max_deg = (0..g.n() as u32).map(|u| g.degree(u)).max().unwrap();
            assert!(max_deg <= 7 * k, "k = {k}: max degree {max_deg} exceeds 7k");
        }
    }

    /// The undirected NN graph always contains the mutual-nearest-neighbour
    /// matching: if u and v are each other's nearest, the edge exists for
    /// every k ≥ 1.
    #[test]
    fn mutual_nearest_neighbors_are_always_linked() {
        let pts = sample_binomial_window(&mut rng_from_seed(9), 200, &Aabb::square(8.0));
        let lists = knn_lists(&pts, 1);
        let g = build_knn(&pts, 1);
        for (u, l) in lists.iter().enumerate() {
            let v = l[0];
            if lists[v as usize][0] == u as u32 {
                assert!(g.has_edge(u as u32, v));
            }
        }
    }
}
