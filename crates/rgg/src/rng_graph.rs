//! Relative-neighbourhood-graph topology control (baseline).
//!
//! The RNG keeps an edge `uv` iff no witness `w` is simultaneously closer to
//! both endpoints than they are to each other (the *lune* of `uv` is empty).
//! Like the Gabriel graph it is computed as a spanning subgraph of the UDG.
//! RNG ⊆ Gabriel ⊆ UDG, all with identical connected components.

use crate::udg::build_udg;
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

/// Build the relative neighbourhood subgraph of `UDG(points, radius)`.
pub fn build_rng(points: &PointSet, radius: f64) -> Csr {
    let udg = build_udg(points, radius);
    if points.is_empty() {
        return udg;
    }
    let index = GridIndex::build(points, radius);
    let mut el = EdgeList::new(points.len());
    for (u, v) in udg.edges() {
        let (pu, pv) = (points.get(u), points.get(v));
        let d = pu.dist(pv);
        let mid = pu.midpoint(pv);
        let mut empty = true;
        // The lune is contained in the disk of radius d around the midpoint
        // (generous over-approximation; the exact test filters).
        index.for_each_in_disk(mid, d, |w, q| {
            if w != u && w != v {
                let strict = d - 1e-12;
                if q.dist(pu) < strict && q.dist(pv) < strict {
                    empty = false;
                }
            }
        });
        if empty {
            el.add(u, v);
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gabriel::build_gabriel;
    use proptest::prelude::*;
    use wsn_geom::{Aabb, Point};
    use wsn_graph::components::connected_components;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    #[test]
    fn lune_witness_removes_edge() {
        // Equilateral-ish witness near both endpoints kills the long edge.
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.3),
        ]
        .into_iter()
        .collect();
        let g = build_rng(&pts, 1.5);
        assert!(!g.has_edge(0, 1), "witness in lune");
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn no_witness_keeps_edge() {
        let pts: PointSet = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]
            .into_iter()
            .collect();
        assert!(build_rng(&pts, 1.5).has_edge(0, 1));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// RNG ⊆ Gabriel ⊆ UDG with identical components.
        #[test]
        fn prop_nested_subgraphs(seed in 0u64..200, n in 2usize..70) {
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(5.0));
            let udg = build_udg(&pts, 1.2);
            let gg = build_gabriel(&pts, 1.2);
            let rng_g = build_rng(&pts, 1.2);
            for (u, v) in rng_g.edges() {
                prop_assert!(gg.has_edge(u, v), "RNG edge ({}, {}) not in Gabriel", u, v);
            }
            for (u, v) in gg.edges() {
                prop_assert!(udg.has_edge(u, v));
            }
            let cu = connected_components(&udg);
            let cr = connected_components(&rng_g);
            for a in 0..n as u32 {
                for b in 0..n as u32 {
                    prop_assert_eq!(cu.same(a, b), cr.same(a, b));
                }
            }
        }
    }
}
