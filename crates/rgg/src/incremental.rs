//! Incrementally maintained topologies under node churn.
//!
//! A lifetime simulation kills and admits nodes every epoch; rebuilding a
//! million-node topology from scratch per epoch would dominate wall-clock.
//! [`IncrementalGraph`] instead keeps the tile-sharded construction's
//! *per-shard edge caches* ([`wsn_graph::ShardedEdgeStore`]) alive across
//! epochs and repairs only what churn touched:
//!
//! * Node ids live in a fixed **universe** id space (the initial deployment
//!   plus any reserve pool); churn toggles an alive mask, never re-indexes.
//!   This id space stays in *deployment order* even now that one-shot
//!   construction runs Morton-ordered ([`crate::ordered`]): churn draws,
//!   HNG level promotion and every golden are seeded per universe id, so
//!   reordering here would change observable bytes. The locality win the
//!   Morton layout buys at construction time comes from cache-dense
//!   *per-group* remaps ([`wsn_graph::IdRemap`]) on the repair path
//!   instead.
//! * A shard is **dirty** when a dead or joined node lies inside its
//!   ghost-padded extent — every predicate the builders evaluate (disk
//!   membership, Gabriel blockers, RNG lune witnesses, Yao cone minima,
//!   in-halo k-NN) only consults points within the halo, so a clean
//!   shard's cached emissions are *provably identical* to what a cold
//!   rebuild would emit.
//! * Dirty shards re-run the exact shard derivation functions of
//!   [`crate::sharded`] (shared code, not re-implementations) over the
//!   alive survivors, so the spliced CSR is **byte-identical to a cold
//!   rebuild** — asserted by [`IncrementalGraph::verify_cold`], the churn
//!   engine's debug path, and `tests/churn_incremental.rs` /
//!   `tests/churn_locality.rs`.
//! * Repair cost is **proportional to the churned region**, not to network
//!   size: the dirty shards' padded extents are merged into connected
//!   [`wsn_geom::ExtentGroup`]s, alive points are gathered per group from
//!   precomputed per-shard resident lists, remapped into a dense local id
//!   space ([`wsn_graph::IdRemap`]), and shard derivation runs against a
//!   localized [`wsn_spatial::SubIndex`] built over just that group. A
//!   global index over the whole alive population is constructed **only**
//!   when a k-NN halo straggler fires a query the group extent cannot
//!   certify — counted by [`IncrementalGraph::escalations`], which the
//!   differential suite asserts stays cold for every other topology. The
//!   PR-4 whole-population gather survives as
//!   [`GatherPolicy::Global`] so tests can pin the two paths byte-equal.
//! * The UDG gets a *vertex-deactivation fast path*: node death can only
//!   remove disk edges, so a shard whose padded extent saw deaths but no
//!   joins is repaired by filtering its cache — no geometry at all.
//! * k-NN shards that needed the exact whole-population fallback for any
//!   owned node (*stragglers*) are re-derived every epoch: their lists
//!   depend on points beyond the halo, so they can never be trusted clean.

use std::cell::Cell;
use std::time::Instant;

use rayon::prelude::*;
use wsn_geom::{Aabb, ShardGrid};
use wsn_graph::{relabel, ChunkedCsr, Csr, IdRemap, ShardedEdgeStore};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

use crate::hng::{derive_hng, hng_levels, HngDeps, LevelSets};
use crate::sharded::{
    derive_gabriel, derive_knn, derive_rng, derive_udg, derive_yao, knn_cell_size, Shard,
};
use crate::{
    build_gabriel, build_hng_on_levels, build_knn, build_rng, build_udg, build_yao, hng_halo,
    knn_halo, WHOLE_WINDOW,
};

/// One dirty shard's re-derived emissions plus its k-NN straggler flag
/// and (for HNG) its dependence record.
type ShardEdges = (Vec<(u32, u32)>, bool, HngDeps);

/// The plain topologies the incremental engine can maintain (the SENS
/// constructions repair by per-epoch rebuild instead — their tile-election
/// stitch is global).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IncTopology {
    Udg {
        radius: f64,
    },
    Knn {
        k: usize,
    },
    Gabriel {
        radius: f64,
    },
    Rng {
        radius: f64,
    },
    Yao {
        radius: f64,
        cones: usize,
    },
    /// Hierarchical neighbor graph. Carries its level seed because the
    /// hierarchy is keyed by *universe* id: every rebuild path (cold,
    /// sharded, incremental) re-rolls the same levels from `(seed, node)`
    /// and restricts them through the alive mask — survivor-id re-rolls
    /// would silently diverge.
    Hng {
        p: f64,
        links: usize,
        seed: u64,
    },
}

impl IncTopology {
    /// Stable human-readable label (used by the lifetime bench rows; the
    /// HNG level seed is deployment identity, not topology identity, so it
    /// stays out).
    pub fn label(&self) -> String {
        match *self {
            IncTopology::Udg { radius } => format!("udg(r={radius})"),
            IncTopology::Knn { k } => format!("knn(k={k})"),
            IncTopology::Gabriel { radius } => format!("gabriel(r={radius})"),
            IncTopology::Rng { radius } => format!("rng(r={radius})"),
            IncTopology::Yao { radius, cones } => format!("yao(r={radius},c={cones})"),
            IncTopology::Hng { p, links, .. } => format!("hng(p={p},m={links})"),
        }
    }

    /// Whether shard repair after *deaths only* can filter cached edges
    /// instead of re-deriving (exact iff node removal never creates edges).
    fn filter_repairs_deaths(&self) -> bool {
        matches!(self, IncTopology::Udg { .. })
    }
}

/// How re-derivation gathers its working set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GatherPolicy {
    /// Gather alive points and build a spatial index only over the union
    /// of the dirty shards' ghost-padded extents — repair work tracks the
    /// locality of churn. The default.
    #[default]
    Local,
    /// The PR-4 path: compact the full alive set and build a global index
    /// every repair, Θ(n) regardless of locality. Kept so the differential
    /// suite can pin both paths byte-identical.
    Global,
}

/// What one [`IncrementalGraph::apply_churn`] call actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepairStats {
    /// Total shards in the plan.
    pub shard_count: usize,
    /// Shards whose padded extent saw churn (or held k-NN stragglers).
    pub dirty: usize,
    /// Dirty shards repaired by the vertex-deactivation filter.
    pub filtered: usize,
    /// Dirty shards repaired by full re-derivation.
    pub rederived: usize,
    /// Points gathered into re-derivation working sets (0 for pure-filter
    /// repairs; ≈ the alive population under [`GatherPolicy::Global`], ≈
    /// the dirty extents' population under [`GatherPolicy::Local`] — the
    /// locality regression tests pin exactly this proportionality).
    pub gathered: usize,
    /// Whole-population index constructions this repair (0 unless a k-NN
    /// halo straggler fired a query its group extent could not certify).
    pub escalations: usize,
    /// Wall-clock seconds spent splicing the repaired shards' edge delta
    /// into the chunked CSR — the cost the monolithic `to_csr` path paid
    /// as O(n + m) every churned epoch regardless of locality.
    pub splice_secs: f64,
    /// Chunks the splice rewrote (owner chunks of the delta's endpoints).
    pub spliced_chunks: usize,
    /// Chunks the splice relocated after outgrowing their slack.
    pub splice_relocations: usize,
}

/// A churn-maintained topology over a fixed universe of points.
pub struct IncrementalGraph {
    kind: IncTopology,
    grid: ShardGrid,
    /// Ghost halo of the plan (the topology radius, or the k-NN halo of the
    /// initial alive population) — fixed for the structure's lifetime.
    halo: f64,
    points: PointSet,
    alive: Vec<bool>,
    n_alive: usize,
    store: ShardedEdgeStore,
    /// Per-shard k-NN straggler flags (always false for other kinds).
    straggler: Vec<bool>,
    /// The maintained adjacency: one chunk per shard, spliced in place —
    /// total epoch cost stays proportional to the dirty footprint.
    csr: ChunkedCsr,
    policy: GatherPolicy,
    /// Universe ids grouped by owner shard (CSR layout, ascending within a
    /// shard) — the persistent shard-granular spatial index the localized
    /// gather scans instead of compacting the whole alive set. The
    /// universe is fixed, so this is built exactly once.
    resident_start: Vec<u32>,
    resident_ids: Vec<u32>,
    /// HNG level per universe id, rolled once at build from the kind's
    /// seed (empty for every other kind). Levels never change under churn.
    levels: Vec<u32>,
    /// Per-shard HNG dependence records (see [`HngDeps`]; empty for every
    /// other kind): which fallback-answered uplink rungs the shard's
    /// cached emissions rest on, so churn outside both the shard's padded
    /// geometry and every recorded box provably leaves the cache exact.
    hng_deps: Vec<HngDeps>,
    /// The alive population's top occupied level and its ascending member
    /// ids, as of the last repair — the HNG clique. Tracked incrementally
    /// so apply_churn re-derives clique-dependent shards only when the
    /// top actually changes, instead of escalating every churned epoch.
    hng_top: (u32, Vec<u32>),
    /// Cumulative whole-population index constructions (see
    /// [`RepairStats::escalations`]).
    escalations: u64,
    /// Merged ghost-padded extents of the shards the *last*
    /// [`IncrementalGraph::apply_churn`] dirtied — the serve path's cache
    /// invalidation footprint (empty after a quiescent epoch or before any
    /// churn). An edge both of whose endpoints lie outside every extent is
    /// guaranteed untouched by that repair.
    last_dirty_extents: Vec<Aabb>,
}

impl IncrementalGraph {
    /// Build the initial structure over `points` restricted to `alive`.
    ///
    /// `tiles_per_shard` sizes the repair granularity in halo units
    /// (smaller shards localise churn better but pay more stitch overhead);
    /// [`WHOLE_WINDOW`] degenerates to rebuild-per-epoch.
    pub fn build(
        points: PointSet,
        alive: Vec<bool>,
        kind: IncTopology,
        tiles_per_shard: usize,
    ) -> Self {
        assert_eq!(alive.len(), points.len(), "mask length must match");
        if let IncTopology::Yao { cones, .. } = kind {
            assert!(cones >= 1, "need at least one cone");
        }
        let n_alive = alive.iter().filter(|&&a| a).count();
        let levels = match kind {
            IncTopology::Hng { p, seed, links } => {
                assert!(p > 0.0 && p < 1.0, "promotion probability must be in (0,1)");
                assert!(links >= 1, "need at least one uplink per level");
                hng_levels(points.len(), p, seed)
            }
            _ => Vec::new(),
        };
        let halo = match kind {
            IncTopology::Udg { radius }
            | IncTopology::Gabriel { radius }
            | IncTopology::Rng { radius }
            | IncTopology::Yao { radius, .. } => {
                assert!(radius > 0.0, "radius must be positive");
                radius
            }
            IncTopology::Knn { k } => {
                let (sub, _, _) = compact(&points, &alive);
                if sub.is_empty() {
                    1.0
                } else {
                    knn_halo(&sub, k.max(1))
                }
            }
            IncTopology::Hng { links, .. } => {
                let (sub, to_universe, _) = compact(&points, &alive);
                if sub.is_empty() {
                    1.0
                } else {
                    let levels_sub: Vec<u32> =
                        to_universe.iter().map(|&g| levels[g as usize]).collect();
                    hng_halo(&sub, &levels_sub, links.max(1))
                }
            }
        };
        let bbox = points
            .bounding_box()
            .unwrap_or_else(|| Aabb::square(halo.max(1.0)));
        let grid = if tiles_per_shard == WHOLE_WINDOW {
            ShardGrid::whole(&bbox)
        } else {
            ShardGrid::new(&bbox, halo, tiles_per_shard)
        };
        let (resident_start, resident_ids) = resident_lists(&points, &grid);
        let hng_top = match kind {
            IncTopology::Hng { .. } => alive_top(&levels, &alive),
            _ => (1, Vec::new()),
        };
        let mut g = IncrementalGraph {
            kind,
            halo,
            store: ShardedEdgeStore::new(points.len(), grid.shard_count()),
            straggler: vec![false; grid.shard_count()],
            hng_deps: vec![HngDeps::default(); grid.shard_count()],
            hng_top,
            grid,
            points,
            alive,
            n_alive,
            csr: ChunkedCsr::empty(0),
            policy: GatherPolicy::Local,
            resident_start,
            resident_ids,
            levels,
            escalations: 0,
            last_dirty_extents: Vec::new(),
        };
        let all: Vec<usize> = (0..g.grid.shard_count()).collect();
        g.rederive_shards(&all);
        // One chunk per shard: each node's adjacency lives in its owner
        // shard's arena region, so a shard repair splices one chunk. The
        // build folds cross-shard duplicate emissions (k-NN, Yao) into
        // per-entry multiplicities — no global dedup sort, here or later.
        let chunk_of: Vec<u32> = g.points.iter().map(|p| g.grid.owner_of(p) as u32).collect();
        g.csr = ChunkedCsr::build(g.grid.shard_count(), &chunk_of, g.store.emissions());
        g
    }

    /// Switch the re-derivation gather between the localized dirty-extent
    /// path and the PR-4 whole-population one (differential-test knob; the
    /// two are byte-identical by contract).
    pub fn set_gather_policy(&mut self, policy: GatherPolicy) {
        self.policy = policy;
    }

    #[inline]
    pub fn gather_policy(&self) -> GatherPolicy {
        self.policy
    }

    /// The shard plan (tests and benches use it to craft churn regions
    /// that dirty a known shard set).
    #[inline]
    pub fn grid(&self) -> &ShardGrid {
        &self.grid
    }

    /// The ghost halo every shard extent is padded by.
    #[inline]
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// Cumulative count of whole-population index constructions — stays 0
    /// for every topology except k-NN, and for k-NN rises only when a halo
    /// straggler fires a query its dirty-extent group cannot certify.
    #[inline]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// The maintained graph in universe id space (dead nodes isolated).
    #[inline]
    pub fn graph(&self) -> &ChunkedCsr {
        &self.csr
    }

    /// The universe point set (fixed; includes dead and reserve nodes).
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    #[inline]
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    #[inline]
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    #[inline]
    pub fn kind(&self) -> IncTopology {
        self.kind
    }

    /// Merged ghost-padded extents of the shards the last
    /// [`IncrementalGraph::apply_churn`] call dirtied. The serve path's
    /// route-cache invalidation rule: a cached path is only trustworthy
    /// across the epoch boundary if none of its nodes fall inside any of
    /// these extents. Empty before any churn and after quiescent epochs.
    #[inline]
    pub fn dirty_extents(&self) -> &[Aabb] {
        &self.last_dirty_extents
    }

    /// Kill `deaths` and admit `joins`, then repair only the shards whose
    /// padded extent the churn touched. Returns what the repair did.
    ///
    /// Panics if a death is already dead or a join already alive — the
    /// caller (the churn engine) owns liveness bookkeeping.
    pub fn apply_churn(&mut self, deaths: &[u32], joins: &[u32]) -> RepairStats {
        for &d in deaths {
            assert!(self.alive[d as usize], "death of already-dead node {d}");
            self.alive[d as usize] = false;
        }
        for &j in joins {
            assert!(!self.alive[j as usize], "join of already-alive node {j}");
            self.alive[j as usize] = true;
        }
        self.n_alive = self.n_alive + joins.len() - deaths.len();

        // Dirty marking: 0 = clean, 1 = deaths only, 2 = needs re-derive.
        let mut state = vec![0u8; self.grid.shard_count()];
        for &d in deaths {
            let p = self.points.get(d);
            for s in self.grid.shards_near(p, self.halo) {
                state[s] = state[s].max(1);
            }
        }
        for &j in joins {
            let p = self.points.get(j);
            for s in self.grid.shards_near(p, self.halo) {
                state[s] = 2;
            }
        }
        match self.kind {
            // HNG tracks its global dependence precisely: the top clique
            // through the maintained `hng_top`, every fallback-answered
            // uplink rung through its recorded dependence box. Straggler
            // flags stay advisory — forcing them dirty would re-derive
            // the whole population every churned epoch.
            IncTopology::Hng { .. } => self.mark_hng_dependents(deaths, joins, &mut state),
            // k-NN straggler shards consulted the whole population; never
            // clean.
            _ => {
                for (s, &strag) in self.straggler.iter().enumerate() {
                    if strag {
                        state[s] = 2;
                    }
                }
            }
        }

        let filter_ok = self.kind.filter_repairs_deaths();
        let mut stats = RepairStats {
            shard_count: self.grid.shard_count(),
            ..RepairStats::default()
        };
        // Snapshot every dirty shard's cached emissions *before* repair
        // mutates them: the splice consumes the repair as an edge delta
        // (old emissions out, new emissions in), and whatever the repair
        // kept cancels, so the CSR work tracks the delta — O(dirty) — not
        // the graph. Clean shards contribute nothing, yet their nodes'
        // lists still update when a dirty shard's cross-shard edge
        // appears or disappears (the delta is routed by endpoint).
        let mut dirty_list = Vec::new();
        let mut removed: Vec<(u32, u32)> = Vec::new();
        let mut rederive = Vec::new();
        for (s, &st) in state.iter().enumerate() {
            match st {
                0 => {}
                1 if filter_ok => {
                    stats.dirty += 1;
                    stats.filtered += 1;
                    dirty_list.push(s);
                    removed.extend_from_slice(self.store.shard(s));
                    let alive = &self.alive;
                    self.store
                        .retain(s, |u, v| alive[u as usize] && alive[v as usize]);
                }
                _ => {
                    stats.dirty += 1;
                    stats.rederived += 1;
                    dirty_list.push(s);
                    removed.extend_from_slice(self.store.shard(s));
                    rederive.push(s);
                }
            }
        }
        // Publish hook for the serve path: the merged padded extents of
        // every dirty shard bound the region this repair may have touched.
        // Anything wholly outside them is provably identical to last epoch.
        self.last_dirty_extents = self
            .grid
            .merge_padded_extents(&dirty_list, self.halo)
            .into_iter()
            .map(|g| g.extent)
            .collect();
        let (gathered, escalations) = self.rederive_shards(&rederive);
        stats.gathered = gathered;
        stats.escalations = escalations;
        // A quiescent epoch (no dirty shards) leaves every cache — and
        // therefore the spliced CSR — untouched.
        if stats.dirty > 0 {
            let splice_start = Instant::now();
            let mut added: Vec<(u32, u32)> = Vec::new();
            for &s in &dirty_list {
                added.extend_from_slice(self.store.shard(s));
            }
            let splice = self.csr.splice(&removed, &added);
            stats.splice_secs = splice_start.elapsed().as_secs_f64();
            stats.spliced_chunks = splice.chunks_touched;
            stats.splice_relocations = splice.relocations;
        }
        stats
    }

    /// HNG dirty marking beyond the geometric rule, called *after* the
    /// alive toggles. Two sources of non-local dependence:
    ///
    /// * **The top clique.** If the alive population's top occupied level
    ///   or its member set changed, every shard owning an alive node of
    ///   level `≥ min(T_old, T_new)` re-derives — exactly the nodes whose
    ///   clique membership or rung count (`min(ℓ(u), T − 1)`) can differ.
    ///   Nodes below that level keep their rung structure, and the member
    ///   sets of their target levels change only through churn, which the
    ///   dependence boxes and the geometric rule cover.
    /// * **Fallback-answered rungs.** A churned node of level `ℓ` dirties
    ///   every shard with a recorded dependence box `(j, box)` where
    ///   `j ≤ ℓ` and the node lies inside the box: it may enter or leave
    ///   that rung's exact answer. Certified rungs need no check — their
    ///   answer disks fit the shard's padded geometry, which the
    ///   geometric rule already watches.
    fn mark_hng_dependents(&mut self, deaths: &[u32], joins: &[u32], state: &mut [u8]) {
        let (t_new, top_new) = alive_top(&self.levels, &self.alive);
        if (t_new, top_new.as_slice()) != (self.hng_top.0, self.hng_top.1.as_slice()) {
            let t_min = t_new.min(self.hng_top.0);
            for (u, &lvl) in self.levels.iter().enumerate() {
                if lvl >= t_min && self.alive[u] {
                    let s = self.grid.owner_of(self.points.get(u as u32));
                    state[s] = 2;
                }
            }
        }
        self.hng_top = (t_new, top_new);

        // Churned nodes, highest level first, with cumulative prefix
        // bounding boxes: for any target level j, the nodes of level ≥ j
        // are a prefix, and `pref_bbox` bounds it for O(1) rejection of
        // far shards' boxes.
        let mut churned: Vec<(wsn_geom::Point, u32)> = deaths
            .iter()
            .chain(joins)
            .map(|&c| (self.points.get(c), self.levels[c as usize]))
            .collect();
        churned.sort_by_key(|&(_, lvl)| std::cmp::Reverse(lvl));
        let mut pref_bbox: Vec<Aabb> = Vec::with_capacity(churned.len());
        for &(p, _) in &churned {
            let pb = Aabb::new(p, p);
            pref_bbox.push(match pref_bbox.last() {
                None => pb,
                Some(cur) => cur.union(&pb),
            });
        }
        // churned[..count_at_least(j)] are the nodes of level ≥ j.
        let count_at_least = |j: u32| churned.partition_point(|&(_, lvl)| lvl >= j);
        for (s, deps) in self.hng_deps.iter().enumerate() {
            if state[s] > 0 {
                continue;
            }
            // Boxes ascend by target level, so once the churned prefix
            // for a level is empty every later box is unreachable too.
            for &(j, ref bb) in &deps.boxes {
                let cnt = count_at_least(j);
                if cnt == 0 {
                    break;
                }
                if !bb.intersects(&pref_bbox[cnt - 1]) {
                    continue;
                }
                if churned[..cnt].iter().any(|&(p, _)| bb.contains(p)) {
                    state[s] = 2;
                    break;
                }
            }
        }
    }

    /// Re-derive the listed shards over the current alive population,
    /// replacing their caches (shared-code path: `crate::sharded`).
    /// Returns `(points gathered, global-index escalations)`.
    fn rederive_shards(&mut self, dirty: &[usize]) -> (usize, usize) {
        if dirty.is_empty() {
            return (0, 0);
        }
        match self.policy {
            GatherPolicy::Local => self.rederive_local(dirty),
            GatherPolicy::Global => (self.rederive_global(dirty), 0),
        }
    }

    /// Locality-proportional re-derivation: gather alive points and build
    /// a spatial index only over the union of the dirty shards'
    /// ghost-padded extents. The working set of every dirty shard —
    /// `alive ∩ padded(s, halo)` — is contained in its extent group, so
    /// the shard derivations see exactly the point sets the global gather
    /// would hand them, in the same (universe-ascending) order, and emit
    /// bit-identical edges.
    fn rederive_local(&mut self, dirty: &[usize]) -> (usize, usize) {
        let kind = self.kind;
        let (grid, halo) = (&self.grid, self.halo);
        let groups = grid.merge_padded_extents(dirty, halo);

        // Gather each group's alive population from the resident lists:
        // cost tracks the group extents' area, never the network size.
        let mut gathered = 0usize;
        let mut locals: Vec<(IdRemap, PointSet)> = Vec::with_capacity(groups.len());
        for g in &groups {
            let (i0, i1, j0, j1) = grid.owner_range(&g.extent);
            let mut ids: Vec<u32> = Vec::new();
            for j in j0..=j1 {
                for i in i0..=i1 {
                    let s = j * grid.cols() + i;
                    let (a, b) = (
                        self.resident_start[s] as usize,
                        self.resident_start[s + 1] as usize,
                    );
                    for &u in &self.resident_ids[a..b] {
                        if self.alive[u as usize] && g.extent.contains(self.points.get(u)) {
                            ids.push(u);
                        }
                    }
                }
            }
            // Ascending universe ids make the dense remap monotone — the
            // property every downstream id tie-break rests on.
            ids.sort_unstable();
            gathered += ids.len();
            let mut pts = PointSet::with_capacity(ids.len());
            for &u in &ids {
                pts.push(self.points.get(u));
            }
            locals.push((IdRemap::from_sorted(ids), pts));
        }

        // k-NN and HNG need the exact straggler semantics of the global
        // path: a node is *certain* iff its worst local candidate fits
        // inside its own interior margin of the shard's padded extent, or
        // the padded extent covers the whole alive population's bounding
        // box. The box is a cheap O(n) fold over the alive mask — no
        // point-set compaction, no index build.
        let alive_bbox = match kind {
            IncTopology::Knn { .. } | IncTopology::Hng { .. } => {
                alive_bounding_box(&self.points, &self.alive)
            }
            _ => None,
        };
        // HNG's clique lives at the top *alive* level — maintained by
        // build/apply_churn, so no scan here.
        let hng_top = &self.hng_top;
        let levels = &self.levels;

        // One localized SubIndex per extent group; its extent doubles as
        // the certificate that shard gathers (and certified k-NN fallback
        // queries) never silently truncate.
        let indexes: Vec<Option<wsn_spatial::SubIndex>> = groups
            .iter()
            .zip(&locals)
            .map(|(g, (_, pts))| {
                if pts.is_empty() {
                    return None;
                }
                let cell = match kind {
                    IncTopology::Knn { k } => knn_cell_size(pts, k.max(1)),
                    IncTopology::Hng { links, .. } => knn_cell_size(pts, links.max(1)),
                    IncTopology::Udg { radius }
                    | IncTopology::Gabriel { radius }
                    | IncTopology::Rng { radius }
                    | IncTopology::Yao { radius, .. } => radius,
                };
                // `pts` is already the *restriction* of the alive
                // population to the group extent — certification must
                // keep checking query support against the extent (the
                // rest of the population lives beyond it), so the
                // full-membership shortcut must not apply.
                Some(GridIndex::build_over_restricted(pts, &g.extent, cell))
            })
            .collect();

        let mut group_of = vec![usize::MAX; grid.shard_count()];
        for (gi, g) in groups.iter().enumerate() {
            for &s in &g.shards {
                group_of[s] = gi;
            }
        }

        // Pass 1: derive every dirty shard against its group. A k-NN
        // straggler first retries against the group index — certified
        // answers are exact — and only an uncertifiable query marks the
        // shard for escalation (`Err`). An HNG shard escalates per failed
        // uplink rung, carrying the target levels it needs exact answers
        // for, so pass 2 builds indexes over just those level subsets.
        let results: Vec<Result<ShardEdges, Vec<u32>>> = dirty
            .to_vec()
            .into_par_iter()
            .map(|s| {
                let gi = group_of[s];
                let (remap, pts) = &locals[gi];
                let Some(index) = &indexes[gi] else {
                    // No alive points anywhere near: the shard is empty.
                    return Ok((Vec::new(), false, HngDeps::default()));
                };
                let shard = Shard::gather_mapped(pts, remap.to_universe(), index, grid, s, halo);
                match kind {
                    IncTopology::Udg { radius } => {
                        Ok((derive_udg(&shard, radius), false, HngDeps::default()))
                    }
                    IncTopology::Gabriel { radius } => {
                        Ok((derive_gabriel(&shard, radius), false, HngDeps::default()))
                    }
                    IncTopology::Rng { radius } => {
                        Ok((derive_rng(&shard, radius), false, HngDeps::default()))
                    }
                    IncTopology::Yao { radius, cones } => {
                        Ok((derive_yao(&shard, radius, cones), false, HngDeps::default()))
                    }
                    IncTopology::Knn { k } => {
                        let padded = grid.padded(s, halo);
                        let covers_all = alive_bbox
                            .as_ref()
                            .is_some_and(|bb| padded.contains_aabb(bb));
                        let uncertified = Cell::new(false);
                        let (lists, strag) = derive_knn(&shard, k, &padded, covers_all, |p, gu| {
                            let skip = remap.local_of(gu);
                            match index.knn(p, k, skip) {
                                Ok(r) => r.into_iter().map(|(v, _)| remap.universe_of(v)).collect(),
                                Err(_) => {
                                    uncertified.set(true);
                                    Vec::new()
                                }
                            }
                        });
                        if uncertified.get() {
                            return Err(Vec::new());
                        }
                        let mut edges = Vec::new();
                        for (gu, list) in lists {
                            for v in list {
                                edges.push((gu.min(v), gu.max(v)));
                            }
                        }
                        Ok((edges, strag, HngDeps::default()))
                    }
                    IncTopology::Hng { links, .. } => {
                        let padded = grid.padded(s, halo);
                        let covers_all = alive_bbox
                            .as_ref()
                            .is_some_and(|bb| padded.contains_aabb(bb));
                        let (top_level, top) = hng_top;
                        // The group SubIndex certifies gathers, not
                        // level-filtered k-NN — a rung the margin cannot
                        // vouch for records its target level and the
                        // shard re-derives in pass 2 with exact answers.
                        let needed = std::cell::RefCell::new(Vec::new());
                        let (edges, strag, deps) = derive_hng(
                            &shard,
                            levels,
                            links,
                            top,
                            *top_level,
                            &padded,
                            covers_all,
                            |_, _, j| {
                                needed.borrow_mut().push(j);
                                Vec::new()
                            },
                        );
                        let needed = needed.into_inner();
                        if !needed.is_empty() {
                            return Err(needed);
                        }
                        Ok((edges, strag, deps))
                    }
                }
            })
            .collect();

        let is_hng = matches!(kind, IncTopology::Hng { .. });
        let mut escalate = Vec::new();
        let mut needed_levels: Vec<u32> = Vec::new();
        for (&s, res) in dirty.iter().zip(results) {
            match res {
                Ok((edges, strag, deps)) => {
                    self.store.replace(s, edges);
                    self.straggler[s] = strag;
                    if is_hng {
                        self.hng_deps[s] = deps;
                    }
                }
                Err(mut lv) => {
                    needed_levels.append(&mut lv);
                    escalate.push(s);
                }
            }
        }
        // Pass 2 — the lazy escalation path: only now, with answers the
        // dirty extents could not certify, pay for a wider gather. k-NN
        // goes global; HNG builds exact indexes over just the level
        // subsets its failed rungs target.
        let mut escalations = 0;
        if !escalate.is_empty() {
            escalations = 1;
            self.escalations += 1;
            if is_hng {
                gathered += self.rederive_hng_levels(
                    &escalate,
                    needed_levels,
                    &locals,
                    &indexes,
                    &group_of,
                    &alive_bbox,
                );
            } else {
                gathered += self.rederive_global(&escalate);
            }
        }
        (gathered, escalations)
    }

    /// HNG escalation: re-derive `dirty` with exact per-rung fallback
    /// answers from indexes over the alive level-`≥ j` subsets the probe
    /// pass requested — never the whole population. Gather cost is the
    /// sum of the needed level subsets' sizes, which the geometric level
    /// distribution keeps far below `n` whenever the cheapest (largest)
    /// levels certify locally. Returns the points gathered.
    #[allow(clippy::too_many_arguments)]
    fn rederive_hng_levels(
        &mut self,
        dirty: &[usize],
        mut needed: Vec<u32>,
        locals: &[(IdRemap, PointSet)],
        indexes: &[Option<wsn_spatial::SubIndex>],
        group_of: &[usize],
        alive_bbox: &Option<Aabb>,
    ) -> usize {
        let IncTopology::Hng { links, .. } = self.kind else {
            unreachable!("HNG-only escalation path");
        };
        needed.sort_unstable();
        needed.dedup();
        // Ascending universe ids and points of each needed level subset,
        // in one pass (needed ascends, so a node stops contributing at
        // its first too-high target level).
        let mut level_ids: Vec<Vec<u32>> = vec![Vec::new(); needed.len()];
        let mut level_pts: Vec<PointSet> = (0..needed.len()).map(|_| PointSet::new()).collect();
        for (u, p) in self.points.iter_enumerated() {
            if !self.alive[u as usize] {
                continue;
            }
            let lvl = self.levels[u as usize];
            for (row, &j) in needed.iter().enumerate() {
                if lvl < j {
                    break;
                }
                level_ids[row].push(u);
                level_pts[row].push(p);
            }
        }
        let level_indexes: Vec<GridIndex> = level_pts
            .iter()
            .map(|pts| GridIndex::build(pts, knn_cell_size(pts, links.max(1))))
            .collect();
        let gathered: usize = level_ids.iter().map(|v| v.len()).sum();
        let (grid, halo) = (&self.grid, self.halo);
        let (top_level, top) = (&self.hng_top.0, &self.hng_top.1);
        let levels = &self.levels;
        let needed = &needed;
        let (level_ids, level_indexes) = (&level_ids, &level_indexes);
        let results: Vec<ShardEdges> = dirty
            .to_vec()
            .into_par_iter()
            .map(|s| {
                let gi = group_of[s];
                let (remap, pts) = &locals[gi];
                let index = indexes[gi]
                    .as_ref()
                    .expect("escalated shards gathered points in pass 1");
                let shard = Shard::gather_mapped(pts, remap.to_universe(), index, grid, s, halo);
                let padded = grid.padded(s, halo);
                let covers_all = alive_bbox
                    .as_ref()
                    .is_some_and(|bb| padded.contains_aabb(bb));
                derive_hng(
                    &shard,
                    levels,
                    links,
                    top,
                    *top_level,
                    &padded,
                    covers_all,
                    |p, gu, j| {
                        let row = needed
                            .binary_search(&j)
                            .expect("every fallback level was recorded by the probe");
                        let ids = &level_ids[row];
                        let skip = if levels[gu as usize] >= j {
                            Some(
                                ids.binary_search(&gu)
                                    .expect("alive member of its own level set")
                                    as u32,
                            )
                        } else {
                            None
                        };
                        level_indexes[row]
                            .knn(p, links, skip)
                            .into_iter()
                            .map(|(v, d)| (ids[v as usize], d))
                            .collect()
                    },
                )
            })
            .collect();
        for (&s, (edges, strag, deps)) in dirty.iter().zip(results) {
            self.store.replace(s, edges);
            self.straggler[s] = strag;
            self.hng_deps[s] = deps;
        }
        gathered
    }

    /// The PR-4 whole-population re-derivation: compact the alive set,
    /// build one global index, derive the listed shards against it.
    /// Returns the number of points gathered (= the alive population).
    fn rederive_global(&mut self, dirty: &[usize]) -> usize {
        let (sub, to_universe, to_compact) = compact(&self.points, &self.alive);
        if sub.is_empty() {
            for &s in dirty {
                self.store.replace(s, Vec::new());
                self.straggler[s] = false;
                self.hng_deps[s] = HngDeps::default();
            }
            return 0;
        }
        let cell = match self.kind {
            IncTopology::Knn { k } => knn_cell_size(&sub, k.max(1)),
            IncTopology::Hng { links, .. } => knn_cell_size(&sub, links.max(1)),
            IncTopology::Udg { radius }
            | IncTopology::Gabriel { radius }
            | IncTopology::Rng { radius }
            | IncTopology::Yao { radius, .. } => radius,
        };
        let index = GridIndex::build(&sub, cell);
        let bbox = sub.bounding_box().expect("sub is non-empty");
        let kind = self.kind;
        let (grid, halo) = (&self.grid, self.halo);
        // HNG's exact fallback queries run against per-level indexes over
        // the compacted alive population (sub id space; results lift back
        // through the monotone `to_universe`).
        let hng_ctx = match kind {
            IncTopology::Hng { links, .. } => {
                let levels_sub: Vec<u32> = to_universe
                    .iter()
                    .map(|&g| self.levels[g as usize])
                    .collect();
                let sets = LevelSets::build(&sub, &levels_sub);
                let top_universe: Vec<u32> =
                    sets.top.iter().map(|&v| to_universe[v as usize]).collect();
                Some((sets, top_universe, links))
            }
            _ => None,
        };
        let hng_indexes = hng_ctx
            .as_ref()
            .map(|(sets, _, links)| sets.indexes(*links));
        let levels = &self.levels;
        let results: Vec<ShardEdges> = dirty
            .to_vec()
            .into_par_iter()
            .map(|s| {
                let shard = Shard::gather_mapped(&sub, &to_universe, &index, grid, s, halo);
                match kind {
                    IncTopology::Udg { radius } => {
                        (derive_udg(&shard, radius), false, HngDeps::default())
                    }
                    IncTopology::Gabriel { radius } => {
                        (derive_gabriel(&shard, radius), false, HngDeps::default())
                    }
                    IncTopology::Rng { radius } => {
                        (derive_rng(&shard, radius), false, HngDeps::default())
                    }
                    IncTopology::Yao { radius, cones } => {
                        (derive_yao(&shard, radius, cones), false, HngDeps::default())
                    }
                    IncTopology::Knn { k } => {
                        let padded = grid.padded(s, halo);
                        let covers_all = padded.contains_aabb(&bbox);
                        let (lists, strag) = derive_knn(&shard, k, &padded, covers_all, |p, gu| {
                            index
                                .knn(p, k, Some(to_compact[gu as usize]))
                                .into_iter()
                                .map(|(v, _)| to_universe[v as usize])
                                .collect()
                        });
                        let mut edges = Vec::new();
                        for (gu, list) in lists {
                            for v in list {
                                edges.push((gu.min(v), gu.max(v)));
                            }
                        }
                        (edges, strag, HngDeps::default())
                    }
                    IncTopology::Hng { links, .. } => {
                        let padded = grid.padded(s, halo);
                        let covers_all = padded.contains_aabb(&bbox);
                        let (sets, top_u, _) = hng_ctx.as_ref().expect("built for HNG");
                        let indexes = hng_indexes.as_ref().expect("built for HNG");
                        derive_hng(
                            &shard,
                            levels,
                            links,
                            top_u,
                            sets.top_level,
                            &padded,
                            covers_all,
                            |p, gu, j| {
                                let (_, ids_j) = &sets.sets[(j - 2) as usize];
                                let cu = to_compact[gu as usize];
                                let skip = if levels[gu as usize] >= j {
                                    Some(
                                        ids_j
                                            .binary_search(&cu)
                                            .expect("member of its own level set")
                                            as u32,
                                    )
                                } else {
                                    None
                                };
                                indexes[(j - 2) as usize]
                                    .knn(p, links, skip)
                                    .into_iter()
                                    .map(|(v, d)| (to_universe[ids_j[v as usize] as usize], d))
                                    .collect()
                            },
                        )
                    }
                }
            })
            .collect();
        let is_hng = matches!(self.kind, IncTopology::Hng { .. });
        for (&s, (edges, strag, deps)) in dirty.iter().zip(results) {
            self.store.replace(s, edges);
            self.straggler[s] = strag;
            if is_hng {
                self.hng_deps[s] = deps;
            }
        }
        sub.len()
    }

    /// Build the same topology cold — monolithic reference builder on the
    /// compacted alive survivors, lifted back to universe ids.
    pub fn cold_rebuild(&self) -> Csr {
        let (sub, to_universe, _) = compact(&self.points, &self.alive);
        if sub.is_empty() {
            return Csr::empty(self.points.len());
        }
        let g = match self.kind {
            IncTopology::Udg { radius } => build_udg(&sub, radius),
            IncTopology::Knn { k } => build_knn(&sub, k),
            IncTopology::Gabriel { radius } => build_gabriel(&sub, radius),
            IncTopology::Rng { radius } => build_rng(&sub, radius),
            IncTopology::Yao { radius, cones } => build_yao(&sub, radius, cones),
            IncTopology::Hng { links, .. } => {
                // Universe levels restricted through the alive mask — the
                // hierarchy is never re-rolled over survivor ids.
                let levels_sub: Vec<u32> = to_universe
                    .iter()
                    .map(|&g| self.levels[g as usize])
                    .collect();
                build_hng_on_levels(&sub, &levels_sub, links)
            }
        };
        relabel(&g, &to_universe, self.points.len())
    }

    /// Edge-identity witness: the incrementally maintained CSR equals a
    /// cold rebuild on the survivors, byte for byte.
    #[must_use]
    pub fn verify_cold(&self) -> bool {
        self.csr == self.cold_rebuild()
    }
}

/// Compact the alive subset: survivor points in universe-id order plus the
/// strictly monotone compact→universe id map — the shared primitive every
/// cold-rebuild comparison path must agree on (byte-identity depends on
/// all of them ordering survivors the same way).
pub fn compact_alive(points: &PointSet, alive: &[bool]) -> (PointSet, Vec<u32>) {
    let (sub, to_universe, _) = compact(points, alive);
    (sub, to_universe)
}

/// Universe ids grouped by owner shard (counting sort, so ids stay
/// ascending within each shard) — built once per structure; the localized
/// gather scans only the rows overlapping a dirty extent group.
fn resident_lists(points: &PointSet, grid: &ShardGrid) -> (Vec<u32>, Vec<u32>) {
    let n_shards = grid.shard_count();
    let mut counts = vec![0u32; n_shards + 1];
    for p in points.iter() {
        counts[grid.owner_of(p) + 1] += 1;
    }
    for s in 0..n_shards {
        counts[s + 1] += counts[s];
    }
    let start = counts.clone();
    let mut cursor = counts;
    let mut ids = vec![0u32; points.len()];
    for (u, p) in points.iter_enumerated() {
        let s = grid.owner_of(p);
        ids[cursor[s] as usize] = u;
        cursor[s] += 1;
    }
    (start, ids)
}

/// Bounding box of the alive subset — the `covers_all` operand of the k-NN
/// straggler check, exactly as the global path computes it from the
/// compacted point set (same min/max fold, no allocation).
fn alive_bounding_box(points: &PointSet, alive: &[bool]) -> Option<Aabb> {
    let mut bb: Option<Aabb> = None;
    for (u, p) in points.iter_enumerated() {
        if !alive[u as usize] {
            continue;
        }
        let point_box = Aabb::new(p, p);
        bb = Some(match bb {
            None => point_box,
            Some(cur) => cur.union(&point_box),
        });
    }
    bb
}

/// Top occupied level of the alive population plus the ascending universe
/// ids holding it — the HNG clique. `(1, [])` when nothing is alive.
fn alive_top(levels: &[u32], alive: &[bool]) -> (u32, Vec<u32>) {
    let mut top = 1u32;
    for (u, &lvl) in levels.iter().enumerate() {
        if alive[u] && lvl > top {
            top = lvl;
        }
    }
    let ids: Vec<u32> = levels
        .iter()
        .enumerate()
        .filter(|&(u, &lvl)| alive[u] && lvl == top)
        .map(|(u, _)| u as u32)
        .collect();
    (top, ids)
}

/// [`compact_alive`] plus the universe→compact inverse (`u32::MAX` marks
/// dead) for the k-NN fallback's skip ids.
fn compact(points: &PointSet, alive: &[bool]) -> (PointSet, Vec<u32>, Vec<u32>) {
    let n_alive = alive.iter().filter(|&&a| a).count();
    let mut sub = PointSet::with_capacity(n_alive);
    let mut to_universe = Vec::with_capacity(n_alive);
    let mut to_compact = vec![u32::MAX; points.len()];
    for (g, p) in points.iter_enumerated() {
        if alive[g as usize] {
            to_compact[g as usize] = sub.len() as u32;
            to_universe.push(g);
            sub.push(p);
        }
    }
    (sub, to_universe, to_compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::hash::derive_seed2;
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    fn pts(n: usize, seed: u64, side: f64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(side))
    }

    fn kinds() -> [IncTopology; 6] {
        [
            IncTopology::Udg { radius: 1.0 },
            IncTopology::Knn { k: 4 },
            IncTopology::Gabriel { radius: 1.2 },
            IncTopology::Rng { radius: 1.2 },
            IncTopology::Yao {
                radius: 1.0,
                cones: 6,
            },
            IncTopology::Hng {
                p: 0.5,
                links: 1,
                seed: 0x48_4E_47,
            },
        ]
    }

    /// Deterministic churn schedule: epoch `e` kills every alive node whose
    /// hash bucket matches and admits dead ones likewise.
    fn churn_sets(g: &IncrementalGraph, seed: u64, e: u64) -> (Vec<u32>, Vec<u32>) {
        let mut deaths = Vec::new();
        let mut joins = Vec::new();
        for u in 0..g.points().len() as u32 {
            let h = derive_seed2(seed, e, u as u64);
            if g.alive()[u as usize] {
                if h.is_multiple_of(10) {
                    deaths.push(u);
                }
            } else if h.is_multiple_of(4) {
                joins.push(u);
            }
        }
        (deaths, joins)
    }

    #[test]
    fn initial_build_matches_cold_for_every_kind() {
        let p = pts(300, 1, 8.0);
        // A fifth of the universe starts dead (a reserve pool).
        let alive: Vec<bool> = (0..p.len()).map(|i| i % 5 != 0).collect();
        for kind in kinds() {
            let g = IncrementalGraph::build(p.clone(), alive.clone(), kind, 2);
            assert!(g.verify_cold(), "{kind:?}");
            assert_eq!(g.n_alive(), alive.iter().filter(|&&a| a).count());
        }
    }

    #[test]
    fn repeated_churn_epochs_stay_edge_identical_to_cold() {
        let p = pts(260, 2, 8.0);
        let alive = vec![true; p.len()];
        for kind in kinds() {
            let mut g = IncrementalGraph::build(p.clone(), alive.clone(), kind, 2);
            for e in 0..4u64 {
                let (deaths, joins) = churn_sets(&g, 99, e);
                let stats = g.apply_churn(&deaths, &joins);
                assert_eq!(stats.dirty, stats.filtered + stats.rederived);
                assert!(
                    g.verify_cold(),
                    "{kind:?} diverged from cold rebuild at epoch {e}"
                );
            }
        }
    }

    #[test]
    fn udg_death_only_churn_uses_the_filter_path() {
        let p = pts(400, 3, 10.0);
        let mut g =
            IncrementalGraph::build(p, vec![true; 400], IncTopology::Udg { radius: 1.0 }, 2);
        let deaths: Vec<u32> = (0..400u32).filter(|u| u % 7 == 0).collect();
        let stats = g.apply_churn(&deaths, &[]);
        assert!(stats.filtered > 0, "deaths-only UDG churn must filter");
        assert_eq!(stats.rederived, 0);
        assert!(g.verify_cold());
    }

    #[test]
    fn localised_churn_leaves_far_shards_clean() {
        let p = pts(500, 4, 16.0);
        let mut g =
            IncrementalGraph::build(p, vec![true; 500], IncTopology::Rng { radius: 1.0 }, 2);
        // Kill only nodes in one corner.
        let deaths: Vec<u32> = g
            .points()
            .iter_enumerated()
            .filter(|&(u, q)| q.x < 3.0 && q.y < 3.0 && g.alive()[u as usize])
            .map(|(u, _)| u)
            .collect();
        assert!(!deaths.is_empty());
        let stats = g.apply_churn(&deaths, &[]);
        assert!(
            stats.dirty < stats.shard_count,
            "corner churn must leave shards clean ({} of {} dirty)",
            stats.dirty,
            stats.shard_count
        );
        assert!(g.verify_cold());
    }

    #[test]
    fn churn_to_extinction_and_back() {
        let p = pts(60, 5, 4.0);
        let mut g = IncrementalGraph::build(
            p,
            vec![true; 60],
            IncTopology::Gabriel { radius: 1.0 },
            WHOLE_WINDOW,
        );
        let everyone: Vec<u32> = (0..60).collect();
        g.apply_churn(&everyone, &[]);
        assert_eq!(g.n_alive(), 0);
        assert_eq!(g.graph().m(), 0);
        assert!(g.verify_cold());
        g.apply_churn(&[], &everyone);
        assert_eq!(g.n_alive(), 60);
        assert!(g.verify_cold());
    }

    #[test]
    fn dirty_extents_cover_churn_and_clear_on_quiescence() {
        let p = pts(400, 7, 16.0);
        let mut g =
            IncrementalGraph::build(p, vec![true; 400], IncTopology::Rng { radius: 1.0 }, 2);
        assert!(g.dirty_extents().is_empty(), "no churn yet");
        let deaths: Vec<u32> = g
            .points()
            .iter_enumerated()
            .filter(|&(_, q)| q.x < 3.0 && q.y < 3.0)
            .map(|(u, _)| u)
            .collect();
        assert!(!deaths.is_empty());
        g.apply_churn(&deaths, &[]);
        let extents: Vec<Aabb> = g.dirty_extents().to_vec();
        assert!(!extents.is_empty());
        for &d in &deaths {
            let q = g.points().get(d);
            assert!(
                extents.iter().any(|e| e.contains(q)),
                "death {d} outside every dirty extent"
            );
        }
        // Far corner stays outside the invalidation footprint.
        let window = g.points().bounding_box().unwrap();
        assert!(extents.iter().all(|e| !e.contains(window.max)));
        // A quiescent epoch publishes an empty footprint.
        g.apply_churn(&[], &[]);
        assert!(g.dirty_extents().is_empty());
    }

    #[test]
    fn hng_corner_churn_of_leaf_nodes_stays_local() {
        use crate::hng::hng_levels;
        let p = pts(600, 8, 16.0);
        let kind = IncTopology::Hng {
            p: 0.5,
            links: 2,
            seed: 0xC0DE,
        };
        let mut g = IncrementalGraph::build(p, vec![true; 600], kind, 2);
        let levels = hng_levels(600, 0.5, 0xC0DE);
        // Kill only level-1 nodes in one corner: they answer no uplink
        // query and sit in no clique, so the dependence tracking must
        // keep the repair to the corner instead of escalating the whole
        // population the way the straggler-forcing path used to.
        let deaths: Vec<u32> = g
            .points()
            .iter_enumerated()
            .filter(|&(u, q)| q.x < 3.0 && q.y < 3.0 && levels[u as usize] == 1)
            .map(|(u, _)| u)
            .collect();
        assert!(!deaths.is_empty());
        let stats = g.apply_churn(&deaths, &[]);
        assert!(
            stats.dirty < stats.shard_count,
            "corner HNG churn must leave shards clean ({} of {} dirty)",
            stats.dirty,
            stats.shard_count
        );
        assert!(g.verify_cold());
    }

    #[test]
    fn hng_top_member_death_repairs_the_clique() {
        use crate::hng::hng_levels;
        let p = pts(400, 9, 12.0);
        let kind = IncTopology::Hng {
            p: 0.5,
            links: 1,
            seed: 7,
        };
        let mut g = IncrementalGraph::build(p, vec![true; 400], kind, 2);
        let levels = hng_levels(400, 0.5, 7);
        let (t, tops) = alive_top(&levels, g.alive());
        assert!(t >= 2, "population too small to roll a hierarchy");
        // Killing a clique member changes the maintained top set: every
        // surviving peer re-derives its clique edges and any rung that
        // targeted the dead node re-answers, but the result must still be
        // byte-identical to a cold rebuild on the survivors.
        g.apply_churn(&[tops[0]], &[]);
        assert!(g.verify_cold());
        // Reviving it restores the original top set just as exactly.
        g.apply_churn(&[], &[tops[0]]);
        assert!(g.verify_cold());
    }

    #[test]
    #[should_panic(expected = "already-dead")]
    fn double_death_is_a_logic_error() {
        let p = pts(20, 6, 3.0);
        let mut g = IncrementalGraph::build(p, vec![true; 20], IncTopology::Udg { radius: 1.0 }, 2);
        g.apply_churn(&[3], &[]);
        g.apply_churn(&[3], &[]);
    }
}
