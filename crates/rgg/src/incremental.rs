//! Incrementally maintained topologies under node churn.
//!
//! A lifetime simulation kills and admits nodes every epoch; rebuilding a
//! million-node topology from scratch per epoch would dominate wall-clock.
//! [`IncrementalGraph`] instead keeps the tile-sharded construction's
//! *per-shard edge caches* ([`wsn_graph::ShardedEdgeStore`]) alive across
//! epochs and repairs only what churn touched:
//!
//! * Node ids live in a fixed **universe** id space (the initial deployment
//!   plus any reserve pool); churn toggles an alive mask, never re-indexes.
//! * A shard is **dirty** when a dead or joined node lies inside its
//!   ghost-padded extent — every predicate the builders evaluate (disk
//!   membership, Gabriel blockers, RNG lune witnesses, Yao cone minima,
//!   in-halo k-NN) only consults points within the halo, so a clean
//!   shard's cached emissions are *provably identical* to what a cold
//!   rebuild would emit.
//! * Dirty shards re-run the exact shard derivation functions of
//!   [`crate::sharded`] (shared code, not re-implementations) over the
//!   alive survivors, so the spliced CSR is **byte-identical to a cold
//!   rebuild** — asserted by [`IncrementalGraph::verify_cold`], the churn
//!   engine's debug path, and `tests/churn_incremental.rs`.
//! * The UDG gets a *vertex-deactivation fast path*: node death can only
//!   remove disk edges, so a shard whose padded extent saw deaths but no
//!   joins is repaired by filtering its cache — no geometry at all.
//! * k-NN shards that needed the exact whole-population fallback for any
//!   owned node (*stragglers*) are re-derived every epoch: their lists
//!   depend on points beyond the halo, so they can never be trusted clean.

use rayon::prelude::*;
use wsn_geom::{Aabb, ShardGrid};
use wsn_graph::{relabel, Csr, ShardedEdgeStore};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

use crate::sharded::{
    derive_gabriel, derive_knn, derive_rng, derive_udg, derive_yao, knn_cell_size, Shard,
};
use crate::{build_gabriel, build_knn, build_rng, build_udg, build_yao, knn_halo, WHOLE_WINDOW};

/// The plain topologies the incremental engine can maintain (the SENS
/// constructions repair by per-epoch rebuild instead — their tile-election
/// stitch is global).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum IncTopology {
    Udg { radius: f64 },
    Knn { k: usize },
    Gabriel { radius: f64 },
    Rng { radius: f64 },
    Yao { radius: f64, cones: usize },
}

impl IncTopology {
    /// Stable human-readable label (used by the lifetime bench rows).
    pub fn label(&self) -> String {
        match *self {
            IncTopology::Udg { radius } => format!("udg(r={radius})"),
            IncTopology::Knn { k } => format!("knn(k={k})"),
            IncTopology::Gabriel { radius } => format!("gabriel(r={radius})"),
            IncTopology::Rng { radius } => format!("rng(r={radius})"),
            IncTopology::Yao { radius, cones } => format!("yao(r={radius},c={cones})"),
        }
    }

    /// Whether the splice needs the deduplicating edge-list path (an edge
    /// may be emitted from both endpoints, possibly in different shards).
    fn needs_dedup(&self) -> bool {
        matches!(self, IncTopology::Knn { .. } | IncTopology::Yao { .. })
    }

    /// Whether shard repair after *deaths only* can filter cached edges
    /// instead of re-deriving (exact iff node removal never creates edges).
    fn filter_repairs_deaths(&self) -> bool {
        matches!(self, IncTopology::Udg { .. })
    }
}

/// What one [`IncrementalGraph::apply_churn`] call actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepairStats {
    /// Total shards in the plan.
    pub shard_count: usize,
    /// Shards whose padded extent saw churn (or held k-NN stragglers).
    pub dirty: usize,
    /// Dirty shards repaired by the vertex-deactivation filter.
    pub filtered: usize,
    /// Dirty shards repaired by full re-derivation.
    pub rederived: usize,
}

/// A churn-maintained topology over a fixed universe of points.
pub struct IncrementalGraph {
    kind: IncTopology,
    grid: ShardGrid,
    /// Ghost halo of the plan (the topology radius, or the k-NN halo of the
    /// initial alive population) — fixed for the structure's lifetime.
    halo: f64,
    points: PointSet,
    alive: Vec<bool>,
    n_alive: usize,
    store: ShardedEdgeStore,
    /// Per-shard k-NN straggler flags (always false for other kinds).
    straggler: Vec<bool>,
    csr: Csr,
}

impl IncrementalGraph {
    /// Build the initial structure over `points` restricted to `alive`.
    ///
    /// `tiles_per_shard` sizes the repair granularity in halo units
    /// (smaller shards localise churn better but pay more stitch overhead);
    /// [`WHOLE_WINDOW`] degenerates to rebuild-per-epoch.
    pub fn build(
        points: PointSet,
        alive: Vec<bool>,
        kind: IncTopology,
        tiles_per_shard: usize,
    ) -> Self {
        assert_eq!(alive.len(), points.len(), "mask length must match");
        if let IncTopology::Yao { cones, .. } = kind {
            assert!(cones >= 1, "need at least one cone");
        }
        let n_alive = alive.iter().filter(|&&a| a).count();
        let halo = match kind {
            IncTopology::Udg { radius }
            | IncTopology::Gabriel { radius }
            | IncTopology::Rng { radius }
            | IncTopology::Yao { radius, .. } => {
                assert!(radius > 0.0, "radius must be positive");
                radius
            }
            IncTopology::Knn { k } => {
                let (sub, _, _) = compact(&points, &alive);
                if sub.is_empty() {
                    1.0
                } else {
                    knn_halo(&sub, k.max(1))
                }
            }
        };
        let bbox = points
            .bounding_box()
            .unwrap_or_else(|| Aabb::square(halo.max(1.0)));
        let grid = if tiles_per_shard == WHOLE_WINDOW {
            ShardGrid::whole(&bbox)
        } else {
            ShardGrid::new(&bbox, halo, tiles_per_shard)
        };
        let mut g = IncrementalGraph {
            kind,
            halo,
            store: ShardedEdgeStore::new(points.len(), grid.shard_count()),
            straggler: vec![false; grid.shard_count()],
            grid,
            points,
            alive,
            n_alive,
            csr: Csr::empty(0),
        };
        let all: Vec<usize> = (0..g.grid.shard_count()).collect();
        g.rederive_shards(&all);
        g.csr = g.store.to_csr(g.kind.needs_dedup());
        g
    }

    /// The maintained graph in universe id space (dead nodes isolated).
    #[inline]
    pub fn graph(&self) -> &Csr {
        &self.csr
    }

    /// The universe point set (fixed; includes dead and reserve nodes).
    #[inline]
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    #[inline]
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    #[inline]
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    #[inline]
    pub fn kind(&self) -> IncTopology {
        self.kind
    }

    /// Kill `deaths` and admit `joins`, then repair only the shards whose
    /// padded extent the churn touched. Returns what the repair did.
    ///
    /// Panics if a death is already dead or a join already alive — the
    /// caller (the churn engine) owns liveness bookkeeping.
    pub fn apply_churn(&mut self, deaths: &[u32], joins: &[u32]) -> RepairStats {
        for &d in deaths {
            assert!(self.alive[d as usize], "death of already-dead node {d}");
            self.alive[d as usize] = false;
        }
        for &j in joins {
            assert!(!self.alive[j as usize], "join of already-alive node {j}");
            self.alive[j as usize] = true;
        }
        self.n_alive = self.n_alive + joins.len() - deaths.len();

        // Dirty marking: 0 = clean, 1 = deaths only, 2 = needs re-derive.
        let mut state = vec![0u8; self.grid.shard_count()];
        for &d in deaths {
            let p = self.points.get(d);
            for s in self.grid.shards_near(p, self.halo) {
                state[s] = state[s].max(1);
            }
        }
        for &j in joins {
            let p = self.points.get(j);
            for s in self.grid.shards_near(p, self.halo) {
                state[s] = 2;
            }
        }
        // Straggler shards consulted the whole population; never clean.
        for (s, &strag) in self.straggler.iter().enumerate() {
            if strag {
                state[s] = 2;
            }
        }

        let filter_ok = self.kind.filter_repairs_deaths();
        let mut stats = RepairStats {
            shard_count: self.grid.shard_count(),
            ..RepairStats::default()
        };
        let mut rederive = Vec::new();
        for (s, &st) in state.iter().enumerate() {
            match st {
                0 => {}
                1 if filter_ok => {
                    stats.dirty += 1;
                    stats.filtered += 1;
                    let alive = &self.alive;
                    self.store
                        .retain(s, |u, v| alive[u as usize] && alive[v as usize]);
                }
                _ => {
                    stats.dirty += 1;
                    stats.rederived += 1;
                    rederive.push(s);
                }
            }
        }
        self.rederive_shards(&rederive);
        // A quiescent epoch (no dirty shards) leaves every cache — and
        // therefore the spliced CSR — untouched; skip the O(n + m) splice.
        if stats.dirty > 0 {
            self.csr = self.store.to_csr(self.kind.needs_dedup());
        }
        stats
    }

    /// Re-derive the listed shards over the current alive population,
    /// replacing their caches (shared-code path: `crate::sharded`).
    fn rederive_shards(&mut self, dirty: &[usize]) {
        if dirty.is_empty() {
            return;
        }
        let (sub, to_universe, to_compact) = compact(&self.points, &self.alive);
        if sub.is_empty() {
            for &s in dirty {
                self.store.replace(s, Vec::new());
                self.straggler[s] = false;
            }
            return;
        }
        let cell = match self.kind {
            IncTopology::Knn { k } => knn_cell_size(&sub, k.max(1)),
            IncTopology::Udg { radius }
            | IncTopology::Gabriel { radius }
            | IncTopology::Rng { radius }
            | IncTopology::Yao { radius, .. } => radius,
        };
        let index = GridIndex::build(&sub, cell);
        let bbox = sub.bounding_box().expect("sub is non-empty");
        let kind = self.kind;
        let (grid, halo) = (&self.grid, self.halo);
        let results: Vec<(Vec<(u32, u32)>, bool)> = dirty
            .to_vec()
            .into_par_iter()
            .map(|s| {
                let shard = Shard::gather_mapped(&sub, &to_universe, &index, grid, s, halo);
                match kind {
                    IncTopology::Udg { radius } => (derive_udg(&shard, radius), false),
                    IncTopology::Gabriel { radius } => (derive_gabriel(&shard, radius), false),
                    IncTopology::Rng { radius } => (derive_rng(&shard, radius), false),
                    IncTopology::Yao { radius, cones } => {
                        (derive_yao(&shard, radius, cones), false)
                    }
                    IncTopology::Knn { k } => {
                        let covers_all = grid.padded(s, halo).contains_aabb(&bbox);
                        let (lists, strag) = derive_knn(&shard, k, halo, covers_all, |p, gu| {
                            index
                                .knn(p, k, Some(to_compact[gu as usize]))
                                .into_iter()
                                .map(|(v, _)| to_universe[v as usize])
                                .collect()
                        });
                        let mut edges = Vec::new();
                        for (gu, list) in lists {
                            for v in list {
                                edges.push((gu.min(v), gu.max(v)));
                            }
                        }
                        (edges, strag)
                    }
                }
            })
            .collect();
        for (&s, (edges, strag)) in dirty.iter().zip(results) {
            self.store.replace(s, edges);
            self.straggler[s] = strag;
        }
    }

    /// Build the same topology cold — monolithic reference builder on the
    /// compacted alive survivors, lifted back to universe ids.
    pub fn cold_rebuild(&self) -> Csr {
        let (sub, to_universe, _) = compact(&self.points, &self.alive);
        if sub.is_empty() {
            return Csr::empty(self.points.len());
        }
        let g = match self.kind {
            IncTopology::Udg { radius } => build_udg(&sub, radius),
            IncTopology::Knn { k } => build_knn(&sub, k),
            IncTopology::Gabriel { radius } => build_gabriel(&sub, radius),
            IncTopology::Rng { radius } => build_rng(&sub, radius),
            IncTopology::Yao { radius, cones } => build_yao(&sub, radius, cones),
        };
        relabel(&g, &to_universe, self.points.len())
    }

    /// Edge-identity witness: the incrementally maintained CSR equals a
    /// cold rebuild on the survivors, byte for byte.
    #[must_use]
    pub fn verify_cold(&self) -> bool {
        self.csr == self.cold_rebuild()
    }
}

/// Compact the alive subset: survivor points in universe-id order plus the
/// strictly monotone compact→universe id map — the shared primitive every
/// cold-rebuild comparison path must agree on (byte-identity depends on
/// all of them ordering survivors the same way).
pub fn compact_alive(points: &PointSet, alive: &[bool]) -> (PointSet, Vec<u32>) {
    let (sub, to_universe, _) = compact(points, alive);
    (sub, to_universe)
}

/// [`compact_alive`] plus the universe→compact inverse (`u32::MAX` marks
/// dead) for the k-NN fallback's skip ids.
fn compact(points: &PointSet, alive: &[bool]) -> (PointSet, Vec<u32>, Vec<u32>) {
    let n_alive = alive.iter().filter(|&&a| a).count();
    let mut sub = PointSet::with_capacity(n_alive);
    let mut to_universe = Vec::with_capacity(n_alive);
    let mut to_compact = vec![u32::MAX; points.len()];
    for (g, p) in points.iter_enumerated() {
        if alive[g as usize] {
            to_compact[g as usize] = sub.len() as u32;
            to_universe.push(g);
            sub.push(p);
        }
    }
    (sub, to_universe, to_compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::hash::derive_seed2;
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    fn pts(n: usize, seed: u64, side: f64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(side))
    }

    fn kinds() -> [IncTopology; 5] {
        [
            IncTopology::Udg { radius: 1.0 },
            IncTopology::Knn { k: 4 },
            IncTopology::Gabriel { radius: 1.2 },
            IncTopology::Rng { radius: 1.2 },
            IncTopology::Yao {
                radius: 1.0,
                cones: 6,
            },
        ]
    }

    /// Deterministic churn schedule: epoch `e` kills every alive node whose
    /// hash bucket matches and admits dead ones likewise.
    fn churn_sets(g: &IncrementalGraph, seed: u64, e: u64) -> (Vec<u32>, Vec<u32>) {
        let mut deaths = Vec::new();
        let mut joins = Vec::new();
        for u in 0..g.points().len() as u32 {
            let h = derive_seed2(seed, e, u as u64);
            if g.alive()[u as usize] {
                if h.is_multiple_of(10) {
                    deaths.push(u);
                }
            } else if h.is_multiple_of(4) {
                joins.push(u);
            }
        }
        (deaths, joins)
    }

    #[test]
    fn initial_build_matches_cold_for_every_kind() {
        let p = pts(300, 1, 8.0);
        // A fifth of the universe starts dead (a reserve pool).
        let alive: Vec<bool> = (0..p.len()).map(|i| i % 5 != 0).collect();
        for kind in kinds() {
            let g = IncrementalGraph::build(p.clone(), alive.clone(), kind, 2);
            assert!(g.verify_cold(), "{kind:?}");
            assert_eq!(g.n_alive(), alive.iter().filter(|&&a| a).count());
        }
    }

    #[test]
    fn repeated_churn_epochs_stay_edge_identical_to_cold() {
        let p = pts(260, 2, 8.0);
        let alive = vec![true; p.len()];
        for kind in kinds() {
            let mut g = IncrementalGraph::build(p.clone(), alive.clone(), kind, 2);
            for e in 0..4u64 {
                let (deaths, joins) = churn_sets(&g, 99, e);
                let stats = g.apply_churn(&deaths, &joins);
                assert_eq!(stats.dirty, stats.filtered + stats.rederived);
                assert!(
                    g.verify_cold(),
                    "{kind:?} diverged from cold rebuild at epoch {e}"
                );
            }
        }
    }

    #[test]
    fn udg_death_only_churn_uses_the_filter_path() {
        let p = pts(400, 3, 10.0);
        let mut g =
            IncrementalGraph::build(p, vec![true; 400], IncTopology::Udg { radius: 1.0 }, 2);
        let deaths: Vec<u32> = (0..400u32).filter(|u| u % 7 == 0).collect();
        let stats = g.apply_churn(&deaths, &[]);
        assert!(stats.filtered > 0, "deaths-only UDG churn must filter");
        assert_eq!(stats.rederived, 0);
        assert!(g.verify_cold());
    }

    #[test]
    fn localised_churn_leaves_far_shards_clean() {
        let p = pts(500, 4, 16.0);
        let mut g =
            IncrementalGraph::build(p, vec![true; 500], IncTopology::Rng { radius: 1.0 }, 2);
        // Kill only nodes in one corner.
        let deaths: Vec<u32> = g
            .points()
            .iter_enumerated()
            .filter(|&(u, q)| q.x < 3.0 && q.y < 3.0 && g.alive()[u as usize])
            .map(|(u, _)| u)
            .collect();
        assert!(!deaths.is_empty());
        let stats = g.apply_churn(&deaths, &[]);
        assert!(
            stats.dirty < stats.shard_count,
            "corner churn must leave shards clean ({} of {} dirty)",
            stats.dirty,
            stats.shard_count
        );
        assert!(g.verify_cold());
    }

    #[test]
    fn churn_to_extinction_and_back() {
        let p = pts(60, 5, 4.0);
        let mut g = IncrementalGraph::build(
            p,
            vec![true; 60],
            IncTopology::Gabriel { radius: 1.0 },
            WHOLE_WINDOW,
        );
        let everyone: Vec<u32> = (0..60).collect();
        g.apply_churn(&everyone, &[]);
        assert_eq!(g.n_alive(), 0);
        assert_eq!(g.graph().m(), 0);
        assert!(g.verify_cold());
        g.apply_churn(&[], &everyone);
        assert_eq!(g.n_alive(), 60);
        assert!(g.verify_cold());
    }

    #[test]
    #[should_panic(expected = "already-dead")]
    fn double_death_is_a_logic_error() {
        let p = pts(20, 6, 3.0);
        let mut g = IncrementalGraph::build(p, vec![true; 20], IncTopology::Udg { radius: 1.0 }, 2);
        g.apply_churn(&[3], &[]);
        g.apply_churn(&[3], &[]);
    }
}
