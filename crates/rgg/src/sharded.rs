//! Tile-sharded, rayon-parallel construction of every plain topology.
//!
//! The paper's structures are all *locally constructible*: whether an edge
//! exists depends only on points within a constant radius of its endpoints.
//! The pipeline exploits exactly that. A deployment is decomposed by a
//! [`wsn_geom::ShardGrid`] into rectangular shards; each shard
//!
//! 1. **gathers** its ghost-padded working set (core block inflated by the
//!    topology's halo radius) from one shared read-only [`GridIndex`] — the
//!    halo exchange,
//! 2. **constructs** its owned nodes' edges against a shard-local index
//!    whose coordinates all fit in cache, and
//! 3. hands its edge slice back for the **stitch** into the global CSR.
//!
//! Shards fan out over the rayon pool and are collected in shard order, so
//! the result is bit-identical at any `RAYON_NUM_THREADS` — and, more
//! importantly, *edge-identical to the monolithic builders* in this crate
//! (`tests/sharded_vs_monolithic.rs` pins all seven topology kinds).
//!
//! ## Why the stitched CSR is exactly the monolithic one
//!
//! * Every point has exactly one owner shard, and `ball(p, halo)` is
//!   contained in the owner's padded extent, so an owned node sees exactly
//!   the candidate set the monolithic builder saw (the predicates never
//!   look farther than the halo: UDG/Yao query `radius`; Gabriel blockers
//!   and RNG witnesses lie within `radius` of the nearer endpoint).
//! * Local ids are assigned in ascending global-id order, so every id
//!   tie-break (k-NN heap keys, Yao per-cone minima) orders candidates the
//!   same way.
//! * Predicates are evaluated with the same operand order as the monolithic
//!   code (smaller global id first), so float results are identical — not
//!   merely equivalent.
//! * k-NN, whose halo is probabilistic rather than certain, verifies per
//!   node that its k-th neighbour distance fits inside the halo and falls
//!   back to the shared global index otherwise (exact in both cases since
//!   k-NN results are index-independent).

use rayon::prelude::*;
use wsn_geom::{Aabb, Point, ShardGrid};
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::{GridIndex, SubIndex};

/// Pass as `tiles_per_shard` for an explicit single-shard (whole-window)
/// plan — useful as the degenerate case of differential tests.
pub const WHOLE_WINDOW: usize = usize::MAX;

/// A shard's materialised working set: the ghost-padded points in local id
/// space, the monotone local→global id map, and the ownership mask.
pub(crate) struct Shard {
    pub(crate) pts: PointSet,
    pub(crate) ids: Vec<u32>,
    pub(crate) owned: Vec<bool>,
}

/// The ghost-gather primitive [`Shard::gather_mapped`] needs: sorted ids
/// inside a closed box. Implemented by both the global [`GridIndex`] (the
/// PR-4 whole-population gather) and the localized [`SubIndex`] (the
/// dirty-extent gather, whose extent certificate additionally asserts the
/// padded box is covered).
pub(crate) trait GhostGather {
    fn gather_sorted_into(&self, b: &Aabb, out: &mut Vec<u32>);
}

impl GhostGather for GridIndex<'_> {
    fn gather_sorted_into(&self, b: &Aabb, out: &mut Vec<u32>) {
        self.gather_sorted(b, out);
    }
}

impl GhostGather for SubIndex<'_> {
    fn gather_sorted_into(&self, b: &Aabb, out: &mut Vec<u32>) {
        self.gather_sorted(b, out);
    }
}

impl Shard {
    pub(crate) fn gather(
        points: &PointSet,
        gather: &GridIndex,
        grid: &ShardGrid,
        s: usize,
        halo: f64,
    ) -> Shard {
        let mut ids = Vec::new();
        gather.gather_sorted(&grid.padded(s, halo), &mut ids);
        let mut pts = PointSet::with_capacity(ids.len());
        let mut owned = Vec::with_capacity(ids.len());
        for &g in &ids {
            let p = points.get(g);
            pts.push(p);
            owned.push(grid.owner_of(p) == s);
        }
        Shard { pts, ids, owned }
    }

    /// Gather through an index whose ids are *local* to some compacted
    /// subset (e.g. the alive survivors of a churned deployment), mapping
    /// them back to universe ids via the strictly monotone `to_universe`.
    ///
    /// Because the map is monotone, the gathered working set is ordered by
    /// universe id exactly as [`Shard::gather`] orders it by global id —
    /// every id tie-break downstream resolves identically, which is what
    /// makes incremental repair byte-identical to a cold rebuild.
    pub(crate) fn gather_mapped(
        sub: &PointSet,
        to_universe: &[u32],
        index: &impl GhostGather,
        grid: &ShardGrid,
        s: usize,
        halo: f64,
    ) -> Shard {
        let mut local = Vec::new();
        index.gather_sorted_into(&grid.padded(s, halo), &mut local);
        let mut pts = PointSet::with_capacity(local.len());
        let mut ids = Vec::with_capacity(local.len());
        let mut owned = Vec::with_capacity(local.len());
        for &l in &local {
            let p = sub.get(l);
            pts.push(p);
            ids.push(to_universe[l as usize]);
            owned.push(grid.owner_of(p) == s);
        }
        Shard { pts, ids, owned }
    }
}

/// One shard's UDG emissions: every canonical edge whose smaller endpoint
/// the shard owns. Shared verbatim by the cold pipeline and the
/// incremental repair path (`crate::incremental`).
pub(crate) fn derive_udg(shard: &Shard, radius: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if shard.pts.is_empty() {
        return out;
    }
    let index = GridIndex::build(&shard.pts, radius);
    for (u, p) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        index.for_each_in_disk(p, radius, |v, _| {
            let gv = shard.ids[v as usize];
            if gv > gu {
                out.push((gu, gv));
            }
        });
    }
    out
}

/// One shard's Gabriel emissions (diameter-disk emptiness over the owner's
/// distance-sorted neighbour list, early exit on the first blocker).
pub(crate) fn derive_gabriel(shard: &Shard, radius: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if shard.pts.is_empty() {
        return out;
    }
    let index = GridIndex::build(&shard.pts, radius);
    // Every blocker of an edge `uv` (inside the diameter disk) is within
    // `|uv| ≤ radius` of `u`, i.e. already in `u`'s neighbour list — so the
    // emptiness test scans that list (sorted by distance: likely blockers
    // first, early exit) instead of probing grid cells per edge.
    let mut nbrs: Vec<(u32, Point, f64)> = Vec::new();
    for (u, pu) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        nbrs.clear();
        index.for_each_in_disk(pu, radius, |v, q| {
            if v != u {
                nbrs.push((v, q, pu.dist(q)));
            }
        });
        nbrs.sort_unstable_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        for &(v, pv, _) in &nbrs {
            let gv = shard.ids[v as usize];
            if gv <= gu {
                continue;
            }
            let mid = pu.midpoint(pv);
            let r = pu.dist(pv) * 0.5;
            let r2 = r * r - 1e-12;
            let blocked = nbrs.iter().any(|&(w, q, _)| w != v && q.dist_sq(mid) < r2);
            if !blocked {
                out.push((gu, gv));
            }
        }
    }
    out
}

/// One shard's RNG emissions (lune emptiness as a prefix scan of the
/// distance-sorted neighbour list).
pub(crate) fn derive_rng(shard: &Shard, radius: f64) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if shard.pts.is_empty() {
        return out;
    }
    let index = GridIndex::build(&shard.pts, radius);
    // A lune witness of `uv` is closer than `|uv| ≤ radius` to *both*
    // endpoints, so it is in `u`'s neighbour list. Sorting that list by
    // distance-to-`u` makes the witness scan a prefix scan: entries at
    // `d(w, u) ≥ |uv|` can never block and terminate the loop.
    let mut nbrs: Vec<(u32, Point, f64)> = Vec::new();
    for (u, pu) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        nbrs.clear();
        index.for_each_in_disk(pu, radius, |v, q| {
            if v != u {
                nbrs.push((v, q, pu.dist(q)));
            }
        });
        nbrs.sort_unstable_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        for &(v, pv, d) in &nbrs {
            let gv = shard.ids[v as usize];
            if gv <= gu {
                continue;
            }
            let strict = d - 1e-12;
            let mut blocked = false;
            for &(w, q, dwu) in &nbrs {
                if dwu >= strict {
                    break; // sorted: no later entry can block
                }
                if w != v && q.dist(pv) < strict {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                out.push((gu, gv));
            }
        }
    }
    out
}

/// One shard's Yao emissions: per owned node, the nearest neighbour of each
/// angular cone, as canonical pairs (an edge may also be emitted by its
/// other endpoint's shard — splice through the deduplicating path).
pub(crate) fn derive_yao(shard: &Shard, radius: f64, cones: usize) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if shard.pts.is_empty() {
        return out;
    }
    let sector = std::f64::consts::TAU / cones as f64;
    let index = GridIndex::build(&shard.pts, radius);
    // best[c] = (dist, global id) of the nearest neighbour in cone c —
    // keyed on global ids so ties break exactly as in the monolithic
    // builder.
    let mut best: Vec<Option<(f64, u32)>> = vec![None; cones];
    for (u, p) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        best.iter_mut().for_each(|b| *b = None);
        index.for_each_in_disk(p, radius, |v, q| {
            if v == u {
                return;
            }
            let angle = (q.y - p.y)
                .atan2(q.x - p.x)
                .rem_euclid(std::f64::consts::TAU);
            let cone = ((angle / sector) as usize).min(cones - 1);
            let cand = (p.dist(q), shard.ids[v as usize]);
            if best[cone].is_none_or(|cur| cand < cur) {
                best[cone] = Some(cand);
            }
        });
        for b in best.iter().flatten() {
            out.push((gu.min(b.1), gu.max(b.1)));
        }
    }
    out
}

/// Distance from `p` to the nearest *finite* side of `b`. Window-edge
/// shards keep their unbounded outward reach as `±INFINITY` sides
/// ([`ShardGrid::padded`]), which contribute an infinite margin here — no
/// special-casing needed. Any point strictly outside the closed box
/// violates at least one finite side's plane and is therefore strictly
/// farther than this margin from `p`, so a k-th-neighbour distance within
/// the margin certifies the box-local k-NN answer as globally exact
/// (including id tie-breaks: an outside point can never tie the k-th
/// distance, its distance is strictly larger).
#[inline]
pub(crate) fn interior_margin(p: Point, b: &Aabb) -> f64 {
    (p.x - b.min.x)
        .min(b.max.x - p.x)
        .min(p.y - b.min.y)
        .min(b.max.y - p.y)
}

/// One shard's directed k-NN lists in global id space, plus whether any
/// owned node *straggled* (its k-th neighbour fell outside the node's
/// interior margin of the shard's `padded` extent, forcing the exact
/// `fallback` query — `fallback(p, gu)` must return `gu`'s k nearest over
/// the whole point population, in global ids).
///
/// The certificate is per node, not per shard: a node deep inside the
/// padded box tolerates a k-th distance up to its own distance from the
/// box boundary ([`interior_margin`]), which is never smaller than the
/// halo for owned nodes and unbounded toward window edges — so group-local
/// repairs certify far more nodes than the old whole-halo test did,
/// without ever certifying a node whose list could depend on points beyond
/// the gathered box.
///
/// The straggler flag matters to incremental maintenance: a straggler's
/// list depends on points beyond the shard's padded extent, so its shard
/// can never be trusted as "clean" under churn.
pub(crate) fn derive_knn<F>(
    shard: &Shard,
    k: usize,
    padded: &Aabb,
    covers_all: bool,
    fallback: F,
) -> (Vec<(u32, Vec<u32>)>, bool)
where
    F: Fn(Point, u32) -> Vec<u32>,
{
    let mut out = Vec::new();
    let mut straggled = false;
    if shard.pts.is_empty() {
        return (out, straggled);
    }
    let index = GridIndex::build(&shard.pts, knn_cell_size(&shard.pts, k));
    for (u, p) in shard.pts.iter_enumerated() {
        if !shard.owned[u as usize] {
            continue;
        }
        let gu = shard.ids[u as usize];
        let local = index.knn(p, k, Some(u));
        let certain = covers_all
            || (local.len() == k
                && local
                    .last()
                    .is_none_or(|&(_, d)| d <= interior_margin(p, padded)));
        let list: Vec<u32> = if certain {
            local
                .into_iter()
                .map(|(v, _)| shard.ids[v as usize])
                .collect()
        } else {
            // Halo miss: resolve exactly against the full population
            // (k-NN results are index-independent).
            straggled = true;
            fallback(p, gu)
        };
        out.push((gu, list));
    }
    (out, straggled)
}

/// Shard plan over the deployment's bounding box with shards of
/// `tiles_per_shard` tiles (of side `tile`) per side.
pub(crate) fn plan(points: &PointSet, tile: f64, tiles_per_shard: usize) -> ShardGrid {
    let bbox = points.bounding_box().expect("caller guards empty sets");
    if tiles_per_shard == WHOLE_WINDOW {
        ShardGrid::whole(&bbox)
    } else {
        ShardGrid::new(&bbox, tile, tiles_per_shard)
    }
}

/// Fan `build_shard` out over all shards and concatenate in shard order.
pub(crate) fn fan_out<F>(grid: &ShardGrid, build_shard: F) -> Vec<(u32, u32)>
where
    F: Fn(usize) -> Vec<(u32, u32)> + Sync,
{
    let per_shard: Vec<Vec<(u32, u32)>> = (0..grid.shard_count())
        .into_par_iter()
        .map(build_shard)
        .collect();
    let total = per_shard.iter().map(Vec::len).sum();
    let mut all = Vec::with_capacity(total);
    for mut chunk in per_shard {
        all.append(&mut chunk);
    }
    all
}

/// Sharded `UDG(points, radius)` — edge-identical to
/// [`crate::udg::build_udg`].
pub fn build_udg_sharded(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    assert!(radius > 0.0, "radius must be positive");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let gather = GridIndex::build(points, radius);
    let grid = plan(points, radius, tiles_per_shard);
    let edges = fan_out(&grid, |s| {
        derive_udg(&Shard::gather(points, &gather, &grid, s, radius), radius)
    });
    // Each canonical edge is emitted exactly once (by the owner of its
    // smaller endpoint), so the CSR builds without a global sort.
    Csr::from_canonical_edges(points.len(), &edges)
}

/// Sharded Gabriel subgraph of `UDG(points, radius)` — edge-identical to
/// [`crate::gabriel::build_gabriel`].
///
/// Unlike the monolithic builder this never materialises the intermediate
/// UDG, and the diameter-disk emptiness test short-circuits on the first
/// blocker instead of scanning the whole disk.
pub fn build_gabriel_sharded(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    assert!(radius > 0.0, "radius must be positive");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let gather = GridIndex::build(points, radius);
    let grid = plan(points, radius, tiles_per_shard);
    let edges = fan_out(&grid, |s| {
        derive_gabriel(&Shard::gather(points, &gather, &grid, s, radius), radius)
    });
    Csr::from_canonical_edges(points.len(), &edges)
}

/// Sharded relative neighbourhood subgraph of `UDG(points, radius)` —
/// edge-identical to [`crate::rng_graph::build_rng`].
pub fn build_rng_sharded(points: &PointSet, radius: f64, tiles_per_shard: usize) -> Csr {
    assert!(radius > 0.0, "radius must be positive");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let gather = GridIndex::build(points, radius);
    let grid = plan(points, radius, tiles_per_shard);
    let edges = fan_out(&grid, |s| {
        derive_rng(&Shard::gather(points, &gather, &grid, s, radius), radius)
    });
    Csr::from_canonical_edges(points.len(), &edges)
}

/// Sharded Yao subgraph of `UDG(points, radius)` with `cones` sectors —
/// edge-identical to [`crate::yao::build_yao`].
pub fn build_yao_sharded(
    points: &PointSet,
    radius: f64,
    cones: usize,
    tiles_per_shard: usize,
) -> Csr {
    assert!(cones >= 1, "need at least one cone");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let gather = GridIndex::build(points, radius);
    let grid = plan(points, radius, tiles_per_shard);
    let edges = fan_out(&grid, |s| {
        derive_yao(
            &Shard::gather(points, &gather, &grid, s, radius),
            radius,
            cones,
        )
    });
    // Directed selections can coincide from both endpoints (possibly in
    // different shards); symmetrise through the deduplicating edge-list
    // path like the monolithic builder does.
    let mut el = EdgeList::with_capacity(points.len(), edges.len());
    for (u, v) in edges {
        el.add(u, v);
    }
    Csr::from_edge_list(el)
}

/// Grid cell size for k-NN searches (same heuristic as the monolithic
/// builder: roughly the radius expected to contain k points).
pub(crate) fn knn_cell_size(points: &PointSet, k: usize) -> f64 {
    let bb = points.bounding_box().unwrap();
    let area = bb.area().max(1e-9);
    let density = points.len() as f64 / area;
    ((k as f64 + 1.0) / (std::f64::consts::PI * density.max(1e-9)))
        .sqrt()
        .clamp(1e-3, bb.width().max(bb.height()).max(1e-3))
}

/// The halo radius the sharded k-NN builder pads shards with (3× the
/// expected k-point radius at the set's mean density) — also the tile side
/// of its [`ShardGrid`] plan. Exposed so external tooling (the pipeline
/// bench) can reconstruct the exact shard decomposition.
pub fn knn_halo(points: &PointSet, k: usize) -> f64 {
    3.0 * knn_cell_size(points, k)
}

/// The sharded directed k-NN lists — identical to
/// [`crate::knn::knn_lists`].
///
/// The halo is sized so that a node's k nearest almost surely fit inside
/// it (3× the expected k-point radius); each node *verifies* that bound
/// (`k` results, all within the halo) and the rare stragglers fall back to
/// an exact query on the shared global index.
pub fn knn_lists_sharded(points: &PointSet, k: usize, tiles_per_shard: usize) -> Vec<Vec<u32>> {
    if points.is_empty() || k == 0 {
        return vec![Vec::new(); points.len()];
    }
    let halo = knn_halo(points, k);
    let gather = GridIndex::build(points, knn_cell_size(points, k));
    let grid = plan(points, halo, tiles_per_shard);
    let bbox = points.bounding_box().unwrap();
    let per_shard: Vec<Vec<(u32, Vec<u32>)>> = (0..grid.shard_count())
        .into_par_iter()
        .map(|s| {
            let shard = Shard::gather(points, &gather, &grid, s, halo);
            let padded = grid.padded(s, halo);
            let covers_all = padded.contains_aabb(&bbox);
            derive_knn(&shard, k, &padded, covers_all, |p, gu| {
                gather
                    .knn(p, k, Some(gu))
                    .into_iter()
                    .map(|(v, _)| v)
                    .collect()
            })
            .0
        })
        .collect();
    let mut lists = vec![Vec::new(); points.len()];
    for chunk in per_shard {
        for (gu, list) in chunk {
            lists[gu as usize] = list;
        }
    }
    lists
}

/// Sharded undirected `NN(points, k)` — edge-identical to
/// [`crate::knn::build_knn`].
pub fn build_knn_sharded(points: &PointSet, k: usize, tiles_per_shard: usize) -> Csr {
    let lists = knn_lists_sharded(points, k, tiles_per_shard);
    let mut el = EdgeList::with_capacity(points.len(), points.len() * k);
    for (u, nbrs) in lists.iter().enumerate() {
        for &v in nbrs {
            el.add(u as u32, v);
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_gabriel, build_knn, build_rng, build_udg, build_yao, knn_lists};
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    fn pts(n: usize, seed: u64, side: f64) -> PointSet {
        sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(side))
    }

    #[test]
    fn udg_matches_monolithic_across_shard_sizes() {
        let p = pts(400, 1, 10.0);
        let mono = build_udg(&p, 1.0);
        for tiles in [1, 3, WHOLE_WINDOW] {
            assert_eq!(build_udg_sharded(&p, 1.0, tiles), mono, "tiles = {tiles}");
        }
    }

    #[test]
    fn gabriel_and_rng_match_monolithic() {
        let p = pts(300, 2, 8.0);
        assert_eq!(build_gabriel_sharded(&p, 1.2, 2), build_gabriel(&p, 1.2));
        assert_eq!(build_rng_sharded(&p, 1.2, 2), build_rng(&p, 1.2));
    }

    #[test]
    fn yao_matches_monolithic() {
        let p = pts(300, 3, 8.0);
        for cones in [1, 4, 6] {
            assert_eq!(
                build_yao_sharded(&p, 1.0, cones, 2),
                build_yao(&p, 1.0, cones),
                "cones = {cones}"
            );
        }
    }

    #[test]
    fn knn_lists_and_graph_match_monolithic() {
        let p = pts(250, 4, 6.0);
        for k in [1, 4, 9] {
            assert_eq!(knn_lists_sharded(&p, k, 2), knn_lists(&p, k), "k = {k}");
            assert_eq!(build_knn_sharded(&p, k, 2), build_knn(&p, k));
        }
    }

    #[test]
    fn tiny_and_empty_inputs() {
        let empty = PointSet::new();
        assert_eq!(build_udg_sharded(&empty, 1.0, 4).n(), 0);
        assert_eq!(build_knn_sharded(&empty, 3, 4).n(), 0);
        let two: PointSet = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]
            .into_iter()
            .collect();
        assert_eq!(build_udg_sharded(&two, 1.0, 1), build_udg(&two, 1.0));
        assert_eq!(build_knn_sharded(&two, 5, 1), build_knn(&two, 5));
        assert_eq!(build_knn_sharded(&two, 0, 1).m(), 0);
    }

    #[test]
    fn clustered_deployment_with_empty_shards() {
        // Two far-apart dense clusters leave most interior shards empty.
        let mut p = PointSet::new();
        for (i, q) in pts(120, 5, 2.0).iter().enumerate() {
            let off = if i % 2 == 0 { 0.0 } else { 30.0 };
            p.push(Point::new(q.x + off, q.y + off));
        }
        assert_eq!(build_udg_sharded(&p, 1.0, 2), build_udg(&p, 1.0));
        assert_eq!(build_gabriel_sharded(&p, 1.0, 2), build_gabriel(&p, 1.0));
    }
}
