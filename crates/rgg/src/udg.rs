//! Unit-disk graphs.

use wsn_geom::Point;
use wsn_graph::{Csr, EdgeList};
use wsn_pointproc::PointSet;
use wsn_spatial::GridIndex;

/// Build `UDG(points, radius)`: an undirected edge wherever
/// `d(u, v) ≤ radius`. O(n · expected neighbourhood size) via the grid index.
pub fn build_udg(points: &PointSet, radius: f64) -> Csr {
    assert!(radius > 0.0, "radius must be positive");
    if points.is_empty() {
        return Csr::empty(0);
    }
    let index = GridIndex::build(points, radius);
    let mut el = EdgeList::with_capacity(points.len(), points.len() * 4);
    for (u, p) in points.iter_enumerated() {
        index.for_each_in_disk(p, radius, |v, _| {
            if v > u {
                el.add(u, v);
            }
        });
    }
    Csr::from_edge_list(el)
}

/// Build the UDG under torus (periodic) boundary conditions on the square
/// `[0, side)²` — used by threshold experiments to remove edge bias.
///
/// Implementation: a point near the boundary also queries the 8 shifted
/// copies of the window; the torus distance condition is checked explicitly.
pub fn build_udg_torus(points: &PointSet, radius: f64, side: f64) -> Csr {
    assert!(
        radius > 0.0 && side > 2.0 * radius,
        "window too small for torus UDG"
    );
    if points.is_empty() {
        return Csr::empty(0);
    }
    let index = GridIndex::build(points, radius);
    let window = wsn_pointproc::Window::torus(side);
    let r2 = radius * radius;
    let mut el = EdgeList::with_capacity(points.len(), points.len() * 4);
    for (u, p) in points.iter_enumerated() {
        for dx in [-side, 0.0, side] {
            for dy in [-side, 0.0, side] {
                let q = Point::new(p.x + dx, p.y + dy);
                index.for_each_in_disk(q, radius, |v, _| {
                    if v > u && window.dist_sq(p, points.get(v)) <= r2 {
                        el.add(u, v);
                    }
                });
            }
        }
    }
    Csr::from_edge_list(el)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_binomial_window};

    #[test]
    fn hand_built_chain() {
        let pts: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(1.8, 0.0),
            Point::new(4.0, 0.0),
        ]
        .into_iter()
        .collect();
        let g = build_udg(&pts, 1.0);
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn edge_at_exactly_radius_is_included() {
        let pts: PointSet = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]
            .into_iter()
            .collect();
        let g = build_udg(&pts, 1.0);
        assert!(g.has_edge(0, 1), "closed-ball convention");
    }

    #[test]
    fn empty_input() {
        assert_eq!(build_udg(&PointSet::new(), 1.0).n(), 0);
    }

    #[test]
    fn torus_adds_wrap_edges() {
        let side = 10.0;
        let pts: PointSet = vec![Point::new(0.2, 5.0), Point::new(9.9, 5.0)]
            .into_iter()
            .collect();
        let plane = build_udg(&pts, 1.0);
        assert_eq!(plane.m(), 0);
        let torus = build_udg_torus(&pts, 1.0, side);
        assert!(torus.has_edge(0, 1), "wrap distance 0.3 must connect");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// UDG edges exactly match the pairwise predicate.
        #[test]
        fn prop_matches_bruteforce(seed in 0u64..300, n in 0usize..120, r in 0.2f64..2.0) {
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(8.0));
            let g = build_udg(&pts, r);
            prop_assume!(n > 0);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    let expected = pts.get(u).dist(pts.get(v)) <= r;
                    prop_assert_eq!(g.has_edge(u, v), expected, "pair ({}, {})", u, v);
                }
            }
        }

        /// Torus UDG edges match the torus-distance predicate.
        #[test]
        fn prop_torus_matches_bruteforce(seed in 0u64..300, n in 0usize..80) {
            let side = 8.0;
            let r = 1.0;
            let pts = sample_binomial_window(&mut rng_from_seed(seed), n, &Aabb::square(side));
            let g = build_udg_torus(&pts, r, side);
            let w = wsn_pointproc::Window::torus(side);
            prop_assume!(n > 0);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    let expected = w.dist(pts.get(u), pts.get(v)) <= r;
                    prop_assert_eq!(g.has_edge(u, v), expected, "pair ({}, {})", u, v);
                }
            }
        }
    }
}
