//! # wsn-rgg
//!
//! Geometric random graphs on point sets:
//!
//! * [`udg`] — the unit-disk graph `UDG(2, λ)` (edge iff `d(x, y) ≤ r`,
//!   r = 1 in the paper), with an optional torus boundary.
//! * [`knn`] — the k-nearest-neighbour graph `NN(2, k)` of Häggström &
//!   Meester: each point connects (undirectedly) to its k nearest.
//! * [`hng`] — hierarchical neighbor graphs (Bagchi–Madan–Premi): seeded
//!   probabilistic level promotion plus nearest-higher-level uplinks,
//!   connected by construction with O(1) expected degree.
//!
//! plus the classical *topology-control baselines* the related-work section
//! compares against (each computed as a spanning subgraph of the UDG, as in
//! Li–Wan–Wang):
//!
//! * [`gabriel`] — Gabriel graph (diameter-disk empty);
//! * [`rng_graph`] — relative neighbourhood graph (lune empty);
//! * [`yao`] — Yao graph (shortest edge per angular cone).
//!
//! All builders return [`wsn_graph::Csr`] over the ids of the input
//! [`wsn_pointproc::PointSet`].
//!
//! Every topology also has a tile-sharded, rayon-parallel builder in
//! [`sharded`] that streams the deployment as ghost-padded shards and is
//! proven edge-identical to the monolithic builder — the construction
//! pipeline behind million-node experiments. The [`ordered`] entry points
//! run those builders over a Morton-sorted copy of the deployment (cache
//! -linear gathers) and remap the graph back to original ids at the
//! emission boundary, byte-identically.
//!
//! Under node churn the same shard decomposition powers [`incremental`]:
//! per-shard edge caches survive across epochs and only shards whose
//! ghost-padded extent saw a death or join are re-derived, keeping the
//! maintained CSR byte-identical to a cold rebuild at a fraction of the
//! cost.

pub mod gabriel;
pub mod hng;
pub mod incremental;
pub mod knn;
pub mod ordered;
pub mod rng_graph;
pub mod sharded;
pub mod udg;
pub mod yao;

pub use gabriel::build_gabriel;
pub use hng::{
    build_hng, build_hng_on_levels, build_hng_sharded, build_hng_sharded_on_levels, hng_halo,
    hng_levels, HngParams,
};
pub use incremental::{compact_alive, GatherPolicy, IncTopology, IncrementalGraph, RepairStats};
pub use knn::{build_knn, knn_lists};
pub use ordered::{
    build_gabriel_ordered, build_hng_ordered, build_knn_ordered, build_rng_ordered,
    build_udg_ordered, build_yao_ordered,
};
pub use rng_graph::build_rng;
pub use sharded::{
    build_gabriel_sharded, build_knn_sharded, build_rng_sharded, build_udg_sharded,
    build_yao_sharded, knn_halo, knn_lists_sharded, WHOLE_WINDOW,
};
pub use udg::{build_udg, build_udg_torus};
pub use yao::{build_yao, yao_out_lists};
