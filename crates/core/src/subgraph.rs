//! The common output type of both constructions.
//!
//! A [`SensNetwork`] bundles the elected subgraph, the node roles, the
//! coupled percolation lattice and the tile grid. "The largest connected
//! component formed by the representative points and relay points" — the
//! paper's definition of `UDG-SENS` / `NN-SENS` — is exposed as
//! [`SensNetwork::core_mask`].

use serde::Serialize;
use wsn_geom::tile::Dir;
use wsn_graph::components::connected_components;
use wsn_graph::stats::{degree_stats_masked, DegreeStats};
use wsn_graph::Csr;
use wsn_perc::{route_xy, Lattice, RouteOutcome, Site};
use wsn_pointproc::PointSet;

use crate::tilegrid::TileGrid;

/// Role bit: the node is a tile representative.
pub const ROLE_REP: u16 = 1;

/// Role bit for a relay in direction `d`.
#[inline]
pub fn relay_bit(d: Dir) -> u16 {
    2 << d.index()
}

/// Any-relay mask.
pub const ROLE_RELAY_ANY: u16 = 0b0001_1110;

/// A built SENS topology (either variant).
#[derive(Clone, Debug)]
pub struct SensNetwork {
    /// The tile grid (the bijection φ to the lattice).
    pub grid: TileGrid,
    /// Coupled site-percolation lattice: site open ⇔ tile good.
    pub lattice: Lattice,
    /// The elected subgraph over the *full* node-id space (non-members are
    /// isolated).
    pub graph: Csr,
    /// Per node: role bitmask ([`ROLE_REP`], [`relay_bit`]); 0 = unused.
    pub roles: Vec<u16>,
    /// Per node: linear tile index, `u32::MAX` when outside the grid.
    pub tile_of_node: Vec<u32>,
    /// Per linear tile index: elected representative (`u32::MAX` = none).
    pub reps: Vec<u32>,
    /// Mask of the largest connected component of elected nodes — the SENS
    /// network proper.
    pub core_mask: Vec<bool>,
    /// Required links that were *not* present in the base graph (always 0 in
    /// strict UDG mode; may be positive in paper mode — see DESIGN.md §2).
    pub missing_links: usize,
}

/// Summary counters used by experiments and examples.
#[derive(Clone, Debug, Serialize)]
pub struct SensSummary {
    pub nodes_total: usize,
    pub tiles_total: usize,
    pub tiles_good: usize,
    pub elected: usize,
    pub core_size: usize,
    pub edges: usize,
    pub max_degree: usize,
    pub mean_degree: f64,
    pub missing_links: usize,
}

impl SensNetwork {
    #[doc(hidden)]
    pub fn assemble(
        grid: TileGrid,
        lattice: Lattice,
        graph: Csr,
        roles: Vec<u16>,
        tile_of_node: Vec<u32>,
        reps: Vec<u32>,
        missing_links: usize,
    ) -> Self {
        // Largest component among elected nodes. The graph has edges only
        // between elected nodes, so plain components + masking out the
        // unelected singletons is enough.
        let comps = connected_components(&graph);
        let mut core_mask = comps.largest_mask();
        // An empty construction: largest "component" may be an unelected
        // isolated node; clear it.
        for (i, m) in core_mask.iter_mut().enumerate() {
            if roles[i] == 0 {
                *m = false;
            }
        }
        SensNetwork {
            grid,
            lattice,
            graph,
            roles,
            tile_of_node,
            reps,
            core_mask,
            missing_links,
        }
    }

    /// Representative of the tile at `site`, if the tile is good.
    #[inline]
    pub fn rep_of(&self, site: Site) -> Option<u32> {
        let r = self.reps[self.grid.linear(site)];
        (r != u32::MAX).then_some(r)
    }

    /// Is the node part of the SENS network (largest elected component)?
    #[inline]
    pub fn is_member(&self, node: u32) -> bool {
        self.core_mask[node as usize]
    }

    /// Ids of all member nodes.
    pub fn members(&self) -> Vec<u32> {
        (0..self.core_mask.len() as u32)
            .filter(|&u| self.core_mask[u as usize])
            .collect()
    }

    /// Number of elected nodes (reps + relays, all components).
    pub fn elected_count(&self) -> usize {
        self.roles.iter().filter(|&&r| r != 0).count()
    }

    /// Degree statistics over the members — property P1 says `max ≤ 4`.
    pub fn degree_stats(&self) -> DegreeStats {
        degree_stats_masked(&self.graph, &self.core_mask)
    }

    pub fn summary(&self) -> SensSummary {
        let d = self.degree_stats();
        SensSummary {
            nodes_total: self.roles.len(),
            tiles_total: self.grid.tile_count(),
            tiles_good: self.lattice.open_count(),
            elected: self.elected_count(),
            core_size: self.core_mask.iter().filter(|&&b| b).count(),
            edges: self.graph.m(),
            max_degree: d.max,
            mean_degree: d.mean,
            missing_links: self.missing_links,
        }
    }

    /// Node-level path between the representatives of two *adjacent* good
    /// tiles, using only nodes of those two tiles. `None` if the link was
    /// not realised (possible only when `missing_links > 0`).
    pub fn adjacent_rep_path(&self, a: Site, b: Site) -> Option<Vec<u32>> {
        let (ra, rb) = (self.rep_of(a)?, self.rep_of(b)?);
        let (la, lb) = (self.grid.linear(a) as u32, self.grid.linear(b) as u32);
        // BFS from ra to rb restricted to the two tiles (≤ ~20 nodes deep).
        let mut parent: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        parent.insert(ra, ra);
        queue.push_back(ra);
        while let Some(u) = queue.pop_front() {
            if u == rb {
                let mut path = vec![rb];
                let mut c = rb;
                while c != ra {
                    c = parent[&c];
                    path.push(c);
                }
                path.reverse();
                return Some(path);
            }
            for &v in self.graph.neighbors(u) {
                let t = self.tile_of_node[v as usize];
                if (t == la || t == lb) && !parent.contains_key(&v) {
                    parent.insert(v, u);
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Route a packet between the representatives of two tiles with the
    /// Fig. 9 algorithm on the coupled lattice, then expand the site path to
    /// an actual node path through relays.
    ///
    /// Returns the lattice-level outcome together with the node path; the
    /// node path is `None` when the packet was undeliverable or (paper mode
    /// only) a lattice edge was not realised by physical links.
    pub fn route(&self, src: Site, dst: Site) -> (RouteOutcome, Option<Vec<u32>>) {
        let outcome = route_xy(&self.lattice, src, dst);
        if !outcome.delivered {
            return (outcome, None);
        }
        let mut nodes: Vec<u32> = Vec::new();
        match self.rep_of(src) {
            Some(r) => nodes.push(r),
            None => return (outcome, None),
        }
        for w in outcome.path.windows(2) {
            match self.adjacent_rep_path(w[0], w[1]) {
                Some(seg) => nodes.extend_from_slice(&seg[1..]),
                None => return (outcome, None),
            }
        }
        (outcome, Some(nodes))
    }

    /// Check every consecutive pair of a node path is a graph edge.
    pub fn validate_node_path(&self, path: &[u32]) -> bool {
        path.windows(2).all(|w| self.graph.has_edge(w[0], w[1]))
    }

    /// Member nodes inside an axis-aligned box — the coverage primitive of
    /// Theorem 3.3 (`|B(ℓ) ∩ SENS|`).
    pub fn members_in_box(&self, points: &PointSet, b: &wsn_geom::Aabb) -> usize {
        // Members are sparse; a linear scan over members is fine and avoids
        // keeping a second spatial index alive.
        (0..points.len() as u32)
            .filter(|&u| self.core_mask[u as usize] && b.contains(points.get(u)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UdgSensParams;
    use crate::tilegrid::TileGrid;
    use crate::udg::build_udg_sens;
    use wsn_geom::{Aabb, Point};
    use wsn_pointproc::{rng_from_seed, sample_poisson_window};

    fn network(seed: u64, lambda: f64) -> (SensNetwork, PointSet) {
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(14.0, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed), lambda, &window);
        (build_udg_sens(&pts, params, grid).unwrap(), pts)
    }

    #[test]
    fn role_bits_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(ROLE_REP));
        for d in Dir::ALL {
            assert!(seen.insert(relay_bit(d)), "duplicate bit for {d:?}");
            assert_ne!(relay_bit(d), 0);
            assert_ne!(relay_bit(d) & ROLE_RELAY_ANY, 0);
        }
        assert_eq!(ROLE_REP & ROLE_RELAY_ANY, 0);
    }

    #[test]
    fn summary_counters_are_consistent() {
        let (net, pts) = network(1, 30.0);
        let s = net.summary();
        assert_eq!(s.nodes_total, pts.len());
        assert_eq!(s.tiles_total, net.grid.tile_count());
        assert_eq!(s.tiles_good, net.lattice.open_count());
        assert!(s.core_size <= s.elected);
        assert_eq!(s.elected, net.elected_count());
        assert_eq!(s.core_size, net.members().len());
        assert!(s.max_degree <= 4);
    }

    #[test]
    fn members_in_box_counts_only_core_members() {
        let (net, pts) = network(2, 30.0);
        let window = net.grid.covered_area();
        let all = net.members_in_box(&pts, &window);
        assert_eq!(all, net.members().len(), "the full window holds the core");
        let empty = net.members_in_box(&pts, &Aabb::centered_square(Point::new(-50.0, -50.0), 1.0));
        assert_eq!(empty, 0);
    }

    #[test]
    fn route_to_bad_tile_returns_no_path() {
        let (net, _) = network(3, 20.0);
        let bad = net.lattice.sites().find(|&s| !net.lattice.is_open(s));
        let good = net.lattice.sites().find(|&s| net.lattice.is_open(s));
        if let (Some(b), Some(g)) = (bad, good) {
            let (outcome, path) = net.route(g, b);
            assert!(!outcome.delivered);
            assert!(path.is_none());
            assert!(net.rep_of(b).is_none());
        }
    }

    #[test]
    fn validate_node_path_rejects_non_edges() {
        let (net, _) = network(4, 30.0);
        let members = net.members();
        assert!(
            net.validate_node_path(&[members[0]]),
            "singleton path is valid"
        );
        // Two arbitrary members are almost surely not adjacent.
        let (a, b) = (members[0], members[members.len() - 1]);
        if !net.graph.has_edge(a, b) {
            assert!(!net.validate_node_path(&[a, b]));
        }
    }

    #[test]
    fn adjacent_rep_path_requires_good_tiles() {
        let (net, _) = network(5, 20.0);
        let bad = net.lattice.sites().find(|&s| !net.lattice.is_open(s));
        if let Some(b) = bad {
            let nb = (b.0 + 1, b.1);
            if net.lattice.in_bounds(nb) {
                assert!(net.adjacent_rep_path(b, nb).is_none());
            }
        }
    }
}
