//! Construction parameters for both SENS variants.

use serde::{Deserialize, Serialize};

/// Which UDG tile-region geometry to use (DESIGN.md §2, defect D1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UdgGeometryMode {
    /// Disk-shaped relay regions satisfying closed-form all-pairs visibility
    /// constraints: *any* election yields the 3-hop path of Claim 2.1, and
    /// the site-percolation coupling is exact. The default.
    Strict,
    /// The paper's stated geometry (a = 4/3, `C0` radius ½) with relay
    /// regions read as the lens within distance 1 of both tile centres. Edges
    /// are not guaranteed for every election, so election is
    /// visibility-verified and cross-tile links are checked at connect time.
    Paper,
}

/// Parameters of `UDG-SENS(2, λ)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UdgSensParams {
    /// Tile side `a`.
    pub tile_side: f64,
    /// Radius of the representative region `C0`.
    pub r0: f64,
    /// Radius of each relay disk (strict mode only).
    pub relay_radius: f64,
    /// Distance of each relay-disk centre from the tile centre (strict mode
    /// only).
    pub relay_offset: f64,
    /// Radio range (1.0 throughout the paper).
    pub radius: f64,
    pub mode: UdgGeometryMode,
}

/// Violations of the strict-mode visibility constraints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamError {
    /// Relay disk leaves the tile: `d_e + r_e > a/2`.
    RelayOutsideTile,
    /// A representative might not reach a relay: `d_e + r_e + r_0 > radius`.
    RepRelayTooFar,
    /// Opposed relays of adjacent tiles might not reach each other:
    /// `(a − 2·d_e) + 2·r_e > radius`.
    RelayRelayTooFar,
    /// `C0` leaves the tile: `r_0 > a/2`.
    C0OutsideTile,
    /// A non-positive length parameter.
    NonPositive,
}

impl UdgSensParams {
    /// The corrected strict-mode geometry with the workspace default
    /// parameters (found by [`crate::optimize::optimize_udg_geometry`]; see
    /// EXPERIMENTS.md for the search):
    /// `a = 1.2, r_0 = 0.2, r_e = 0.2, d_e = 0.4`.
    pub fn strict_default() -> Self {
        UdgSensParams {
            tile_side: 1.2,
            r0: 0.2,
            relay_radius: 0.2,
            relay_offset: 0.4,
            radius: 1.0,
            mode: UdgGeometryMode::Strict,
        }
    }

    /// The paper's stated parameters: tile side 4/3, `C0` radius ½.
    pub fn paper() -> Self {
        UdgSensParams {
            tile_side: 4.0 / 3.0,
            r0: 0.5,
            // Unused in paper mode (relay regions are lenses), kept for
            // serialisation completeness.
            relay_radius: f64::NAN,
            relay_offset: f64::NAN,
            radius: 1.0,
            mode: UdgGeometryMode::Paper,
        }
    }

    /// Check the closed-form constraints (strict mode). Paper mode only
    /// checks positivity — by design it does not guarantee visibility.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !(self.tile_side > 0.0 && self.r0 > 0.0 && self.radius > 0.0) {
            return Err(ParamError::NonPositive);
        }
        if self.r0 > self.tile_side * 0.5 {
            return Err(ParamError::C0OutsideTile);
        }
        if self.mode == UdgGeometryMode::Paper {
            return Ok(());
        }
        let (a, re, de) = (self.tile_side, self.relay_radius, self.relay_offset);
        if !(re > 0.0 && de > 0.0) {
            return Err(ParamError::NonPositive);
        }
        if de + re > a * 0.5 + 1e-12 {
            return Err(ParamError::RelayOutsideTile);
        }
        if de + re + self.r0 > self.radius + 1e-12 {
            return Err(ParamError::RepRelayTooFar);
        }
        if (a - 2.0 * de) + 2.0 * re > self.radius + 1e-12 {
            return Err(ParamError::RelayRelayTooFar);
        }
        Ok(())
    }
}

/// Parameters of `NN-SENS(2, k)`.
///
/// The point-process density is irrelevant for the NN model (only relative
/// distances matter), so the construction is parameterised by the circle
/// radius `a` — tiles have side `10a` — and the neighbour count `k`. The
/// paper's numerical values are `a = 0.893`, `k = 188` at unit density.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NnSensParams {
    /// Radius of the five circles `C0, Cl, Cr, Ct, Cb`; tile side is `10a`.
    pub a: f64,
    /// Neighbour count of the base `NN(2, k)` graph.
    pub k: usize,
}

impl NnSensParams {
    /// The paper's stated parameters.
    pub fn paper() -> Self {
        NnSensParams { a: 0.893, k: 188 }
    }

    #[inline]
    pub fn tile_side(&self) -> f64 {
        10.0 * self.a
    }

    /// The goodness bound on points per tile (`k/2`).
    #[inline]
    pub fn max_points_per_tile(&self) -> usize {
        self.k / 2
    }

    pub fn validate(&self) -> Result<(), ParamError> {
        if self.a > 0.0 && self.a.is_finite() && self.k >= 2 {
            Ok(())
        } else {
            Err(ParamError::NonPositive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_default_is_valid() {
        assert_eq!(UdgSensParams::strict_default().validate(), Ok(()));
    }

    #[test]
    fn paper_params_are_valid_as_paper_mode() {
        assert_eq!(UdgSensParams::paper().validate(), Ok(()));
    }

    #[test]
    fn constraint_violations_are_detected() {
        let base = UdgSensParams::strict_default();

        let mut p = base;
        p.relay_offset = 0.55; // d_e + r_e = 0.75 > a/2 = 0.6
        assert_eq!(p.validate(), Err(ParamError::RelayOutsideTile));

        let mut p = base;
        p.r0 = 0.45; // d_e + r_e + r_0 = 1.05 > 1
        assert_eq!(p.validate(), Err(ParamError::RepRelayTooFar));

        let mut p = base;
        p.tile_side = 1.2;
        p.relay_offset = 0.25;
        p.relay_radius = 0.35;
        // containment: 0.25 + 0.35 = 0.6 ≤ 0.6 OK;
        // rep-relay: 0.25 + 0.35 + 0.2 = 0.8 ≤ 1 OK;
        // relay-relay: (1.2 − 0.5) + 0.7 = 1.4 > 1 → violation.
        assert_eq!(p.validate(), Err(ParamError::RelayRelayTooFar));

        let mut p = base;
        p.r0 = 0.7;
        assert_eq!(p.validate(), Err(ParamError::C0OutsideTile));

        let mut p = base;
        p.tile_side = -1.0;
        assert_eq!(p.validate(), Err(ParamError::NonPositive));
    }

    #[test]
    fn strict_constraints_imply_claim_21_edge_lengths() {
        // Worst-case rep–relay and relay–relay distances under the strict
        // constraints are within the radio range.
        let p = UdgSensParams::strict_default();
        let worst_rep_relay = p.relay_offset + p.relay_radius + p.r0;
        let worst_relay_relay = (p.tile_side - 2.0 * p.relay_offset) + 2.0 * p.relay_radius;
        assert!(worst_rep_relay <= p.radius + 1e-12);
        assert!(worst_relay_relay <= p.radius + 1e-12);
    }

    #[test]
    fn nn_paper_parameters() {
        let p = NnSensParams::paper();
        assert_eq!(p.validate(), Ok(()));
        assert!((p.tile_side() - 8.93).abs() < 1e-12);
        assert_eq!(p.max_points_per_tile(), 94);
    }

    #[test]
    fn nn_rejects_tiny_k() {
        assert!(NnSensParams { a: 1.0, k: 1 }.validate().is_err());
        assert!(NnSensParams { a: 0.0, k: 10 }.validate().is_err());
    }
}
