//! Stretch measurement on SENS networks — Theorem 3.2 (experiment EXP-T32).
//!
//! Theorem 3.2: for supercritical parameters there are constants `α, c` with
//! `P[d_SENS(x, y) > α·D(x, y)] < e^(−c·D(x, y))` — i.e. the stretch of the
//! subgraph is constant except on an exponentially rare tail. We measure
//! the full stretch distribution of representative pairs binned by distance.

use rand::RngExt;
use serde::Serialize;
use wsn_geom::hash::derive_seed;
use wsn_graph::stretch::{measure_pairs, StretchSample};
use wsn_pointproc::{rng_from_seed, PointSet};

use crate::subgraph::SensNetwork;

/// Uniformly sample up to `count` ordered pairs of distinct ids from a
/// candidate pool (coincident draws are dropped, so fewer than `count`
/// pairs may return). Shared by the representative sampler below and the
/// scenario harness's plain-topology samplers.
pub fn sample_id_pairs(ids: &[u32], count: usize, seed: u64) -> Vec<(u32, u32)> {
    if ids.len() < 2 {
        return Vec::new();
    }
    let mut rng = rng_from_seed(derive_seed(seed, 0xAB));
    (0..count)
        .filter_map(|_| {
            let a = ids[rng.random_range(0..ids.len())];
            let b = ids[rng.random_range(0..ids.len())];
            (a != b).then_some((a, b))
        })
        .collect()
}

/// Uniformly sample `count` distinct ordered pairs of representatives that
/// belong to the SENS core.
pub fn sample_rep_pairs(net: &SensNetwork, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let reps: Vec<u32> = net
        .reps
        .iter()
        .copied()
        .filter(|&r| r != u32::MAX && net.is_member(r))
        .collect();
    sample_id_pairs(&reps, count, seed)
}

/// Measure Euclidean-weighted stretch of the given pairs on the SENS graph.
pub fn measure_sens_stretch(
    net: &SensNetwork,
    points: &PointSet,
    pairs: &[(u32, u32)],
) -> Vec<StretchSample> {
    measure_pairs(&net.graph, |u| points.get(u), pairs)
}

/// Stretch statistics within one Euclidean-distance bin.
#[derive(Clone, Debug, Serialize)]
pub struct StretchBin {
    pub dist_lo: f64,
    pub dist_hi: f64,
    pub pairs: usize,
    pub mean_stretch: f64,
    pub max_stretch: f64,
    /// Empirical `P[stretch > alpha]` at the α used for the tail estimate.
    pub tail_prob: f64,
}

/// Bin samples by Euclidean distance and compute per-bin stretch stats and
/// the exceedance probability at `alpha`.
///
/// Theorem 3.2 predicts `tail_prob` decaying exponentially with distance
/// while `mean_stretch` stays flat.
pub fn binned_stretch(samples: &[StretchSample], edges: &[f64], alpha: f64) -> Vec<StretchBin> {
    assert!(edges.len() >= 2, "need at least one bin");
    let mut bins: Vec<StretchBin> = edges
        .windows(2)
        .map(|w| StretchBin {
            dist_lo: w[0],
            dist_hi: w[1],
            pairs: 0,
            mean_stretch: 0.0,
            max_stretch: 0.0,
            tail_prob: 0.0,
        })
        .collect();
    for s in samples {
        if !s.graph_dist.is_finite() {
            continue;
        }
        let Some(bin) = bins
            .iter_mut()
            .find(|b| s.euclid >= b.dist_lo && s.euclid < b.dist_hi)
        else {
            continue;
        };
        let st = s.stretch();
        bin.pairs += 1;
        bin.mean_stretch += st;
        bin.max_stretch = bin.max_stretch.max(st);
        if st > alpha {
            bin.tail_prob += 1.0;
        }
    }
    for b in &mut bins {
        if b.pairs > 0 {
            bin_finalize(b);
        }
    }
    bins
}

fn bin_finalize(b: &mut StretchBin) {
    b.mean_stretch /= b.pairs as f64;
    b.tail_prob /= b.pairs as f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UdgSensParams;
    use crate::tilegrid::TileGrid;
    use crate::udg::build_udg_sens;
    use wsn_pointproc::sample_poisson_window;

    fn network(seed: u64, side: f64, lambda: f64) -> (SensNetwork, PointSet) {
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed), lambda, &window);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        (net, pts)
    }

    #[test]
    fn sampled_pairs_are_core_reps() {
        let (net, _pts) = network(1, 18.0, 35.0);
        let pairs = sample_rep_pairs(&net, 50, 3);
        assert!(!pairs.is_empty());
        for (a, b) in pairs {
            assert_ne!(a, b);
            assert!(net.is_member(a) && net.is_member(b));
            assert!(net.roles[a as usize] & crate::subgraph::ROLE_REP != 0);
        }
    }

    #[test]
    fn core_pairs_have_finite_bounded_stretch() {
        let (net, pts) = network(2, 18.0, 35.0);
        let pairs = sample_rep_pairs(&net, 80, 5);
        let samples = measure_sens_stretch(&net, &pts, &pairs);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(
                s.graph_dist.is_finite(),
                "core reps must be connected ({}, {})",
                s.u,
                s.v
            );
            assert!(
                s.stretch() >= 1.0 - 1e-9,
                "stretch below 1: {}",
                s.stretch()
            );
            // Generous sanity bound: constant-stretch means small constants
            // at this density.
            assert!(s.stretch() < 25.0, "implausible stretch {}", s.stretch());
        }
    }

    #[test]
    fn mean_stretch_is_flat_across_distance() {
        let (net, pts) = network(3, 26.0, 35.0);
        let pairs = sample_rep_pairs(&net, 400, 7);
        let samples = measure_sens_stretch(&net, &pts, &pairs);
        let edges = [1.0, 5.0, 10.0, 20.0];
        let bins = binned_stretch(&samples, &edges, 6.0);
        let populated: Vec<&StretchBin> = bins.iter().filter(|b| b.pairs >= 10).collect();
        assert!(populated.len() >= 2, "need at least two populated bins");
        // Constant-stretch: means across distance bins within a factor ~2.
        let means: Vec<f64> = populated.iter().map(|b| b.mean_stretch).collect();
        let (lo, hi) = (
            means.iter().cloned().fold(f64::MAX, f64::min),
            means.iter().cloned().fold(0.0, f64::max),
        );
        assert!(hi / lo < 2.0, "means vary too much: {means:?}");
    }

    #[test]
    fn empty_network_yields_no_pairs() {
        let (net, _pts) = network(4, 12.0, 0.05);
        assert!(sample_rep_pairs(&net, 10, 1).is_empty());
    }

    #[test]
    fn binning_respects_edges() {
        let samples = vec![
            StretchSample {
                u: 0,
                v: 1,
                euclid: 1.5,
                graph_dist: 3.0,
                hops: 3,
            },
            StretchSample {
                u: 0,
                v: 2,
                euclid: 4.0,
                graph_dist: 4.4,
                hops: 4,
            },
        ];
        let bins = binned_stretch(&samples, &[1.0, 2.0, 5.0], 1.5);
        assert_eq!(bins[0].pairs, 1);
        assert_eq!(bins[1].pairs, 1);
        assert!((bins[0].mean_stretch - 2.0).abs() < 1e-12);
        assert_eq!(bins[0].tail_prob, 1.0); // stretch 2.0 > α = 1.5
        assert_eq!(bins[1].tail_prob, 0.0); // stretch 1.1 ≤ α
    }
}
