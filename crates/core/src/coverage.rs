//! Coverage measurement — Theorem 3.3 and Corollary 3.4 (experiments
//! EXP-T33 / EXP-C34).
//!
//! The paper's coverage guarantee: the probability that a square `B(ℓ)`
//! contains no point of the SENS network decays exponentially with `ℓ`, and
//! the decay sharpens as density grows. We estimate
//! `P[|B(ℓ) ∩ SENS| = 0]` by dropping boxes uniformly inside the covered
//! window and counting member hits with a spatial index.

use serde::Serialize;
use wsn_geom::{Aabb, Point};
use wsn_pointproc::{rng_from_seed, PointSet};
use wsn_spatial::GridIndex;

use crate::subgraph::SensNetwork;
use rand::RngExt;

/// Extract the member positions of a network as their own point set.
pub fn member_points(net: &SensNetwork, points: &PointSet) -> PointSet {
    points
        .iter_enumerated()
        .filter(|&(i, _)| net.core_mask[i as usize])
        .map(|(_, p)| p)
        .collect()
}

/// One point of an empty-box-probability curve.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CoveragePoint {
    pub ell: f64,
    pub p_empty: f64,
}

/// Estimate `P[B(ℓ) empty of SENS members]` for each `ℓ`, dropping
/// `samples` uniformly-placed boxes per value. Boxes are constrained to the
/// covered window so results are free of boundary truncation.
pub fn empty_box_curve(
    net: &SensNetwork,
    points: &PointSet,
    ells: &[f64],
    samples: usize,
    seed: u64,
) -> Vec<CoveragePoint> {
    let members = member_points(net, points);
    let window = net.grid.covered_area();
    let index = (!members.is_empty())
        .then(|| GridIndex::build(&members, 1.0f64.max(window.width() / 64.0)));
    let mut rng = rng_from_seed(seed);
    let mut out = Vec::with_capacity(ells.len());
    let mut buf = Vec::new();
    for &ell in ells {
        assert!(
            ell > 0.0 && ell <= window.width() && ell <= window.height(),
            "box of side {ell} does not fit the window"
        );
        let mut empty = 0usize;
        for _ in 0..samples {
            let cx = rng.random_range(window.min.x + ell * 0.5..=window.max.x - ell * 0.5);
            let cy = rng.random_range(window.min.y + ell * 0.5..=window.max.y - ell * 0.5);
            let b = Aabb::centered_square(Point::new(cx, cy), ell);
            let occupied = match &index {
                Some(idx) => {
                    idx.in_aabb(&b, &mut buf);
                    !buf.is_empty()
                }
                None => false,
            };
            if !occupied {
                empty += 1;
            }
        }
        out.push(CoveragePoint {
            ell,
            p_empty: empty as f64 / samples as f64,
        });
    }
    out
}

/// Fit `log P_empty ≈ c − rate·ℓ` by least squares over the points with
/// `P_empty > 0`; returns the decay rate (positive when decaying).
///
/// Theorem 3.3 predicts a positive rate that grows with λ.
pub fn exponential_decay_rate(curve: &[CoveragePoint]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = curve
        .iter()
        .filter(|c| c.p_empty > 0.0)
        .map(|c| (c.ell, c.p_empty.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some(-(n * sxy - sx * sy) / denom)
}

/// Smallest `ℓ` (by doubling + bisection over the measured curve support)
/// with estimated `P_empty < 1/n` — the Corollary 3.4 quantity `c·log n`.
pub fn ell_for_target(
    net: &SensNetwork,
    points: &PointSet,
    n_target: f64,
    samples: usize,
    seed: u64,
) -> Option<f64> {
    let window = net.grid.covered_area();
    let max_ell = window.width().min(window.height());
    let target = 1.0 / n_target;
    let mut lo = 0.25f64;
    let mut hi = lo;
    // Grow until the target is met (or the window is exhausted).
    loop {
        let p = empty_box_curve(net, points, &[hi], samples, seed)[0].p_empty;
        if p < target {
            break;
        }
        hi *= 2.0;
        if hi > max_ell {
            return None;
        }
        lo = hi * 0.5;
    }
    // Bisect to ~5% precision.
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        let p = empty_box_curve(net, points, &[mid], samples, seed)[0].p_empty;
        if p < target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UdgSensParams;
    use crate::tilegrid::TileGrid;
    use crate::udg::build_udg_sens;
    use wsn_pointproc::sample_poisson_window;

    fn dense_network(seed: u64, side: f64, lambda: f64) -> (SensNetwork, PointSet) {
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed), lambda, &window);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        (net, pts)
    }

    #[test]
    fn member_points_match_mask() {
        let (net, pts) = dense_network(1, 12.0, 35.0);
        let members = member_points(&net, &pts);
        assert_eq!(members.len(), net.core_mask.iter().filter(|&&b| b).count());
    }

    #[test]
    fn p_empty_is_monotone_decreasing_in_ell() {
        let (net, pts) = dense_network(2, 16.0, 35.0);
        let curve = empty_box_curve(&net, &pts, &[0.5, 1.5, 3.0, 6.0], 400, 7);
        for w in curve.windows(2) {
            assert!(
                w[0].p_empty >= w[1].p_empty,
                "{} < {}",
                w[0].p_empty,
                w[1].p_empty
            );
        }
        // Large boxes in a dense supercritical network are never empty.
        assert_eq!(curve.last().unwrap().p_empty, 0.0);
    }

    #[test]
    fn decay_rate_is_positive_for_supercritical_density() {
        let (net, pts) = dense_network(3, 16.0, 35.0);
        let curve = empty_box_curve(&net, &pts, &[0.4, 0.8, 1.2, 1.6, 2.0], 600, 9);
        let rate = exponential_decay_rate(&curve).expect("enough positive points");
        assert!(rate > 0.0, "rate = {rate}");
    }

    #[test]
    fn higher_density_decays_at_least_as_fast() {
        // Theorem 3.3's refinement: more density ⇒ sharper decay.
        let (net_lo, pts_lo) = dense_network(4, 16.0, 20.0);
        let (net_hi, pts_hi) = dense_network(4, 16.0, 45.0);
        let ells = [0.4, 0.8, 1.2, 1.6];
        let c_lo = empty_box_curve(&net_lo, &pts_lo, &ells, 600, 11);
        let c_hi = empty_box_curve(&net_hi, &pts_hi, &ells, 600, 11);
        // Compare pointwise emptiness (with slack for MC noise).
        for (lo, hi) in c_lo.iter().zip(c_hi.iter()) {
            assert!(
                hi.p_empty <= lo.p_empty + 0.05,
                "ℓ = {}: dense {} vs sparse {}",
                lo.ell,
                hi.p_empty,
                lo.p_empty
            );
        }
    }

    #[test]
    fn empty_network_has_p_empty_one() {
        // λ so small no tile is good → no members → every box empty.
        let (net, pts) = dense_network(5, 12.0, 0.05);
        assert_eq!(net.summary().core_size, 0);
        let curve = empty_box_curve(&net, &pts, &[1.0], 50, 3);
        assert_eq!(curve[0].p_empty, 1.0);
        assert!(ell_for_target(&net, &pts, 100.0, 50, 3).is_none());
    }

    #[test]
    fn ell_for_target_meets_the_target() {
        let (net, pts) = dense_network(6, 16.0, 35.0);
        let ell = ell_for_target(&net, &pts, 50.0, 400, 13).expect("dense network covers");
        let p = empty_box_curve(&net, &pts, &[ell * 1.3], 400, 14)[0].p_empty;
        assert!(p <= 0.06, "P_empty at 1.3·ℓ* = {p}");
    }

    #[test]
    fn decay_rate_handles_degenerate_curves() {
        assert_eq!(exponential_decay_rate(&[]), None);
        let flat = [CoveragePoint {
            ell: 1.0,
            p_empty: 0.0,
        }];
        assert_eq!(exponential_decay_rate(&flat), None);
    }
}
