//! Finite tile grids and point→tile assignment.
//!
//! Experiments realise the constructions inside a window `[0, W]²`; the
//! window is covered by `cols × rows` whole tiles (a leftover strip narrower
//! than one tile is ignored). Tile `(i, j)` of the grid corresponds to site
//! `(i, j)` of the coupled percolation lattice — this *is* the bijection `φ`
//! of the paper.

use wsn_geom::{Aabb, Point, TileIndex, Tiling};
use wsn_perc::Site;
use wsn_pointproc::PointSet;

/// A finite `cols × rows` grid of square tiles anchored at the origin.
#[derive(Clone, Debug)]
pub struct TileGrid {
    tiling: Tiling,
    cols: usize,
    rows: usize,
}

impl TileGrid {
    /// Grid of the largest `cols × rows` block of whole tiles of side
    /// `tile_side` fitting in `[0, window_side]²`. Panics if not even one
    /// tile fits.
    pub fn fit(window_side: f64, tile_side: f64) -> Self {
        let tiling = Tiling::new(tile_side);
        let n = tiling.tiles_across(window_side);
        assert!(n >= 1, "window smaller than one tile");
        TileGrid {
            tiling,
            cols: n,
            rows: n,
        }
    }

    /// Explicit dimensions.
    pub fn new(tile_side: f64, cols: usize, rows: usize) -> Self {
        assert!(cols >= 1 && rows >= 1);
        TileGrid {
            tiling: Tiling::new(tile_side),
            cols,
            rows,
        }
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn tile_count(&self) -> usize {
        self.cols * self.rows
    }

    #[inline]
    pub fn tiling(&self) -> &Tiling {
        &self.tiling
    }

    #[inline]
    pub fn tile_side(&self) -> f64 {
        self.tiling.side()
    }

    /// The region covered by whole tiles.
    pub fn covered_area(&self) -> Aabb {
        Aabb::from_coords(
            0.0,
            0.0,
            self.cols as f64 * self.tile_side(),
            self.rows as f64 * self.tile_side(),
        )
    }

    /// Grid (lattice) site of the tile containing `p`, if inside the grid.
    #[inline]
    pub fn site_of_point(&self, p: Point) -> Option<Site> {
        let t = self.tiling.tile_of(p);
        self.site_of_tile(t)
    }

    /// Convert an (unbounded) tile index to a grid site.
    #[inline]
    pub fn site_of_tile(&self, t: TileIndex) -> Option<Site> {
        if t.i >= 0 && t.j >= 0 && (t.i as usize) < self.cols && (t.j as usize) < self.rows {
            Some((t.i as usize, t.j as usize))
        } else {
            None
        }
    }

    #[inline]
    pub fn tile_of_site(&self, s: Site) -> TileIndex {
        TileIndex::new(s.0 as i64, s.1 as i64)
    }

    /// Linear index of a site (row-major).
    #[inline]
    pub fn linear(&self, s: Site) -> usize {
        s.1 * self.cols + s.0
    }

    #[inline]
    pub fn site_of_linear(&self, idx: usize) -> Site {
        (idx % self.cols, idx / self.cols)
    }

    /// Centre of a tile in R².
    #[inline]
    pub fn center(&self, s: Site) -> Point {
        self.tiling.tile_center(self.tile_of_site(s))
    }

    /// Position of `p` relative to the centre of tile `s`.
    #[inline]
    pub fn local(&self, s: Site, p: Point) -> Point {
        p - self.center(s)
    }

    /// All sites, row-major.
    pub fn sites(&self) -> impl Iterator<Item = Site> + '_ {
        (0..self.rows).flat_map(move |j| (0..self.cols).map(move |i| (i, j)))
    }
}

/// CSR-style assignment of point ids to tiles.
#[derive(Clone, Debug)]
pub struct TileAssignment {
    start: Vec<u32>,
    ids: Vec<u32>,
    /// Per point: linear tile index, or `u32::MAX` if outside the grid.
    pub tile_of_point: Vec<u32>,
}

impl TileAssignment {
    /// Assign every point of `points` to its tile (points outside the grid
    /// area are left unassigned).
    pub fn build(grid: &TileGrid, points: &PointSet) -> Self {
        let n_tiles = grid.tile_count();
        let mut counts = vec![0u32; n_tiles + 1];
        let mut tile_of_point = vec![u32::MAX; points.len()];
        for (id, p) in points.iter_enumerated() {
            if let Some(s) = grid.site_of_point(p) {
                let lin = grid.linear(s);
                tile_of_point[id as usize] = lin as u32;
                counts[lin + 1] += 1;
            }
        }
        for t in 0..n_tiles {
            counts[t + 1] += counts[t];
        }
        let start = counts.clone();
        let mut cursor = counts;
        let total = start[n_tiles] as usize;
        let mut ids = vec![0u32; total];
        for (id, _) in points.iter_enumerated() {
            let lin = tile_of_point[id as usize];
            if lin != u32::MAX {
                ids[cursor[lin as usize] as usize] = id;
                cursor[lin as usize] += 1;
            }
        }
        TileAssignment {
            start,
            ids,
            tile_of_point,
        }
    }

    /// Point ids inside tile `lin` (ascending).
    #[inline]
    pub fn points_in(&self, lin: usize) -> &[u32] {
        &self.ids[self.start[lin] as usize..self.start[lin + 1] as usize]
    }

    /// Number of points assigned to any tile.
    #[inline]
    pub fn assigned_count(&self) -> usize {
        self.ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_ignores_partial_tiles() {
        let g = TileGrid::fit(10.0, 3.0);
        assert_eq!(g.cols(), 3);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.covered_area(), Aabb::from_coords(0.0, 0.0, 9.0, 9.0));
    }

    #[test]
    fn site_mapping_roundtrips() {
        let g = TileGrid::new(2.0, 4, 3);
        for s in g.sites() {
            assert_eq!(g.site_of_linear(g.linear(s)), s);
            assert_eq!(g.site_of_tile(g.tile_of_site(s)), Some(s));
            assert_eq!(g.site_of_point(g.center(s)), Some(s));
        }
        assert_eq!(g.tile_count(), 12);
    }

    #[test]
    fn out_of_grid_points_are_unassigned() {
        let g = TileGrid::new(1.0, 2, 2);
        assert_eq!(g.site_of_point(Point::new(-0.1, 0.5)), None);
        assert_eq!(g.site_of_point(Point::new(2.5, 0.5)), None);
        assert_eq!(g.site_of_point(Point::new(1.5, 1.5)), Some((1, 1)));
    }

    #[test]
    fn local_coordinates_are_tile_centred() {
        let g = TileGrid::new(2.0, 3, 3);
        let p = Point::new(3.5, 1.0);
        let s = g.site_of_point(p).unwrap();
        assert_eq!(s, (1, 0));
        let local = g.local(s, p);
        assert!(local.dist(Point::new(0.5, 0.0)) < 1e-12);
    }

    #[test]
    fn assignment_partitions_inside_points() {
        let g = TileGrid::new(1.0, 3, 3);
        let pts: PointSet = vec![
            Point::new(0.5, 0.5), // (0,0)
            Point::new(1.5, 0.5), // (1,0)
            Point::new(0.6, 0.4), // (0,0)
            Point::new(2.9, 2.9), // (2,2)
            Point::new(5.0, 5.0), // outside
        ]
        .into_iter()
        .collect();
        let asg = TileAssignment::build(&g, &pts);
        assert_eq!(asg.assigned_count(), 4);
        assert_eq!(asg.points_in(g.linear((0, 0))), &[0, 2]);
        assert_eq!(asg.points_in(g.linear((1, 0))), &[1]);
        assert_eq!(asg.points_in(g.linear((2, 2))), &[3]);
        assert_eq!(asg.tile_of_point[4], u32::MAX);
        // Every interior tile slice is consistent with tile_of_point.
        for lin in 0..g.tile_count() {
            for &id in asg.points_in(lin) {
                assert_eq!(asg.tile_of_point[id as usize], lin as u32);
            }
        }
    }

    #[test]
    fn empty_point_set() {
        let g = TileGrid::new(1.0, 2, 2);
        let asg = TileAssignment::build(&g, &PointSet::new());
        assert_eq!(asg.assigned_count(), 0);
        for lin in 0..g.tile_count() {
            assert!(asg.points_in(lin).is_empty());
        }
    }
}
