//! SVG renderings of the paper's geometry figures (Figures 1–6 and 8),
//! regenerated from live constructions rather than drawn by hand.
//!
//! The `figures` example writes these to disk; tests only check structure.

use wsn_geom::svg::SvgCanvas;
use wsn_geom::tile::Dir;
use wsn_geom::{Aabb, Point};
use wsn_pointproc::PointSet;

use crate::nn::NnTileGeometry;
use crate::subgraph::{SensNetwork, ROLE_REP};
use crate::udg::UdgTileGeometry;

const PX_WIDTH: f64 = 900.0;

/// Figure 1: a portion of the tiling with representatives, relays and
/// unconnected points.
pub fn render_tiling(net: &SensNetwork, points: &PointSet) -> String {
    let window = net.grid.covered_area();
    let mut c = SvgCanvas::new(window.inflate(0.5), PX_WIDTH);
    for s in net.grid.sites() {
        let bb = net.grid.tiling().tile_aabb(net.grid.tile_of_site(s));
        let fill = if net.lattice.is_open(s) {
            "#eef7ee"
        } else {
            "#fbeeee"
        };
        c.rect(&bb, "#999", fill, 0.6);
    }
    for (i, p) in points.iter_enumerated() {
        let role = net.roles[i as usize];
        if role & ROLE_REP != 0 {
            c.dot(p, 4.0, "#111");
        } else if role != 0 {
            c.dot(p, 3.0, "#c33");
        } else {
            c.dot(p, 1.3, "#bbb");
        }
    }
    c.finish()
}

/// Figure 2: the coupled portion of Z² (open sites and open edges).
pub fn render_lattice(net: &SensNetwork) -> String {
    let lat = &net.lattice;
    let view = Aabb::from_coords(-1.0, -1.0, lat.cols() as f64, lat.rows() as f64);
    let mut c = SvgCanvas::new(view, PX_WIDTH * 0.6);
    for s in lat.sites() {
        let p = Point::new(s.0 as f64, s.1 as f64);
        if lat.is_open(s) {
            for nb in lat.neighbors(s) {
                if lat.is_open(nb) && (nb.0 > s.0 || nb.1 > s.1) {
                    c.line(p, Point::new(nb.0 as f64, nb.1 as f64), "#333", 1.2);
                }
            }
            c.dot(p, 4.0, "#111");
        } else {
            c.dot(p, 2.0, "#ddd");
        }
    }
    c.finish()
}

/// Figure 3: a UDG-SENS tile with its five regions.
pub fn render_udg_tile(geom: &UdgTileGeometry) -> String {
    let a = geom.params().tile_side;
    let half = a * 0.5;
    let view = Aabb::centered_square(Point::ORIGIN, a * 1.3);
    let mut c = SvgCanvas::new(view, PX_WIDTH * 0.7);
    c.rect(
        &Aabb::centered_square(Point::ORIGIN, a),
        "#333",
        "none",
        1.5,
    );
    c.circle(Point::ORIGIN, geom.params().r0, "#06c", "#e6f0ff", 1.5);
    c.text(Point::new(0.02 * a, 0.02 * a), 14.0, "C0");
    for d in Dir::ALL {
        let label_at = d.unit_vec() * (half * 0.72);
        let region =
            wsn_geom::region::PredicateRegion::new(Aabb::centered_square(Point::ORIGIN, a), |p| {
                geom.relay_contains(d, p)
            });
        c.region_stipple(&region, 80, "#c86");
        let name = match d {
            Dir::Right => "Er",
            Dir::Left => "El",
            Dir::Top => "Et",
            Dir::Bottom => "Eb",
        };
        c.text(label_at, 13.0, name);
    }
    c.finish()
}

/// Figure 5: an NN-SENS tile with its nine regions.
pub fn render_nn_tile(geom: &NnTileGeometry) -> String {
    let a = geom.params().a;
    let side = 10.0 * a;
    let view = Aabb::centered_square(Point::ORIGIN, side * 1.15);
    let mut c = SvgCanvas::new(view, PX_WIDTH * 0.7);
    c.rect(
        &Aabb::centered_square(Point::ORIGIN, side),
        "#333",
        "none",
        1.5,
    );
    c.circle(Point::ORIGIN, a, "#06c", "#e6f0ff", 1.5);
    c.text(Point::new(0.0, 0.0), 13.0, "C0");
    for d in Dir::ALL {
        let cd = geom.c_disk(d);
        c.circle(cd.center, cd.radius, "#063", "#e6ffe6", 1.5);
        let region = wsn_geom::region::PredicateRegion::new(
            Aabb::centered_square(d.unit_vec() * (2.0 * a), 4.0 * a),
            |p| geom.e_region_contains(d, p),
        );
        c.region_stipple(&region, 60, "#c86");
    }
    c.finish()
}

/// Figures 4 / 6: the relay path between the representatives of two
/// adjacent good tiles. `None` when the pair is not adjacent-good.
pub fn render_adjacent_path(
    net: &SensNetwork,
    points: &PointSet,
    a: wsn_perc::Site,
    b: wsn_perc::Site,
) -> Option<String> {
    let path = net.adjacent_rep_path(a, b)?;
    let (ta, tb) = (
        net.grid.tiling().tile_aabb(net.grid.tile_of_site(a)),
        net.grid.tiling().tile_aabb(net.grid.tile_of_site(b)),
    );
    let view = Aabb::from_coords(
        ta.min.x.min(tb.min.x),
        ta.min.y.min(tb.min.y),
        ta.max.x.max(tb.max.x),
        ta.max.y.max(tb.max.y),
    )
    .inflate(0.3);
    let mut c = SvgCanvas::new(view, PX_WIDTH * 0.8);
    c.rect(&ta, "#999", "none", 1.0);
    c.rect(&tb, "#999", "none", 1.0);
    for w in path.windows(2) {
        c.line(points.get(w[0]), points.get(w[1]), "#06c", 2.0);
    }
    for (idx, &u) in path.iter().enumerate() {
        let fill = if idx == 0 || idx == path.len() - 1 {
            "#111"
        } else {
            "#c33"
        };
        c.dot(points.get(u), 4.0, fill);
    }
    Some(c.finish())
}

/// Figure 8: a routed packet's node path over the tiling (good tiles
/// shaded). `None` when undeliverable.
pub fn render_route(
    net: &SensNetwork,
    points: &PointSet,
    src: wsn_perc::Site,
    dst: wsn_perc::Site,
) -> Option<String> {
    let (_, node_path) = net.route(src, dst);
    let path = node_path?;
    let window = net.grid.covered_area();
    let mut c = SvgCanvas::new(window.inflate(0.5), PX_WIDTH);
    for s in net.grid.sites() {
        let bb = net.grid.tiling().tile_aabb(net.grid.tile_of_site(s));
        let fill = if net.lattice.is_open(s) {
            "#eef7ee"
        } else {
            "#f3d9d9"
        };
        c.rect(&bb, "#aaa", fill, 0.5);
    }
    for w in path.windows(2) {
        c.line(points.get(w[0]), points.get(w[1]), "#06c", 2.2);
    }
    for &u in &path {
        c.dot(points.get(u), 3.0, "#c33");
    }
    c.dot(points.get(*path.first()?), 5.0, "#111");
    c.dot(points.get(*path.last()?), 5.0, "#111");
    Some(c.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::UdgSensParams;
    use crate::tilegrid::TileGrid;
    use crate::udg::build_udg_sens;
    use wsn_pointproc::{rng_from_seed, sample_poisson_window};

    fn network() -> (SensNetwork, PointSet) {
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(10.0, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(88), 35.0, &window);
        (build_udg_sens(&pts, params, grid).unwrap(), pts)
    }

    #[test]
    fn tiling_figure_is_wellformed() {
        let (net, pts) = network();
        let svg = render_tiling(&net, &pts);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("<rect"));
        assert!(svg.matches("<circle").count() >= pts.len());
    }

    #[test]
    fn lattice_figure_shows_open_sites() {
        let (net, _) = network();
        let svg = render_lattice(&net);
        assert!(
            svg.contains("<line"),
            "supercritical lattice must have open edges"
        );
    }

    #[test]
    fn tile_figures_render_regions() {
        let geom = UdgTileGeometry::new(UdgSensParams::strict_default()).unwrap();
        let svg = render_udg_tile(&geom);
        assert!(svg.contains("C0"));
        assert!(svg.contains("Er"));

        let nn = NnTileGeometry::new(crate::params::NnSensParams { a: 1.0, k: 100 }).unwrap();
        let svg = render_nn_tile(&nn);
        assert!(svg.contains("C0"));
        assert!(svg.matches("<circle").count() > 100, "stipple + disks");
    }

    #[test]
    fn path_and_route_figures() {
        let (net, pts) = network();
        // Find an adjacent good pair.
        let mut pair = None;
        'outer: for s in net.lattice.sites() {
            if net.lattice.is_open(s) {
                let r = (s.0 + 1, s.1);
                if net.lattice.in_bounds(r) && net.lattice.is_open(r) {
                    pair = Some((s, r));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("λ = 10 must produce adjacent good tiles");
        let svg = render_adjacent_path(&net, &pts, a, b).unwrap();
        assert!(svg.contains("<line"));
        let svg = render_route(&net, &pts, a, b).unwrap();
        assert!(svg.contains("<line"));
    }
}
