//! The `NN-SENS(2, k)` construction (paper §2.2).
//!
//! Tiles of side `10a` carry nine regions: five disks of radius `a` — `C0`
//! at the centre and `Cl, Cr, Ct, Cb` at distance `4a` along the axes — and
//! four loci `El, Er, Et, Eb`. The paper defines `Er` as the set of points
//! contained in **every** largest circle that is centred at a point of
//! `C0 ∪ Cr` and stays inside the two tiles `t ∪ t_r`.
//!
//! A tile is *good* when it holds at most `k/2` points and all nine regions
//! are occupied. Claim 2.3 then gives a 5-edge path between the
//! representatives of adjacent good tiles:
//! `rep(t) → x_r(E_r) → y_r(C_r) → y_l'(C_l(t_r)) → x_l'(E_l(t_r)) → rep(t_r)`,
//! every edge of which provably exists in `NN(2, k)` — the builder verifies
//! this against the actual base graph and counts violations (expected 0).
//!
//! ## Region membership is certified, not approximate
//!
//! Membership in `E_r` requires `d(x, p) ≤ clearance(p)` for all `p` in two
//! disks, where `clearance(p)` is the distance from `p` to the boundary of
//! the `t ∪ t_r` rectangle. Both `clearance` and `−d(x, ·)` are concave in
//! `p`, so the minimum over each disk is attained on its boundary circle;
//! we precompute `M` boundary constraints per disk and accept only when all
//! clear the Lipschitz gap `2a·π/M`. Accepted points therefore *provably*
//! satisfy the defining inequality (the region is shrunk by an O(a/M)
//! sliver, never grown). `E_r` is an intersection of disks, hence convex.

use wsn_geom::tile::Dir;
use wsn_geom::{Disk, Point};
use wsn_graph::{Csr, EdgeList};
use wsn_perc::Lattice;
use wsn_pointproc::{PointOrder, PointSet};

use crate::params::{NnSensParams, ParamError};
use crate::subgraph::{relay_bit, SensNetwork, ROLE_REP};
use crate::tilegrid::{TileAssignment, TileGrid};

/// Number of boundary samples per disk in the certified membership test.
const E_REGION_SAMPLES: usize = 192;

/// Role bit for the outer relay (`C_d` disk) in direction `d`. The inner
/// relays (`E_d`) use [`relay_bit`]; outer bits live in the high nibble.
#[inline]
pub fn outer_relay_bit(d: Dir) -> u16 {
    0x20 << d.index()
}

/// Region tests for an NN-SENS tile, in tile-local coordinates. The
/// canonical (rightward) `E`-region constraint set is precomputed at
/// construction so that classifying a point costs only distance
/// comparisons.
#[derive(Clone, Debug)]
pub struct NnTileGeometry {
    params: NnSensParams,
    /// Canonical-frame constraints `(p_i, clearance(p_i))`: membership
    /// requires `d(x, p_i) ≤ clearance_i − margin` for all `i`.
    constraints: Vec<(Point, f64)>,
    margin: f64,
    /// Cheap necessary conditions checked first.
    witnesses: [(Point, f64); 4],
}

impl NnTileGeometry {
    pub fn new(params: NnSensParams) -> Result<Self, ParamError> {
        params.validate()?;
        let a = params.a;
        let mut constraints = Vec::with_capacity(2 * E_REGION_SAMPLES);
        for center in [Point::ORIGIN, Point::new(4.0 * a, 0.0)] {
            for s in 0..E_REGION_SAMPLES {
                let theta = std::f64::consts::TAU * s as f64 / E_REGION_SAMPLES as f64;
                let p = center + Point::unit(theta) * a;
                constraints.push((p, Self::clearance(a, p)));
            }
        }
        let witness = |p: Point| (p, Self::clearance(a, p));
        Ok(NnTileGeometry {
            params,
            constraints,
            margin: 2.0 * a * std::f64::consts::PI / E_REGION_SAMPLES as f64,
            witnesses: [
                witness(Point::new(0.0, a)),
                witness(Point::new(0.0, -a)),
                witness(Point::new(4.0 * a, a)),
                witness(Point::new(4.0 * a, -a)),
            ],
        })
    }

    #[inline]
    pub fn params(&self) -> &NnSensParams {
        &self.params
    }

    /// `C0` in local coordinates.
    #[inline]
    pub fn c0(&self) -> Disk {
        Disk::new(Point::ORIGIN, self.params.a)
    }

    /// The outer relay disk `C_d`.
    #[inline]
    pub fn c_disk(&self, d: Dir) -> Disk {
        Disk::new(d.unit_vec() * (4.0 * self.params.a), self.params.a)
    }

    /// Map a local point into the canonical frame where `d` becomes +x.
    /// All four maps are isometries fixing the tile, so the canonical `E_r`
    /// test serves every direction.
    #[inline]
    fn to_canonical(d: Dir, p: Point) -> Point {
        match d {
            Dir::Right => p,
            Dir::Left => Point::new(-p.x, p.y),
            Dir::Top => Point::new(p.y, p.x),
            Dir::Bottom => Point::new(-p.y, p.x),
        }
    }

    /// Clearance of `q` inside the canonical two-tile rectangle
    /// `[−5a, 15a] × [−5a, 5a]` (radius of the largest inscribed circle
    /// centred at `q`).
    #[inline]
    fn clearance(a: f64, q: Point) -> f64 {
        (q.x + 5.0 * a).min(15.0 * a - q.x).min(5.0 * a - q.y.abs())
    }

    /// Certified membership in the canonical `E_r` region.
    pub fn canonical_e_contains(&self, x: Point) -> bool {
        // Necessary conditions (no margin needed: these are true boundary
        // points, so failing them certifies exclusion).
        for &(w, c) in &self.witnesses {
            if x.dist(w) > c {
                return false;
            }
        }
        let m2 = self.margin;
        self.constraints.iter().all(|&(p, c)| x.dist(p) <= c - m2)
    }

    /// Membership in the inner relay region `E_d` (local coordinates).
    #[inline]
    pub fn e_region_contains(&self, d: Dir, p: Point) -> bool {
        self.canonical_e_contains(Self::to_canonical(d, p))
    }

    /// Bitmask of region memberships: [`ROLE_REP`] for `C0`, [`relay_bit`]
    /// for `E_d`, [`outer_relay_bit`] for `C_d`.
    pub fn classify(&self, p: Point) -> u16 {
        let mut mask = 0u16;
        if self.c0().contains(p) {
            mask |= ROLE_REP;
        }
        for d in Dir::ALL {
            if self.c_disk(d).contains(p) {
                mask |= outer_relay_bit(d);
            } else if self.e_region_contains(d, p) {
                mask |= relay_bit(d);
            }
        }
        mask
    }
}

/// Per-tile election: representative plus inner (`E_d`) and outer (`C_d`)
/// relays for each direction.
#[derive(Clone, Debug, Default)]
pub(crate) struct NnElection {
    pub rep: Option<u32>,
    pub inner: [Option<u32>; 4],
    pub outer: [Option<u32>; 4],
    pub count_ok: bool,
}

impl NnElection {
    pub fn good(&self) -> bool {
        self.count_ok
            && self.rep.is_some()
            && self.inner.iter().all(Option::is_some)
            && self.outer.iter().all(Option::is_some)
    }
}

/// Per-region candidate lists of one tile, in the id order of the scan.
/// Collect/choose split mirrors `udg.rs`: collect is a pure coordinate scan
/// (cache-linear over a Morton-ordered copy), [`Self::remap_and_sort`]
/// restores original-id ascending order, and choose takes the head of each
/// list — exactly the first-match the deployment-order scan would elect.
#[derive(Clone, Debug, Default)]
struct NnCandidates {
    count_ok: bool,
    c0: Vec<u32>,
    inner: [Vec<u32>; 4],
    outer: [Vec<u32>; 4],
}

impl NnCandidates {
    fn remap_and_sort(&mut self, to_orig: &[u32]) {
        for list in std::iter::once(&mut self.c0)
            .chain(self.inner.iter_mut())
            .chain(self.outer.iter_mut())
        {
            for id in list.iter_mut() {
                *id = to_orig[*id as usize];
            }
            list.sort_unstable();
        }
    }
}

/// Scan one tile's points and classify them into candidate lists. Ids keep
/// the order of `ids` (ascending, per [`TileAssignment::build`]). Overfull
/// tiles short-circuit: the tile is bad regardless of its regions.
fn collect(
    geom: &NnTileGeometry,
    points: &PointSet,
    grid: &TileGrid,
    site: wsn_perc::Site,
    ids: &[u32],
) -> NnCandidates {
    let mut cands = NnCandidates {
        count_ok: ids.len() <= geom.params.max_points_per_tile(),
        ..Default::default()
    };
    if !cands.count_ok {
        return cands;
    }
    for &id in ids {
        let mask = geom.classify(grid.local(site, points.get(id)));
        if mask == 0 {
            continue;
        }
        if mask & ROLE_REP != 0 {
            cands.c0.push(id);
        }
        for d in Dir::ALL {
            if mask & relay_bit(d) != 0 {
                cands.inner[d.index()].push(id);
            }
            if mask & outer_relay_bit(d) != 0 {
                cands.outer[d.index()].push(id);
            }
        }
    }
    cands
}

/// The id-priority decision: lowest id per region.
fn choose(cands: &NnCandidates) -> NnElection {
    let first = |l: &Vec<u32>| l.first().copied();
    NnElection {
        count_ok: cands.count_ok,
        rep: first(&cands.c0),
        inner: [
            first(&cands.inner[0]),
            first(&cands.inner[1]),
            first(&cands.inner[2]),
            first(&cands.inner[3]),
        ],
        outer: [
            first(&cands.outer[0]),
            first(&cands.outer[1]),
            first(&cands.outer[2]),
            first(&cands.outer[3]),
        ],
    }
}

fn elect(
    geom: &NnTileGeometry,
    points: &PointSet,
    grid: &TileGrid,
    site: wsn_perc::Site,
    ids: &[u32],
) -> NnElection {
    choose(&collect(geom, points, grid, site, ids))
}

/// Build `NN-SENS` over `points` given the base `NN(2, k)` graph (from
/// [`wsn_rgg::build_knn`] with the same `k`).
///
/// Every link required by Claim 2.3 is checked against `base`; absences are
/// counted in [`SensNetwork::missing_links`] — the theory (and our tests)
/// say this is always 0.
pub fn build_nn_sens(
    points: &PointSet,
    base: &Csr,
    params: NnSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    let geom = NnTileGeometry::new(params)?;
    assert_eq!(base.n(), points.len(), "base graph / point set mismatch");
    let assignment = TileAssignment::build(&grid, points);
    let n_tiles = grid.tile_count();

    let mut elections: Vec<NnElection> = Vec::with_capacity(n_tiles);
    for lin in 0..n_tiles {
        let site = grid.site_of_linear(lin);
        elections.push(elect(&geom, points, &grid, site, assignment.points_in(lin)));
    }

    Ok(assemble_nn_sens(points, base, grid, assignment, &elections))
}

/// Tile-sharded, rayon-parallel `NN-SENS`: elections (the expensive
/// certified region tests) fan out by tile row, the link pass stitches the
/// collected elections. Identical output to [`build_nn_sens`] at any
/// thread count. The sharded base graph comes from
/// [`wsn_rgg::build_knn_sharded`], which is edge-identical to the
/// monolithic `build_knn`.
pub fn build_nn_sens_parallel(
    points: &PointSet,
    base: &Csr,
    params: NnSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    use rayon::prelude::*;
    let geom = NnTileGeometry::new(params)?;
    assert_eq!(base.n(), points.len(), "base graph / point set mismatch");
    let assignment = TileAssignment::build(&grid, points);

    let elections: Vec<NnElection> = (0..grid.rows())
        .into_par_iter()
        .flat_map_iter(|j| {
            let row: Vec<NnElection> = (0..grid.cols())
                .map(|i| {
                    let lin = grid.linear((i, j));
                    elect(&geom, points, &grid, (i, j), assignment.points_in(lin))
                })
                .collect();
            row
        })
        .collect();

    Ok(assemble_nn_sens(points, base, grid, assignment, &elections))
}

/// Morton-ordered `NN-SENS`: elections scan the spatially sorted copy held
/// by `order` (cache-linear classify passes), candidates are remapped to
/// original deployment ids before the lowest-id choice, and the network —
/// including every Claim 2.3 check against `base` — is assembled over the
/// original `points`. Byte-identical to [`build_nn_sens`]. `base` is in
/// original-id space, exactly as for the other builders.
pub fn build_nn_sens_ordered(
    points: &PointSet,
    order: &PointOrder,
    base: &Csr,
    params: NnSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    use rayon::prelude::*;
    let geom = NnTileGeometry::new(params)?;
    assert_eq!(base.n(), points.len(), "base graph / point set mismatch");
    assert_eq!(order.len(), points.len(), "order / point set mismatch");
    let rank_assignment = TileAssignment::build(&grid, order.points());

    let elections: Vec<NnElection> = (0..grid.rows())
        .into_par_iter()
        .flat_map_iter(|j| {
            let row: Vec<NnElection> = (0..grid.cols())
                .map(|i| {
                    let lin = grid.linear((i, j));
                    let mut cands = collect(
                        &geom,
                        order.points(),
                        &grid,
                        (i, j),
                        rank_assignment.points_in(lin),
                    );
                    cands.remap_and_sort(order.to_orig());
                    choose(&cands)
                })
                .collect();
            row
        })
        .collect();

    let assignment = TileAssignment::build(&grid, points);
    Ok(assemble_nn_sens(points, base, grid, assignment, &elections))
}

/// The serial stitch shared by both builders: lattice coupling, Claim 2.3
/// link realisation (checked against the base graph), network assembly.
fn assemble_nn_sens(
    points: &PointSet,
    base: &Csr,
    grid: TileGrid,
    assignment: TileAssignment,
    elections: &[NnElection],
) -> SensNetwork {
    let n_tiles = grid.tile_count();
    let lattice = Lattice::from_fn(grid.cols(), grid.rows(), |i, j| {
        elections[grid.linear((i, j))].good()
    });

    let mut roles = vec![0u16; points.len()];
    let mut reps = vec![u32::MAX; n_tiles];
    let mut el = EdgeList::new(points.len());
    let mut missing = 0usize;

    let add_checked = |el: &mut EdgeList, u: u32, v: u32, missing: &mut usize| {
        if u == v {
            return;
        }
        if base.has_edge(u, v) {
            el.add(u, v);
        } else {
            *missing += 1;
        }
    };

    for lin in 0..n_tiles {
        let e = &elections[lin];
        if !e.good() {
            continue;
        }
        reps[lin] = e.rep.unwrap();
        roles[e.rep.unwrap() as usize] |= ROLE_REP;
        let site = grid.site_of_linear(lin);
        let tile = grid.tile_of_site(site);
        for d in Dir::ALL {
            // Links toward `d` are required (and guaranteed) only when the
            // `d`-neighbour exists and is good.
            let Some(nb_site) = grid.site_of_tile(d.neighbor_of(tile)) else {
                continue;
            };
            let nb = &elections[grid.linear(nb_site)];
            if !nb.good() {
                continue;
            }
            let rep = e.rep.unwrap();
            let x = e.inner[d.index()].unwrap();
            let y = e.outer[d.index()].unwrap();
            roles[x as usize] |= relay_bit(d);
            roles[y as usize] |= outer_relay_bit(d);
            add_checked(&mut el, rep, x, &mut missing);
            add_checked(&mut el, x, y, &mut missing);
            // Cross edge handled once per pair (Right/Top owner).
            if matches!(d, Dir::Right | Dir::Top) {
                let y_theirs = nb.outer[d.opposite().index()].unwrap();
                add_checked(&mut el, y, y_theirs, &mut missing);
            }
        }
    }

    debug_assert_eq!(missing, 0, "Claim 2.3 edge missing from NN base graph");

    let graph = Csr::from_edge_list(el);
    SensNetwork::assemble(
        grid,
        lattice,
        graph,
        roles,
        assignment.tile_of_point,
        reps,
        missing,
    )
}

/// One tile-goodness sample at unit density (used by the threshold
/// experiments): whether the nine regions were occupied, and the point
/// count. Goodness for a given `k` is `regions_ok && count ≤ k/2`.
#[derive(Clone, Copy, Debug)]
pub struct NnTileSample {
    pub regions_ok: bool,
    pub count: usize,
}

/// Classify a fresh Poisson(λ = 1) tile of side `10a`. `geom` must be built
/// with the matching `a` (its `k` is irrelevant here).
pub fn sample_nn_tile<R: rand::Rng>(geom: &NnTileGeometry, rng: &mut R) -> NnTileSample {
    let a = geom.params().a;
    let side = 10.0 * a;
    let tile = wsn_geom::Aabb::centered_square(Point::ORIGIN, side);
    let pts = wsn_pointproc::sample_poisson_window(rng, 1.0, &tile);
    let mut have = 0u16; // bit 0: C0; 1..=4: C_d; 5..=8: E_d
    let all: u16 = 0x1FF;
    for p in pts.iter() {
        if geom.c0().contains(p) {
            have |= 1;
        }
        for d in Dir::ALL {
            if geom.c_disk(d).contains(p) {
                have |= 2 << d.index();
            } else if have & (0x20 << d.index()) == 0 && geom.e_region_contains(d, p) {
                have |= 0x20 << d.index();
            }
        }
        if have == all {
            break;
        }
    }
    NnTileSample {
        regions_ok: have == all,
        count: pts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_rgg::build_knn;

    fn geom(a: f64) -> NnTileGeometry {
        NnTileGeometry::new(NnSensParams { a, k: 100 }).unwrap()
    }

    #[test]
    fn canonical_e_region_contains_expected_points() {
        let g = geom(1.0);
        // Midway between C0 and Cr.
        assert!(g.canonical_e_contains(Point::new(2.0, 0.0)));
        // The tile centre is excluded (witness p = (4a, a) has clearance 4a
        // but distance √17·a ≈ 4.12a).
        assert!(!g.canonical_e_contains(Point::ORIGIN));
        // Far corner of the tile is excluded.
        assert!(!g.canonical_e_contains(Point::new(4.9, 4.9)));
        // The centre of Cr is excluded (too far from the far side of C0).
        assert!(!g.canonical_e_contains(Point::new(4.0, 0.0)));
    }

    #[test]
    fn accepted_points_provably_satisfy_the_inequality() {
        // Dense re-check of the defining inequality at ~5× the sampling used
        // by the certifier, for a grid of accepted points.
        let a = 0.893;
        let g = geom(a);
        let mut accepted = 0;
        for i in 0..40 {
            for j in 0..40 {
                let x = Point::new(
                    (i as f64 / 39.0) * 4.0 * a,
                    (j as f64 / 39.0 - 0.5) * 2.0 * a,
                );
                if !g.canonical_e_contains(x) {
                    continue;
                }
                accepted += 1;
                for center in [Point::ORIGIN, Point::new(4.0 * a, 0.0)] {
                    for s in 0..1024 {
                        let theta = std::f64::consts::TAU * s as f64 / 1024.0;
                        let p = center + Point::unit(theta) * a;
                        assert!(
                            NnTileGeometry::clearance(a, p) - x.dist(p) >= 0.0,
                            "accepted point {x:?} violates inequality at θ = {theta}"
                        );
                    }
                }
            }
        }
        assert!(accepted > 10, "the region should not be (near-)empty");
    }

    #[test]
    fn e_region_has_positive_area_at_paper_scale() {
        let g = geom(0.893);
        let a = 0.893;
        let mut hits = 0;
        let n = 60;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    (i as f64 / (n - 1) as f64) * 4.0 * a,
                    (j as f64 / (n - 1) as f64 - 0.5) * 3.0 * a,
                );
                if g.e_region_contains(Dir::Right, p) {
                    hits += 1;
                }
            }
        }
        let cell = (4.0 * a / (n - 1) as f64) * (3.0 * a / (n - 1) as f64);
        let area = hits as f64 * cell;
        assert!(area > 0.3 * a * a, "E-region area ≈ {area}");
    }

    #[test]
    fn e_region_is_convex_on_samples() {
        // E is an intersection of disks, hence convex: midpoints of
        // accepted pairs must be accepted.
        let g = geom(1.0);
        let mut members = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                let p = Point::new(i as f64 / 29.0 * 4.0, (j as f64 / 29.0 - 0.5) * 2.0);
                if g.canonical_e_contains(p) {
                    members.push(p);
                }
            }
        }
        assert!(members.len() > 5);
        for (idx, &p) in members.iter().enumerate() {
            let q = members[(idx * 7 + 3) % members.len()];
            assert!(
                g.canonical_e_contains(p.midpoint(q)),
                "midpoint of {p:?}, {q:?} rejected"
            );
        }
    }

    #[test]
    fn directional_maps_are_consistent() {
        let g = geom(1.0);
        // The point (0, 2a) should be in E_top exactly as (2a, 0) is in E_r.
        assert!(g.e_region_contains(Dir::Top, Point::new(0.0, 2.0)));
        assert!(g.e_region_contains(Dir::Bottom, Point::new(0.0, -2.0)));
        assert!(g.e_region_contains(Dir::Left, Point::new(-2.0, 0.0)));
        assert!(!g.e_region_contains(Dir::Left, Point::new(2.0, 0.0)));
        // C disks classify as outer relays.
        assert_eq!(
            g.classify(Point::new(4.0, 0.0)) & outer_relay_bit(Dir::Right),
            outer_relay_bit(Dir::Right)
        );
        assert_eq!(g.classify(Point::ORIGIN) & ROLE_REP, ROLE_REP);
    }

    /// Deterministic deployment: 9 points at region reference positions per
    /// tile, on a `tiles × 1` strip with a = 1 (tile side 10).
    fn seeded_strip(tiles: usize, k: usize) -> (PointSet, TileGrid, NnSensParams) {
        let params = NnSensParams { a: 1.0, k };
        let grid = TileGrid::new(params.tile_side(), tiles, 1);
        let mut pts = PointSet::new();
        let offsets = [
            Point::new(0.0, 0.0),  // C0
            Point::new(4.0, 0.0),  // Cr
            Point::new(-4.0, 0.0), // Cl
            Point::new(0.0, 4.0),  // Ct
            Point::new(0.0, -4.0), // Cb
            Point::new(2.0, 0.0),  // Er
            Point::new(-2.0, 0.0), // El
            Point::new(0.0, 2.0),  // Et
            Point::new(0.0, -2.0), // Eb
        ];
        for lin in 0..tiles {
            let c = grid.center((lin, 0));
            for o in offsets {
                pts.push(c + o);
            }
        }
        (pts, grid, params)
    }

    #[test]
    fn strip_builds_the_claim_23_chain() {
        let (pts, grid, params) = seeded_strip(3, 40);
        let base = build_knn(&pts, params.k);
        let net = build_nn_sens(&pts, &base, params, grid).unwrap();
        assert_eq!(net.lattice.open_count(), 3);
        assert_eq!(net.missing_links, 0);
        // Claim 2.3: 4 relay points between adjacent reps → 6-node path.
        let path = net.adjacent_rep_path((0, 0), (1, 0)).unwrap();
        assert_eq!(path.len(), 6, "rep, E, C, C', E', rep'");
        assert!(net.validate_node_path(&path));
        assert!(net.degree_stats().max <= 4, "P1 for NN-SENS");
    }

    #[test]
    fn overfull_tile_is_bad() {
        let (mut pts, grid, params) = seeded_strip(2, 20); // max 10 points/tile
                                                           // Tile 0 already has 9 points; add 2 more to exceed k/2 = 10.
        let c = grid.center((0, 0));
        pts.push(c + Point::new(0.3, 0.3));
        pts.push(c + Point::new(-0.3, 0.3));
        let base = build_knn(&pts, params.k);
        let net = build_nn_sens(&pts, &base, params, grid).unwrap();
        assert!(
            !net.lattice.is_open((0, 0)),
            "count > k/2 must mark the tile bad"
        );
        assert!(net.lattice.is_open((1, 0)));
    }

    #[test]
    fn random_deployment_has_no_missing_links() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window};
        // a = 1.2, unit density: tile area 144, so k must comfortably exceed
        // 288 for the count condition. Small grid keeps the test fast.
        let params = NnSensParams { a: 1.2, k: 400 };
        let grid = TileGrid::new(params.tile_side(), 3, 3);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(11), 1.0, &window);
        let base = build_knn(&pts, params.k);
        let net = build_nn_sens(&pts, &base, params, grid).unwrap();
        assert_eq!(net.missing_links, 0, "Claim 2.3 violated");
        assert!(
            net.lattice.open_count() >= 4,
            "expected mostly good tiles, got {}",
            net.lattice.open_count()
        );
        assert!(net.degree_stats().max <= 4);
        // Spot-check adjacent good pairs expand to valid node paths.
        let mut checked = 0;
        for s in net.lattice.sites() {
            if !net.lattice.is_open(s) {
                continue;
            }
            let right = (s.0 + 1, s.1);
            if net.lattice.in_bounds(right) && net.lattice.is_open(right) {
                let p = net
                    .adjacent_rep_path(s, right)
                    .expect("good neighbours must be linked");
                assert!(net.validate_node_path(&p));
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn parallel_builder_is_identical_to_serial() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window};
        let params = NnSensParams { a: 1.2, k: 400 };
        let grid = TileGrid::new(params.tile_side(), 3, 2);
        let pts = sample_poisson_window(&mut rng_from_seed(23), 1.0, &grid.covered_area());
        let base = wsn_rgg::build_knn_sharded(&pts, params.k, 4);
        assert_eq!(base, build_knn(&pts, params.k), "sharded base must match");
        let serial = build_nn_sens(&pts, &base, params, grid.clone()).unwrap();
        let par = build_nn_sens_parallel(&pts, &base, params, grid).unwrap();
        assert_eq!(par.lattice, serial.lattice);
        assert_eq!(par.reps, serial.reps);
        assert_eq!(par.roles, serial.roles);
        assert_eq!(par.graph, serial.graph);
    }

    #[test]
    fn ordered_builder_is_identical_to_serial() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointOrder};
        let params = NnSensParams { a: 1.2, k: 400 };
        let grid = TileGrid::new(params.tile_side(), 3, 2);
        let pts = sample_poisson_window(&mut rng_from_seed(29), 1.0, &grid.covered_area());
        let base = build_knn(&pts, params.k);
        let serial = build_nn_sens(&pts, &base, params, grid.clone()).unwrap();
        let ordered =
            build_nn_sens_ordered(&pts, &PointOrder::morton(&pts), &base, params, grid).unwrap();
        assert_eq!(ordered.lattice, serial.lattice);
        assert_eq!(ordered.reps, serial.reps);
        assert_eq!(ordered.roles, serial.roles);
        assert_eq!(ordered.graph, serial.graph);
        assert_eq!(ordered.missing_links, serial.missing_links);
    }

    #[test]
    fn tile_sampler_reports_plausible_statistics() {
        use wsn_pointproc::rng_from_seed;
        let g = geom(0.893);
        let mut rng = rng_from_seed(5);
        let mut counts = Vec::new();
        let mut region_hits = 0;
        for _ in 0..60 {
            let s = sample_nn_tile(&g, &mut rng);
            counts.push(s.count);
            region_hits += s.regions_ok as usize;
        }
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // E[N] = (10·0.893)² ≈ 79.7.
        assert!((mean - 79.7).abs() < 10.0, "mean = {mean}");
        // Regions occupied sometimes but not always at this scale.
        assert!(
            region_hits > 0,
            "C/E regions should be occupied occasionally"
        );
    }
}
