//! Power efficiency — the paper's headline claim (experiment EXP-PWR).
//!
//! Li–Wan–Wang: transmitting over distance `d` costs `d^β` with path-loss
//! exponent `β ∈ [2, 5]`, so a subgraph with distance stretch `δ` has power
//! stretch at most `δ^β`. We measure the *actual* power stretch: the ratio
//! of the minimum-power path in the subgraph to the minimum-power path in
//! the base graph, for the same endpoint pair.

use serde::Serialize;
use wsn_graph::{dijkstra, Csr};
use wsn_pointproc::PointSet;

/// Minimum-power distance between two nodes in `g` under exponent `beta`
/// (each hop `u→v` costs `d(u, v)^β`). `None` when disconnected.
pub fn power_distance(g: &Csr, points: &PointSet, src: u32, dst: u32, beta: f64) -> Option<f64> {
    dijkstra::distance_to(g, src, dst, |u, v| {
        points.get(u).dist(points.get(v)).powf(beta)
    })
}

/// Power stretch of `sub` relative to `base` for one pair.
pub fn power_stretch_pair(
    base: &Csr,
    sub: &Csr,
    points: &PointSet,
    pair: (u32, u32),
    beta: f64,
) -> Option<f64> {
    let b = power_distance(base, points, pair.0, pair.1, beta)?;
    let s = power_distance(sub, points, pair.0, pair.1, beta)?;
    if b <= 0.0 {
        return Some(1.0);
    }
    Some(s / b)
}

/// Aggregate power-stretch comparison of one topology against the base
/// graph.
#[derive(Clone, Debug, Serialize)]
pub struct PowerComparison {
    pub beta: f64,
    /// Pairs connected in the base graph.
    pub base_pairs: usize,
    /// Of those, pairs also connected in the subgraph.
    pub sub_pairs: usize,
    pub mean_stretch: f64,
    pub max_stretch: f64,
    /// Edges per node of the subgraph (sparsity cost of the ratio).
    pub edges_per_node: f64,
}

/// Measure power stretch of `sub` vs `base` over the given pairs.
pub fn compare_power(
    base: &Csr,
    sub: &Csr,
    points: &PointSet,
    pairs: &[(u32, u32)],
    beta: f64,
) -> PowerComparison {
    let mut base_pairs = 0usize;
    let mut ratios = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        let Some(b) = power_distance(base, points, u, v, beta) else {
            continue;
        };
        base_pairs += 1;
        if let Some(s) = power_distance(sub, points, u, v, beta) {
            ratios.push(if b > 0.0 { s / b } else { 1.0 });
        }
    }
    let (mean, max) = if ratios.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            ratios.iter().sum::<f64>() / ratios.len() as f64,
            ratios.iter().cloned().fold(0.0, f64::max),
        )
    };
    PowerComparison {
        beta,
        base_pairs,
        sub_pairs: ratios.len(),
        mean_stretch: mean,
        max_stretch: max,
        edges_per_node: if sub.n() > 0 {
            sub.m() as f64 / sub.n() as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Point;
    use wsn_graph::EdgeList;

    /// Base: triangle 0-1-2 with positions making two short hops cheaper
    /// than one long hop for β ≥ 2. Sub: only the long edge removed.
    fn setup() -> (Csr, Csr, PointSet) {
        let points: PointSet = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.1),
            Point::new(1.0, 0.0),
        ]
        .into_iter()
        .collect();
        let mut base = EdgeList::new(3);
        base.add(0, 1);
        base.add(1, 2);
        base.add(0, 2);
        let mut sub = EdgeList::new(3);
        sub.add(0, 1);
        sub.add(1, 2);
        (Csr::from_edge_list(base), Csr::from_edge_list(sub), points)
    }

    #[test]
    fn power_distance_prefers_short_hops_at_high_beta() {
        let (base, _, pts) = setup();
        // β = 2: two hops cost 0.26+0.26 = 0.52 < 1 (direct).
        let d2 = power_distance(&base, &pts, 0, 2, 2.0).unwrap();
        assert!(d2 < 1.0);
        // β = 0 would make fewer hops cheaper, but β ≥ 2 always relays here.
        let d4 = power_distance(&base, &pts, 0, 2, 4.0).unwrap();
        assert!(d4 < d2, "higher β favours relaying even more");
    }

    #[test]
    fn subgraph_without_long_edge_has_stretch_one_here() {
        // The base optimum already uses the two short hops, so removing the
        // long edge costs nothing: power stretch exactly 1.
        let (base, sub, pts) = setup();
        let r = power_stretch_pair(&base, &sub, &pts, (0, 2), 2.0).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_is_at_least_one() {
        let (base, sub, pts) = setup();
        for beta in [2.0, 3.0, 5.0] {
            let c = compare_power(&base, &sub, &pts, &[(0, 1), (0, 2), (1, 2)], beta);
            assert_eq!(c.base_pairs, 3);
            assert_eq!(c.sub_pairs, 3);
            assert!(c.mean_stretch >= 1.0 - 1e-12);
            assert!(c.max_stretch >= c.mean_stretch);
        }
    }

    #[test]
    fn disconnected_subgraph_pairs_are_counted_separately() {
        let (base, _, pts) = setup();
        let sub = Csr::empty(3);
        let c = compare_power(&base, &sub, &pts, &[(0, 1), (1, 2)], 2.0);
        assert_eq!(c.base_pairs, 2);
        assert_eq!(c.sub_pairs, 0);
        assert!(c.mean_stretch.is_nan());
    }

    #[test]
    fn edges_per_node_reflects_sparsity() {
        let (base, sub, pts) = setup();
        let cb = compare_power(&base, &base, &pts, &[(0, 2)], 2.0);
        let cs = compare_power(&base, &sub, &pts, &[(0, 2)], 2.0);
        assert!(cs.edges_per_node < cb.edges_per_node);
    }
}
