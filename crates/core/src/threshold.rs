//! Good-tile probabilities and critical-parameter estimation — the paper's
//! "numerical calculations" behind Theorems 2.2 (λ_s = 1.568) and 2.4
//! (k_s = 188 at a = 0.893), reproduced by Monte Carlo (experiments EXP-T22
//! and EXP-T24).
//!
//! The logic in both cases: the coupled site-percolation process is
//! supercritical as soon as `P[tile good] > p_c ≈ 0.5927`, so the critical
//! parameter estimate is the smallest λ (resp. k) whose good-tile
//! probability exceeds the paper's target 0.593.

use rand::Rng;
use rayon::prelude::*;
use serde::Serialize;
use wsn_geom::hash::{derive_seed, derive_seed2};
use wsn_geom::tile::Dir;
use wsn_geom::{Aabb, Point};
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

use crate::nn::{sample_nn_tile, NnTileGeometry};
use crate::params::{NnSensParams, UdgGeometryMode, UdgSensParams};
use crate::subgraph::{relay_bit, ROLE_REP};
use crate::udg::UdgTileGeometry;

/// The paper's goodness-probability target (upper end of the cited p_c
/// bracket).
pub const GOODNESS_TARGET: f64 = 0.593;

/// Is a single UDG tile good, given its points in tile-local coordinates?
///
/// Strict mode: all five regions occupied. Paper mode: additionally a
/// visibility-verified election must exist (some representative reaches a
/// candidate in every relay region).
pub fn udg_tile_is_good(geom: &UdgTileGeometry, locals: &[Point]) -> bool {
    match geom.params().mode {
        UdgGeometryMode::Strict => {
            let mut have = 0u16;
            let all = ROLE_REP | 0b0001_1110;
            for &p in locals {
                have |= geom.classify(p);
                if have == all {
                    return true;
                }
            }
            false
        }
        UdgGeometryMode::Paper => {
            let radius = geom.params().radius;
            let reps: Vec<Point> = locals
                .iter()
                .copied()
                .filter(|&p| geom.c0_contains(p))
                .collect();
            if reps.is_empty() {
                return false;
            }
            let mut relays: [Vec<Point>; 4] = Default::default();
            for &p in locals {
                for d in Dir::ALL {
                    if geom.classify(p) & relay_bit(d) != 0 {
                        relays[d.index()].push(p);
                    }
                }
            }
            reps.iter().any(|&r| {
                Dir::ALL
                    .iter()
                    .all(|d| relays[d.index()].iter().any(|&q| q.dist(r) <= radius))
            })
        }
    }
}

/// Monte-Carlo estimate of `P[tile good]` for UDG-SENS at density `lambda`.
pub fn p_good_udg(params: UdgSensParams, lambda: f64, reps: usize, seed: u64) -> f64 {
    let geom = UdgTileGeometry::new(params).expect("invalid params");
    let a = params.tile_side;
    let tile = Aabb::centered_square(Point::ORIGIN, a);
    let hits: usize = (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let mut rng = rng_from_seed(derive_seed2(seed, r, lambda.to_bits()));
            let pts = sample_poisson_window(&mut rng, lambda, &tile);
            let locals: Vec<Point> = pts.iter().collect();
            udg_tile_is_good(&geom, &locals) as usize
        })
        .sum();
    hits as f64 / reps as f64
}

/// Exact `P[tile good]` for *strict* geometries whose five regions are
/// pairwise disjoint: occupancy of disjoint regions is independent under a
/// PPP, so `P = (1 − e^(−λ·A₀)) · ∏_d (1 − e^(−λ·A_d))`.
///
/// Returns `None` when the regions are not provably disjoint (or in paper
/// mode, where the election is not a product event).
pub fn p_good_udg_analytic(params: UdgSensParams, lambda: f64) -> Option<f64> {
    if params.mode != UdgGeometryMode::Strict {
        return None;
    }
    let (r0, re, de) = (params.r0, params.relay_radius, params.relay_offset);
    // Relay ↔ C0 disjoint; adjacent relays disjoint (opposite relays are
    // farther apart than adjacent ones).
    if de - re < r0 || std::f64::consts::SQRT_2 * de < 2.0 * re {
        return None;
    }
    let a0 = std::f64::consts::PI * r0 * r0;
    let ae = std::f64::consts::PI * re * re;
    Some((1.0 - (-lambda * a0).exp()) * (1.0 - (-lambda * ae).exp()).powi(4))
}

/// One point of a λ sweep.
#[derive(Clone, Debug, Serialize)]
pub struct ThresholdPoint {
    pub param: f64,
    pub p_good: f64,
}

/// Sweep `P[tile good]` over densities.
pub fn udg_threshold_sweep(
    params: UdgSensParams,
    lambdas: &[f64],
    reps: usize,
    seed: u64,
) -> Vec<ThresholdPoint> {
    lambdas
        .iter()
        .map(|&l| ThresholdPoint {
            param: l,
            p_good: p_good_udg(params, l, reps, seed),
        })
        .collect()
}

/// Estimate `λ_s = inf { λ : P[good](λ) ≥ target }` by bisection.
/// `P[good]` is monotone in λ for strict mode (more points can only help)
/// and empirically monotone in paper mode.
pub fn lambda_s_udg(
    params: UdgSensParams,
    target: f64,
    reps: usize,
    iterations: usize,
    seed: u64,
) -> f64 {
    let (mut lo, mut hi) = (0.05, 200.0);
    for it in 0..iterations {
        let mid = 0.5 * (lo + hi);
        let p = p_good_udg(params, mid, reps, derive_seed(seed, it as u64));
        if p < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Batch of NN tile samples at scale `a`, unit density.
pub fn nn_tile_samples(a: f64, reps: usize, seed: u64) -> Vec<crate::nn::NnTileSample> {
    let geom = NnTileGeometry::new(NnSensParams {
        a,
        k: usize::MAX / 2,
    })
    .expect("invalid a");
    (0..reps as u64)
        .into_par_iter()
        .map(|r| {
            let mut rng = rng_from_seed(derive_seed2(seed, r, a.to_bits()));
            sample_nn_tile(&geom, &mut rng)
        })
        .collect()
}

/// `P[tile good]` for NN-SENS from a sample batch: regions occupied AND
/// count ≤ k/2. Monotone in `k`.
pub fn p_good_nn_from_samples(samples: &[crate::nn::NnTileSample], k: usize) -> f64 {
    let hits = samples
        .iter()
        .filter(|s| s.regions_ok && s.count <= k / 2)
        .count();
    hits as f64 / samples.len() as f64
}

/// Monte-Carlo `P[tile good]` for NN-SENS at `(a, k)`.
pub fn p_good_nn(a: f64, k: usize, reps: usize, seed: u64) -> f64 {
    p_good_nn_from_samples(&nn_tile_samples(a, reps, seed), k)
}

/// Smallest `k` with `P[good](a, k) ≥ target`, or `None` if even `k = ∞`
/// (regions alone) cannot reach the target at this scale.
pub fn k_s_for_scale(a: f64, target: f64, reps: usize, seed: u64) -> Option<usize> {
    let samples = nn_tile_samples(a, reps, seed);
    let p_regions = samples.iter().filter(|s| s.regions_ok).count() as f64 / samples.len() as f64;
    if p_regions < target {
        return None;
    }
    // P is monotone in k: binary search the smallest satisfying k.
    let (mut lo, mut hi) = (2usize, 4096usize);
    if p_good_nn_from_samples(&samples, hi) < target {
        return None;
    }
    while lo < hi {
        let mid = (lo + hi) / 2;
        if p_good_nn_from_samples(&samples, mid) >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Sweep scales and report the best (smallest) achievable k_s —
/// reproducing the paper's joint choice of (a, k) = (0.893, 188).
pub fn optimize_nn_scale(
    scales: &[f64],
    target: f64,
    reps: usize,
    seed: u64,
) -> Vec<(f64, Option<usize>)> {
    scales
        .iter()
        .map(|&a| {
            (
                a,
                k_s_for_scale(a, target, reps, derive_seed(seed, a.to_bits())),
            )
        })
        .collect()
}

/// Draw one Bernoulli goodness sample for a UDG tile (used by simulations
/// needing per-tile goodness without a full deployment).
pub fn sample_udg_tile<R: Rng>(geom: &UdgTileGeometry, lambda: f64, rng: &mut R) -> bool {
    let a = geom.params().tile_side;
    let tile = Aabb::centered_square(Point::ORIGIN, a);
    let pts = sample_poisson_window(rng, lambda, &tile);
    let locals: Vec<Point> = pts.iter().collect();
    let _ = rng.random::<u64>(); // decorrelate subsequent tiles cheaply
    udg_tile_is_good(geom, &locals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tile_is_bad_and_dense_tile_is_good() {
        let p = UdgSensParams::strict_default();
        let geom = UdgTileGeometry::new(p).unwrap();
        assert!(!udg_tile_is_good(&geom, &[]));
        // One point in each region.
        let locals = [
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.0),
            Point::new(-0.4, 0.0),
            Point::new(0.0, 0.4),
            Point::new(0.0, -0.4),
        ];
        assert!(udg_tile_is_good(&geom, &locals));
        // Missing one relay → bad.
        assert!(!udg_tile_is_good(&geom, &locals[..4]));
    }

    #[test]
    fn paper_mode_requires_visible_election() {
        let p = UdgSensParams::paper();
        let geom = UdgTileGeometry::new(p).unwrap();
        // Rep at the far left of C0; relays near the right boundary are out
        // of unit range of it, top/bottom/left fine.
        let rep = Point::new(-0.49, 0.0);
        let relays = [
            Point::new(0.6, 0.0),
            Point::new(-0.6, 0.0),
            Point::new(0.0, 0.6),
            Point::new(0.0, -0.6),
        ];
        let mut locals = vec![rep];
        locals.extend_from_slice(&relays);
        // d(rep, right relay) = 1.09 > 1 → election fails.
        assert!(!udg_tile_is_good(&geom, &locals));
        // Moving the rep to the centre fixes it.
        locals[0] = Point::new(0.0, 0.0);
        assert!(udg_tile_is_good(&geom, &locals));
    }

    #[test]
    fn p_good_udg_is_monotone_in_lambda() {
        let p = UdgSensParams::strict_default();
        let lo = p_good_udg(p, 5.0, 400, 1);
        let hi = p_good_udg(p, 40.0, 400, 1);
        assert!(lo < hi, "{lo} !< {hi}");
        assert!(hi > 0.9);
    }

    #[test]
    fn analytic_matches_monte_carlo_for_disjoint_strict_geometry() {
        let p = UdgSensParams::strict_default();
        for lambda in [5.0, 15.0, 30.0] {
            let exact = p_good_udg_analytic(p, lambda).expect("default geometry is disjoint");
            let mc = p_good_udg(p, lambda, 4000, 2);
            assert!(
                (exact - mc).abs() < 0.04,
                "λ = {lambda}: exact {exact} vs MC {mc}"
            );
        }
    }

    #[test]
    fn analytic_rejects_overlapping_or_paper_geometry() {
        assert!(p_good_udg_analytic(UdgSensParams::paper(), 1.0).is_none());
        let mut p = UdgSensParams::strict_default();
        p.r0 = 0.25; // d_e − r_e = 0.2 < r_0 → relay overlaps C0
        assert!(p_good_udg_analytic(p, 1.0).is_none());
    }

    #[test]
    fn lambda_s_agrees_with_analytic_inverse() {
        let p = UdgSensParams::strict_default();
        let ls = lambda_s_udg(p, GOODNESS_TARGET, 3000, 12, 3);
        // Invert the analytic formula at the estimate: P should be ≈ target.
        let at = p_good_udg_analytic(p, ls).unwrap();
        assert!((at - GOODNESS_TARGET).abs() < 0.05, "P(λ_s = {ls}) = {at}");
    }

    #[test]
    fn nn_goodness_is_monotone_in_k() {
        let samples = nn_tile_samples(0.893, 600, 4);
        let p100 = p_good_nn_from_samples(&samples, 100);
        let p200 = p_good_nn_from_samples(&samples, 200);
        let p400 = p_good_nn_from_samples(&samples, 400);
        assert!(p100 <= p200 && p200 <= p400, "{p100} {p200} {p400}");
    }

    #[test]
    fn k_s_search_matches_linear_scan() {
        let seed = 9;
        let a = 1.0;
        let samples = nn_tile_samples(a, 400, derive_seed(seed, a.to_bits()));
        let target = 0.3; // modest target so the search succeeds at small a
        let binary = {
            // Reuse the library search on identical samples by reimplementing
            // the scan here.
            let mut k = 2;
            while k < 4096 && p_good_nn_from_samples(&samples, k) < target {
                k += 1;
            }
            (k < 4096).then_some(k)
        };
        // Library result on the same seed/sample parameters.
        let lib = k_s_for_scale(a, target, 400, seed);
        assert_eq!(lib, binary);
    }

    #[test]
    fn determinism() {
        let p = UdgSensParams::strict_default();
        assert_eq!(p_good_udg(p, 10.0, 200, 5), p_good_udg(p, 10.0, 200, 5));
        assert_eq!(p_good_nn(1.0, 300, 100, 6), p_good_nn(1.0, 300, 100, 6));
    }
}
