//! The `UDG-SENS(2, λ)` construction (paper §2.1).
//!
//! Tiles of side `a` carry five regions: the representative region `C0`
//! (disk of radius `r_0` at the tile centre) and four relay regions
//! `E_r, E_l, E_t, E_b` facing the neighbours. A tile is *good* when every
//! region holds at least one point; good tiles couple to open lattice sites,
//! and representatives connect to their neighbours' representatives through
//! the relays (Claim 2.1: a 3-hop path of edges each ≤ 1).
//!
//! Region geometry comes in two modes (see DESIGN.md §2 / [`UdgGeometryMode`]):
//! *strict* (corrected; visibility holds for any election) and *paper*
//! (the paper's stated shapes; election is visibility-verified).

use wsn_geom::tile::Dir;
use wsn_geom::{Disk, Point};
use wsn_graph::{Csr, EdgeList};
use wsn_perc::Lattice;
use wsn_pointproc::{PointOrder, PointSet};

use crate::params::{ParamError, UdgGeometryMode, UdgSensParams};
use crate::subgraph::{relay_bit, SensNetwork, ROLE_REP};
use crate::tilegrid::{TileAssignment, TileGrid};

/// Region tests for a UDG-SENS tile, in tile-local coordinates (origin at
/// the tile centre).
#[derive(Clone, Copy, Debug)]
pub struct UdgTileGeometry {
    params: UdgSensParams,
}

impl UdgTileGeometry {
    pub fn new(params: UdgSensParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(UdgTileGeometry { params })
    }

    #[inline]
    pub fn params(&self) -> &UdgSensParams {
        &self.params
    }

    /// The representative region `C0` (local coordinates).
    #[inline]
    pub fn c0(&self) -> Disk {
        Disk::new(Point::ORIGIN, self.params.r0)
    }

    #[inline]
    pub fn c0_contains(&self, p: Point) -> bool {
        self.c0().contains(p)
    }

    /// Membership in the relay region facing `dir` (local coordinates).
    /// All relay regions exclude `C0` ("from this set we remove all the
    /// points of C0(t)").
    pub fn relay_contains(&self, dir: Dir, p: Point) -> bool {
        if self.c0_contains(p) {
            return false;
        }
        let a = self.params.tile_side;
        match self.params.mode {
            UdgGeometryMode::Strict => {
                let center = dir.unit_vec() * self.params.relay_offset;
                Disk::new(center, self.params.relay_radius).contains(p)
            }
            UdgGeometryMode::Paper => {
                // Inside the tile, within radio range of both this tile's
                // centre and the `dir` neighbour's centre.
                let half = a * 0.5;
                if p.x.abs() > half || p.y.abs() > half {
                    return false;
                }
                let r = self.params.radius;
                let neighbor_center = dir.unit_vec() * a;
                p.norm() <= r && p.dist(neighbor_center) <= r
            }
        }
    }

    /// Bitmask of region memberships: [`ROLE_REP`] for `C0`,
    /// [`relay_bit`]`(d)` for each relay region (regions may overlap).
    pub fn classify(&self, p: Point) -> u16 {
        let mut mask = 0u16;
        if self.c0_contains(p) {
            return ROLE_REP;
        }
        for d in Dir::ALL {
            if self.relay_contains(d, p) {
                mask |= relay_bit(d);
            }
        }
        mask
    }
}

/// Per-tile election result.
#[derive(Clone, Debug, Default)]
struct TileElection {
    rep: Option<u32>,
    relay: [Option<u32>; 4],
}

impl TileElection {
    fn good(&self) -> bool {
        self.rep.is_some() && self.relay.iter().all(Option::is_some)
    }
}

/// Per-region candidate lists of one tile, in the id order of the scan.
///
/// Splitting the election into *collect* (a pure coordinate scan) and
/// *choose* (the id-priority decision) is what makes the Morton-ordered
/// build exact: collect runs over the spatially sorted copy (cache-linear),
/// then [`Self::remap_and_sort`] translates the candidate ids back to
/// original deployment ids and restores ascending order, so choose sees
/// byte-for-byte the lists the deployment-order scan would have produced.
#[derive(Clone, Debug, Default)]
struct TileCandidates {
    c0: Vec<u32>,
    relays: [Vec<u32>; 4],
}

impl TileCandidates {
    fn remap_and_sort(&mut self, to_orig: &[u32]) {
        for list in std::iter::once(&mut self.c0).chain(self.relays.iter_mut()) {
            for id in list.iter_mut() {
                *id = to_orig[*id as usize];
            }
            list.sort_unstable();
        }
    }
}

/// Scan one tile's points and classify them into candidate lists. Ids keep
/// the order of `ids` (ascending, per [`TileAssignment::build`]).
fn collect(
    geom: &UdgTileGeometry,
    points: &PointSet,
    grid: &TileGrid,
    site: wsn_perc::Site,
    ids: &[u32],
) -> TileCandidates {
    let mut cands = TileCandidates::default();
    for &id in ids {
        let local = grid.local(site, points.get(id));
        let mask = geom.classify(local);
        if mask & ROLE_REP != 0 {
            cands.c0.push(id);
        }
        for d in Dir::ALL {
            if mask & relay_bit(d) != 0 {
                cands.relays[d.index()].push(id);
            }
        }
    }
    cands
}

/// The id-priority decision over collected candidates.
///
/// Strict mode: lowest id per region (any choice is valid by geometry).
/// Paper mode: lowest-id representative that can reach (within `radius`)
/// some candidate in every relay region; relays are the lowest-id reachable
/// candidates. The tile is good only if such an election exists. `points`
/// must be the set the candidate ids index into.
fn choose(geom: &UdgTileGeometry, points: &PointSet, cands: &TileCandidates) -> TileElection {
    let TileCandidates { c0, relays } = cands;
    match geom.params.mode {
        UdgGeometryMode::Strict => TileElection {
            rep: c0.first().copied(),
            relay: [
                relays[0].first().copied(),
                relays[1].first().copied(),
                relays[2].first().copied(),
                relays[3].first().copied(),
            ],
        },
        UdgGeometryMode::Paper => {
            let radius = geom.params.radius;
            for &rep in c0 {
                let rp = points.get(rep);
                let mut chosen = [None; 4];
                let mut ok = true;
                for d in Dir::ALL {
                    chosen[d.index()] = relays[d.index()]
                        .iter()
                        .copied()
                        .find(|&cand| points.get(cand).dist(rp) <= radius);
                    if chosen[d.index()].is_none() {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    return TileElection {
                        rep: Some(rep),
                        relay: chosen,
                    };
                }
            }
            TileElection::default()
        }
    }
}

/// Elect representative and relays in one tile (collect + choose).
fn elect(
    geom: &UdgTileGeometry,
    points: &PointSet,
    grid: &TileGrid,
    site: wsn_perc::Site,
    ids: &[u32],
) -> TileElection {
    choose(geom, points, &collect(geom, points, grid, site, ids))
}

/// Build `UDG-SENS` over `points` on the given tile grid.
///
/// This is the *centralised* builder used by experiments; the message-level
/// distributed protocol (Fig. 7) lives in `wsn-simnet` and is tested to
/// produce the same network. [`build_udg_sens_parallel`] is the
/// tile-sharded variant producing the identical network.
pub fn build_udg_sens(
    points: &PointSet,
    params: UdgSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    let geom = UdgTileGeometry::new(params)?;
    let assignment = TileAssignment::build(&grid, points);
    let n_tiles = grid.tile_count();

    let mut elections: Vec<TileElection> = Vec::with_capacity(n_tiles);
    for lin in 0..n_tiles {
        let site = grid.site_of_linear(lin);
        elections.push(elect(&geom, points, &grid, site, assignment.points_in(lin)));
    }

    Ok(assemble_udg_sens(
        points, &params, grid, assignment, &elections,
    ))
}

/// Tile-sharded, rayon-parallel `UDG-SENS`.
///
/// Tiles *are* the shards: an election reads only its own tile's points
/// (P4 — no halo needed), so rows of tiles fan out over the worker pool
/// and the cross-tile link pass stitches the globally collected elections.
/// The result is identical (lattice, roles, reps, edges) to
/// [`build_udg_sens`] at any `RAYON_NUM_THREADS`.
pub fn build_udg_sens_parallel(
    points: &PointSet,
    params: UdgSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    use rayon::prelude::*;
    let geom = UdgTileGeometry::new(params)?;
    let assignment = TileAssignment::build(&grid, points);

    let elections: Vec<TileElection> = (0..grid.rows())
        .into_par_iter()
        .flat_map_iter(|j| {
            let row: Vec<TileElection> = (0..grid.cols())
                .map(|i| {
                    let lin = grid.linear((i, j));
                    elect(&geom, points, &grid, (i, j), assignment.points_in(lin))
                })
                .collect();
            row
        })
        .collect();

    Ok(assemble_udg_sens(
        points, &params, grid, assignment, &elections,
    ))
}

/// Morton-ordered `UDG-SENS`: elections scan the spatially sorted copy held
/// by `order` — each tile's resident list is a near-contiguous rank range,
/// so the classify pass walks the point SoA sequentially — then candidates
/// are remapped to original deployment ids (and re-sorted) before the
/// id-priority choice. The network is assembled over the original `points`,
/// so the result is byte-identical to [`build_udg_sens`]: same lattice,
/// roles, reps, edges and fingerprints, independent of the layout.
pub fn build_udg_sens_ordered(
    points: &PointSet,
    order: &PointOrder,
    params: UdgSensParams,
    grid: TileGrid,
) -> Result<SensNetwork, ParamError> {
    use rayon::prelude::*;
    let geom = UdgTileGeometry::new(params)?;
    assert_eq!(order.len(), points.len(), "order / point set mismatch");
    let rank_assignment = TileAssignment::build(&grid, order.points());

    let elections: Vec<TileElection> = (0..grid.rows())
        .into_par_iter()
        .flat_map_iter(|j| {
            let row: Vec<TileElection> = (0..grid.cols())
                .map(|i| {
                    let lin = grid.linear((i, j));
                    let mut cands = collect(
                        &geom,
                        order.points(),
                        &grid,
                        (i, j),
                        rank_assignment.points_in(lin),
                    );
                    cands.remap_and_sort(order.to_orig());
                    choose(&geom, points, &cands)
                })
                .collect();
            row
        })
        .collect();

    let assignment = TileAssignment::build(&grid, points);
    Ok(assemble_udg_sens(
        points, &params, grid, assignment, &elections,
    ))
}

/// The serial stitch shared by both builders: couple good tiles to the
/// lattice, realise intra-tile and cross-tile links, assemble the network.
fn assemble_udg_sens(
    points: &PointSet,
    params: &UdgSensParams,
    grid: TileGrid,
    assignment: TileAssignment,
    elections: &[TileElection],
) -> SensNetwork {
    let n_tiles = grid.tile_count();
    let lattice = Lattice::from_fn(grid.cols(), grid.rows(), |i, j| {
        elections[grid.linear((i, j))].good()
    });

    let mut roles = vec![0u16; points.len()];
    let mut reps = vec![u32::MAX; n_tiles];
    let mut el = EdgeList::new(points.len());
    let mut missing = 0usize;

    for lin in 0..n_tiles {
        let e = &elections[lin];
        if !e.good() {
            continue;
        }
        let rep = e.rep.unwrap();
        reps[lin] = rep;
        roles[rep as usize] |= ROLE_REP;
        for d in Dir::ALL {
            let relay = e.relay[d.index()].unwrap();
            roles[relay as usize] |= relay_bit(d);
            debug_assert!(
                points.get(rep).dist(points.get(relay)) <= params.radius + 1e-9,
                "rep-relay link exceeds radio range (strict geometry violated)"
            );
            el.add(rep, relay);
        }
    }

    // Cross-tile relay links: for each good tile, link its Right/Top relay
    // to the opposite relay of the good neighbour (each pair handled once).
    for lin in 0..n_tiles {
        if reps[lin] == u32::MAX {
            continue;
        }
        let site = grid.site_of_linear(lin);
        for d in [Dir::Right, Dir::Top] {
            let nb = d.neighbor_of(grid.tile_of_site(site));
            let Some(nb_site) = grid.site_of_tile(nb) else {
                continue;
            };
            let nb_lin = grid.linear(nb_site);
            if reps[nb_lin] == u32::MAX {
                continue;
            }
            let my_relay = elections[lin].relay[d.index()].unwrap();
            let their_relay = elections[nb_lin].relay[d.opposite().index()].unwrap();
            let dist = points.get(my_relay).dist(points.get(their_relay));
            if dist <= params.radius + 1e-12 {
                if my_relay != their_relay {
                    el.add(my_relay, their_relay);
                }
            } else {
                debug_assert!(
                    params.mode == UdgGeometryMode::Paper,
                    "strict mode must always realise cross links (d = {dist})"
                );
                missing += 1;
            }
        }
    }

    let graph = Csr::from_edge_list(el);
    SensNetwork::assemble(
        grid,
        lattice,
        graph,
        roles,
        assignment.tile_of_point,
        reps,
        missing,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_geom::Region;

    fn strict_geom() -> UdgTileGeometry {
        UdgTileGeometry::new(UdgSensParams::strict_default()).unwrap()
    }

    #[test]
    fn strict_classification_of_hand_points() {
        let g = strict_geom();
        assert_eq!(g.classify(Point::new(0.0, 0.0)), ROLE_REP);
        assert_eq!(g.classify(Point::new(0.15, 0.0)), ROLE_REP);
        assert_eq!(g.classify(Point::new(0.4, 0.0)), relay_bit(Dir::Right));
        assert_eq!(g.classify(Point::new(-0.4, 0.0)), relay_bit(Dir::Left));
        assert_eq!(g.classify(Point::new(0.0, 0.4)), relay_bit(Dir::Top));
        assert_eq!(g.classify(Point::new(0.0, -0.4)), relay_bit(Dir::Bottom));
        // Between regions: nothing.
        assert_eq!(g.classify(Point::new(0.3, 0.3)), 0);
        // Corner of the tile: nothing.
        assert_eq!(g.classify(Point::new(0.59, 0.59)), 0);
    }

    #[test]
    fn paper_mode_relay_region_is_nonempty_lens() {
        let g = UdgTileGeometry::new(UdgSensParams::paper()).unwrap();
        // (0.55, 0): outside C0 (r=0.5), inside tile (half = 2/3), within 1
        // of both this centre and the right neighbour centre (4/3, 0).
        assert!(g.relay_contains(Dir::Right, Point::new(0.55, 0.0)));
        // Inside C0 → excluded.
        assert!(!g.relay_contains(Dir::Right, Point::new(0.45, 0.0)));
        // Outside the tile.
        assert!(!g.relay_contains(Dir::Right, Point::new(0.7, 0.0)));
        // Too far from the neighbour centre: x = 0.55 but high y.
        assert!(!g.relay_contains(Dir::Right, Point::new(0.55, 0.65)));
    }

    #[test]
    fn paper_literal_definition_is_empty_but_lens_reading_is_not() {
        // Documentation of defect D1: the erosion of the unit disk by C0
        // (radius 1/2) is exactly C0, so "within 1 of every point of C0"
        // minus C0 is empty...
        let c0 = Disk::new(Point::ORIGIN, 0.5);
        let eroded = c0.erosion_of_reach(1.0).unwrap();
        assert_eq!(eroded, c0);
        // ...while the lens reading has positive area.
        let g = UdgTileGeometry::new(UdgSensParams::paper()).unwrap();
        let region = wsn_geom::region::PredicateRegion::new(
            wsn_geom::Aabb::from_coords(0.0, -0.67, 0.67, 0.67),
            |p| g.relay_contains(Dir::Right, p),
        );
        assert!(region.area_estimate(200) > 0.05);
    }

    /// A deterministic deployment that makes a horizontal strip of good
    /// tiles: one point at each region centre of each tile.
    fn seeded_strip(params: UdgSensParams, tiles: usize) -> (PointSet, TileGrid) {
        let grid = TileGrid::new(params.tile_side, tiles, 1);
        let mut pts = PointSet::new();
        let offsets = [
            Point::new(0.0, 0.0),
            Point::new(params.relay_offset, 0.0),
            Point::new(-params.relay_offset, 0.0),
            Point::new(0.0, params.relay_offset),
            Point::new(0.0, -params.relay_offset),
        ];
        for lin in 0..tiles {
            let c = grid.center((lin, 0));
            for o in offsets {
                pts.push(c + o);
            }
        }
        (pts, grid)
    }

    #[test]
    fn strip_deployment_builds_connected_chain() {
        let params = UdgSensParams::strict_default();
        let (pts, grid) = seeded_strip(params, 4);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        assert_eq!(net.lattice.open_count(), 4, "all tiles good");
        assert_eq!(net.missing_links, 0);
        // All 20 points are elected (5 per tile) and in one component.
        assert_eq!(net.elected_count(), 20);
        assert_eq!(net.core_mask.iter().filter(|&&b| b).count(), 20);
        // Claim 2.1: reps of adjacent tiles joined by a 3-hop path.
        let path = net.adjacent_rep_path((0, 0), (1, 0)).unwrap();
        assert_eq!(path.len(), 4, "rep, relay, relay, rep");
        assert!(net.validate_node_path(&path));
        // Sparsity: max degree 4.
        assert!(net.degree_stats().max <= 4);
    }

    #[test]
    fn missing_region_makes_tile_bad() {
        let params = UdgSensParams::strict_default();
        let (mut pts, grid) = seeded_strip(params, 3);
        // Remove the right relay of the middle tile (index 5·1 + 1).
        let without: PointSet = pts
            .iter_enumerated()
            .filter(|&(i, _)| i != 6)
            .map(|(_, p)| p)
            .collect();
        pts = without;
        let net = build_udg_sens(&pts, params, grid).unwrap();
        assert_eq!(net.lattice.open_count(), 2);
        assert!(!net.lattice.is_open((1, 0)));
        // The chain is broken: tile 0 and tile 2 reps are in different
        // components.
        let r0 = net.rep_of((0, 0)).unwrap();
        let r2 = net.rep_of((2, 0)).unwrap();
        let comps = wsn_graph::components::connected_components(&net.graph);
        assert!(!comps.same(r0, r2));
    }

    #[test]
    fn degree_bound_holds_on_random_deployment() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window};
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(24.0, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(42), 30.0, &window);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        assert_eq!(net.missing_links, 0, "strict mode never misses links");
        let stats = net.degree_stats();
        assert!(stats.max <= 4, "P1 violated: max degree {}", stats.max);
        assert!(
            net.lattice.open_fraction() > 0.5,
            "λ=30 should be supercritical"
        );
        // Representatives have degree exactly 4 when surrounded by good
        // neighbours; at least assert every member has degree ≥ 1.
        for u in net.members() {
            assert!(net.graph.degree(u) >= 1);
        }
    }

    #[test]
    fn rep_connectivity_matches_lattice_clusters_strict() {
        use wsn_perc::cluster::label_clusters;
        use wsn_pointproc::{rng_from_seed, sample_poisson_window};
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(18.0, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(7), 20.0, &window);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        let clusters = label_clusters(&net.lattice);
        let comps = wsn_graph::components::connected_components(&net.graph);
        for a in net.lattice.sites() {
            for b in net.lattice.sites() {
                let (ra, rb) = (net.rep_of(a), net.rep_of(b));
                if let (Some(ra), Some(rb)) = (ra, rb) {
                    assert_eq!(
                        clusters.same_cluster(&net.lattice, a, b),
                        comps.same(ra, rb),
                        "coupling mismatch between {a:?} and {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_builder_is_identical_to_serial() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window};
        let params = UdgSensParams::strict_default();
        for seed in [1u64, 8, 21] {
            let grid = TileGrid::fit(16.0, params.tile_side);
            let pts = sample_poisson_window(&mut rng_from_seed(seed), 28.0, &grid.covered_area());
            let serial = build_udg_sens(&pts, params, grid.clone()).unwrap();
            let par = build_udg_sens_parallel(&pts, params, grid).unwrap();
            assert_eq!(par.lattice, serial.lattice);
            assert_eq!(par.reps, serial.reps);
            assert_eq!(par.roles, serial.roles);
            assert_eq!(par.graph, serial.graph);
            assert_eq!(par.missing_links, serial.missing_links);
        }
    }

    #[test]
    fn ordered_builder_is_identical_to_serial() {
        use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointOrder};
        for params in [UdgSensParams::strict_default(), UdgSensParams::paper()] {
            let grid = TileGrid::fit(14.0, params.tile_side);
            let pts = sample_poisson_window(&mut rng_from_seed(13), 25.0, &grid.covered_area());
            let serial = build_udg_sens(&pts, params, grid.clone()).unwrap();
            let ordered =
                build_udg_sens_ordered(&pts, &PointOrder::morton(&pts), params, grid).unwrap();
            assert_eq!(ordered.lattice, serial.lattice);
            assert_eq!(ordered.reps, serial.reps);
            assert_eq!(ordered.roles, serial.roles);
            assert_eq!(ordered.graph, serial.graph);
            assert_eq!(ordered.missing_links, serial.missing_links);
        }
    }

    #[test]
    fn routing_on_built_network() {
        let params = UdgSensParams::strict_default();
        let (pts, grid) = seeded_strip(params, 5);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        let (outcome, path) = net.route((0, 0), (4, 0));
        assert!(outcome.delivered);
        let path = path.expect("strict mode expands the full node path");
        assert!(net.validate_node_path(&path));
        // 4 lattice hops × 3 node hops each.
        assert_eq!(path.len(), 1 + 4 * 3);
    }
}
