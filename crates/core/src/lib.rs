//! # wsn-core
//!
//! The paper's contribution: **sparse, power-efficient subgraph
//! constructions for wireless ad hoc sensor networks** on two geometric
//! random-graph models,
//!
//! * `UDG-SENS(2, λ)` on the unit-disk graph `UDG(2, λ)` ([`udg`]), and
//! * `NN-SENS(2, k)` on the k-nearest-neighbour graph `NN(2, k)` ([`nn`]),
//!
//! both built by tiling R², electing a *representative* point near each tile
//! centre and *relay* points near tile boundaries, and coupling good tiles
//! (all required regions occupied) to open sites of a Z² site-percolation
//! process ([`wsn_perc`]).
//!
//! The four advertised properties map to modules:
//!
//! | property | paper | module |
//! |---|---|---|
//! | P1 sparsity (max degree 4) | §1 | [`subgraph`] degree audit |
//! | P2 constant stretch | Thm 3.2 | [`stretch`] |
//! | P3 coverage | Thm 3.3 | [`coverage`] |
//! | P4 local computability | Fig. 7 | region tests here + `wsn-simnet` |
//!
//! [`threshold`] reproduces the paper's numerical calculations (λ_s, k_s);
//! [`optimize`] searches the corrected UDG tile geometry (see DESIGN.md §2
//! for why the paper's literal region definition needs correcting);
//! [`render`] regenerates the geometry figures as SVG.
//!
//! Build the paper's UDG-SENS topology on a Poisson deployment and check
//! its sparsity guarantee (property P1):
//!
//! ```
//! use wsn_core::params::UdgSensParams;
//! use wsn_core::tilegrid::TileGrid;
//! use wsn_core::udg::build_udg_sens;
//! use wsn_pointproc::{rng_from_seed, sample_poisson_window};
//!
//! let params = UdgSensParams::strict_default();
//! let grid = TileGrid::fit(10.0, params.tile_side);
//! let pts = sample_poisson_window(&mut rng_from_seed(1), 25.0, &grid.covered_area());
//!
//! let net = build_udg_sens(&pts, params, grid).unwrap();
//! assert!(net.degree_stats().max <= 4); // P1: max degree 4
//! assert_eq!(net.missing_links, 0);     // strict geometry always links
//! ```

pub mod coverage;
pub mod nn;
pub mod optimize;
pub mod params;
pub mod power;
pub mod render;
pub mod stretch;
pub mod subgraph;
pub mod threshold;
pub mod tilegrid;
pub mod udg;

pub use nn::{build_nn_sens, build_nn_sens_ordered, NnTileGeometry};
pub use params::{NnSensParams, UdgGeometryMode, UdgSensParams};
pub use subgraph::SensNetwork;
pub use tilegrid::{TileAssignment, TileGrid};
pub use udg::{build_udg_sens, build_udg_sens_ordered, UdgTileGeometry};
