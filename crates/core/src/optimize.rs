//! Search over corrected UDG tile geometries.
//!
//! The strict-mode geometry has four lengths `(a, r_0, r_e, d_e)` under the
//! visibility constraints of [`UdgSensParams::validate`]. Restricting to
//! *disjoint* regions makes the good-tile probability an exact product
//! ([`crate::threshold::p_good_udg_analytic`]), so the supercritical density
//!
//! `λ_s(geometry) = inf { λ : P[good](λ) ≥ 0.593 }`
//!
//! is computable by bisection without Monte Carlo. This module grid-searches
//! the feasible set for the geometry minimising λ_s — the corrected
//! counterpart of the paper's "numerical calculations showed that the
//! smallest value of λ … is 1.568".

use serde::Serialize;

use crate::params::{UdgGeometryMode, UdgSensParams};
use crate::threshold::{p_good_udg_analytic, GOODNESS_TARGET};

/// Result of the geometry search.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct OptimizedUdgGeometry {
    pub params: UdgSensParams,
    /// Supercritical density of the winning geometry.
    pub lambda_s: f64,
}

/// λ_s for one disjoint strict geometry by bisection on the analytic
/// formula. `None` when the geometry is infeasible or not disjoint.
pub fn lambda_s_analytic(params: UdgSensParams, target: f64) -> Option<f64> {
    params.validate().ok()?;
    p_good_udg_analytic(params, 1.0)?; // disjointness check
    let (mut lo, mut hi) = (1e-6, 1e4);
    // P is continuous and strictly increasing in λ with limits 0 and 1.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if p_good_udg_analytic(params, mid).unwrap() < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Grid-search strict geometries for minimal λ_s.
///
/// For fixed `(a, r_0, r_e)` the probability does not depend on `d_e`, so it
/// suffices to check that a feasible `d_e` exists:
///
/// * containment: `d_e ≤ a/2 − r_e`
/// * rep→relay:   `d_e ≤ radius − r_e − r_0`
/// * relay↔relay: `d_e ≥ (a − radius + 2·r_e) / 2`
/// * disjoint from C0: `d_e ≥ r_0 + r_e`
/// * adjacent relays disjoint: `d_e ≥ √2·r_e`
pub fn optimize_udg_geometry(steps: usize) -> OptimizedUdgGeometry {
    let radius = 1.0;
    let mut best: Option<OptimizedUdgGeometry> = None;
    for ia in 0..steps {
        // a ∈ (0.5, 2.0]; larger tiles need impossible relay spans.
        let a = 0.5 + 1.5 * (ia as f64 + 1.0) / steps as f64;
        for ir0 in 0..steps {
            let r0 = 0.02 + (a * 0.5 - 0.02) * (ir0 as f64) / steps as f64;
            for ire in 0..steps {
                let re = 0.02 + 0.5 * (ire as f64) / steps as f64;
                let de_hi = (a * 0.5 - re).min(radius - re - r0);
                let de_lo = ((a - radius + 2.0 * re) * 0.5)
                    .max(r0 + re)
                    .max(std::f64::consts::SQRT_2 * re);
                if de_lo > de_hi {
                    continue;
                }
                let params = UdgSensParams {
                    tile_side: a,
                    r0,
                    relay_radius: re,
                    relay_offset: 0.5 * (de_lo + de_hi),
                    radius,
                    mode: UdgGeometryMode::Strict,
                };
                if let Some(ls) = lambda_s_analytic(params, GOODNESS_TARGET) {
                    if best.is_none_or(|b| ls < b.lambda_s) {
                        best = Some(OptimizedUdgGeometry {
                            params,
                            lambda_s: ls,
                        });
                    }
                }
            }
        }
    }
    best.expect("the feasible set is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::p_good_udg;

    #[test]
    fn lambda_s_analytic_inverts_the_probability() {
        let p = UdgSensParams::strict_default();
        let ls = lambda_s_analytic(p, GOODNESS_TARGET).unwrap();
        let back = p_good_udg_analytic(p, ls).unwrap();
        assert!((back - GOODNESS_TARGET).abs() < 1e-9, "P(λ_s) = {back}");
    }

    #[test]
    fn infeasible_geometries_return_none() {
        let mut p = UdgSensParams::strict_default();
        p.relay_offset = 2.0; // outside the tile
        assert!(lambda_s_analytic(p, GOODNESS_TARGET).is_none());
        assert!(lambda_s_analytic(UdgSensParams::paper(), GOODNESS_TARGET).is_none());
    }

    #[test]
    fn optimizer_beats_or_matches_the_default() {
        let opt = optimize_udg_geometry(14);
        let default_ls =
            lambda_s_analytic(UdgSensParams::strict_default(), GOODNESS_TARGET).unwrap();
        assert!(
            opt.lambda_s <= default_ls + 1e-9,
            "optimised {} vs default {default_ls}",
            opt.lambda_s
        );
        assert_eq!(opt.params.validate(), Ok(()));
    }

    #[test]
    fn optimum_is_stable_under_refinement() {
        let coarse = optimize_udg_geometry(10);
        let fine = optimize_udg_geometry(20);
        // Refinement can only improve (or roughly match) the objective.
        assert!(fine.lambda_s <= coarse.lambda_s * 1.02);
    }

    #[test]
    fn optimized_geometry_agrees_with_monte_carlo() {
        let opt = optimize_udg_geometry(12);
        let mc = p_good_udg(opt.params, opt.lambda_s, 4000, 17);
        assert!(
            (mc - GOODNESS_TARGET).abs() < 0.04,
            "MC at λ_s: {mc} (target {GOODNESS_TARGET})"
        );
    }
}
