//! The `wsn-scenarios bench` emitter: the repo's recorded performance
//! trajectory for the tile-sharded construction pipeline.
//!
//! For each topology × deployment size the harness runs the *sharded*
//! pipeline and the *monolithic* reference builder on the same deployment,
//! verifies they are edge-identical (a bench that silently benchmarks a
//! wrong graph is worthless), and records wall-clock per phase, throughput
//! in nodes/second, and a peak-RSS proxy read from `/proc/self/status`.
//! The machine-readable result (`BENCH_pipeline.json`) is the baseline
//! future scaling PRs diff against.
//!
//! Methodology notes, so numbers stay comparable across machines:
//!
//! * The sharded build runs *first*, then the monolithic one — `VmHWM` is a
//!   high-water mark, so this order lets the sharded peak be observed
//!   before the (larger) monolithic allocations raise the mark.
//! * `threads` records the effective rayon worker count; on a single-core
//!   host any speedup is purely algorithmic (no global edge sort,
//!   early-exit emptiness probes, cache-dense shard-local indexes).
//! * Every row re-samples its deployment from `(seed, topology, n)`, so
//!   rows are independent and reproducible.

use std::time::Instant;

use serde::Serialize;
use wsn_core::nn::{build_nn_sens, build_nn_sens_ordered};
use wsn_core::params::{NnSensParams, UdgSensParams};
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::{build_udg_sens, build_udg_sens_ordered};
use wsn_geom::hash::derive_seed2;
use wsn_geom::{Aabb, ShardGrid};
use wsn_graph::Csr;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointOrder, PointSet};
use wsn_rgg::ordered::build_knn_on_order;
use wsn_rgg::{
    build_gabriel, build_gabriel_ordered, build_knn, build_knn_ordered, build_rng,
    build_rng_ordered, build_udg, build_udg_ordered, build_yao, build_yao_ordered,
};
use wsn_simnet::{distributed_build_udg, ShardAccounting};
use wsn_spatial::GridIndex;

/// Schema tag of `BENCH_pipeline.json`. `/2` added the `thread_scaling`
/// section and `host_cpus`; the gate names this version in its diagnostics.
pub const PIPELINE_SCHEMA: &str = "wsn-bench-pipeline/2";

/// Shard side (in topology tiles) used by every benchmarked sharded build.
const SHARD_TILES: usize = 16;

/// The thread counts every recorded scaling curve sweeps.
pub const THREAD_LADDER: &[usize] = &[1, 2, 4, 8];

/// One topology × size measurement.
#[derive(Clone, Debug, Serialize)]
pub struct BenchRow {
    pub topology: String,
    /// Expected node count (the Poisson intensity × window area).
    pub n_target: u64,
    /// Realised node count of the sampled deployment.
    pub nodes: u64,
    pub edges: u64,
    pub lambda: f64,
    pub side: f64,
    pub shard_tiles: usize,
    pub shards: usize,
    /// Phase timings of the benchmarked path, seconds.
    pub deploy_secs: f64,
    /// Building the shared gather index (the halo-exchange substrate).
    pub gather_index_secs: f64,
    pub sharded_secs: f64,
    pub monolithic_secs: f64,
    /// Verifying the stitched CSR equals the monolithic one.
    pub verify_secs: f64,
    pub speedup: f64,
    pub sharded_nodes_per_sec: f64,
    pub monolithic_nodes_per_sec: f64,
    pub edge_identical: bool,
    /// `VmRSS` after the sharded build, kB (0 when unavailable).
    pub rss_after_sharded_kb: u64,
    /// `VmRSS` after the monolithic build, kB.
    pub rss_after_monolithic_kb: u64,
}

/// Per-shard message accounting of one distributed Fig. 7 build.
#[derive(Clone, Debug, Serialize)]
pub struct DistributedRow {
    pub nodes: u64,
    pub rounds: u64,
    pub msgs_total: u64,
    pub build_secs: f64,
    pub accounting: ShardAccounting,
}

/// One point of the thread-scaling curve: the Morton-ordered sharded build
/// of one topology × size, run with `RAYON_NUM_THREADS` pinned to `threads`.
#[derive(Clone, Debug, Serialize, serde::Deserialize)]
pub struct ThreadScalingRow {
    pub topology: String,
    pub n_target: u64,
    pub nodes: u64,
    /// The pinned worker count for this point (not the host's).
    pub threads: usize,
    pub build_secs: f64,
    pub nodes_per_sec: f64,
    /// `threads = 1` wall-clock over this point's wall-clock.
    pub speedup_vs_serial: f64,
    /// `speedup_vs_serial / threads` — 1.0 is perfect scaling.
    pub efficiency: f64,
    /// The CSR at this thread count is byte-identical to the `threads = 1`
    /// build (fingerprint equality; the fan-out must be schedule-free).
    pub edge_identical: bool,
}

/// The whole `BENCH_pipeline.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct BenchReport {
    pub schema: &'static str,
    pub quick: bool,
    pub seed: u64,
    /// Effective rayon worker count (`RAYON_NUM_THREADS` or the host's
    /// available parallelism).
    pub threads: usize,
    /// `VmHWM` at the end of the run, kB — the whole-process peak.
    pub vm_hwm_kb: u64,
    /// Physical parallelism of the recording host. The gate's speedup and
    /// efficiency checks only bind where `threads <= host_cpus` — a 1-core
    /// host records an honest flat curve rather than a fake speedup.
    pub host_cpus: usize,
    pub rows: Vec<BenchRow>,
    /// The threads × topology × n scaling curve (see [`THREAD_LADDER`]).
    pub thread_scaling: Vec<ThreadScalingRow>,
    pub distributed: Vec<DistributedRow>,
}

/// The host's physical parallelism, independent of `RAYON_NUM_THREADS`.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Read a `VmRSS:`/`VmHWM:` style field from `/proc/self/status`, in kB.
fn proc_status_kb(field: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with(field))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

pub(crate) fn effective_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The benchmarked construction kinds (a subset of `TopologySpec` with the
/// bench's fixed parameters baked in).
#[derive(Clone, Copy)]
enum Kind {
    Udg,
    Knn { k: usize },
    Gabriel,
    Rng,
    Yao { cones: usize },
    UdgSens,
    NnSens { a: f64, k: usize },
}

struct Cell {
    label: &'static str,
    kind: Kind,
    lambda: f64,
    /// Largest n this kind runs at (NN-SENS's k-NN base with the paper-scale
    /// k dominates everything else; capping it keeps the suite bounded).
    max_n: u64,
}

const CELLS: &[Cell] = &[
    Cell {
        label: "udg(r=1)",
        kind: Kind::Udg,
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "knn(k=8)",
        kind: Kind::Knn { k: 8 },
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "gabriel(r=1)",
        kind: Kind::Gabriel,
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "rng(r=1)",
        kind: Kind::Rng,
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "yao(r=1,c=6)",
        kind: Kind::Yao { cones: 6 },
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "udg-sens",
        kind: Kind::UdgSens,
        lambda: 10.0,
        max_n: u64::MAX,
    },
    Cell {
        label: "nn-sens(a=1.2,k=400)",
        kind: Kind::NnSens { a: 1.2, k: 400 },
        lambda: 1.0,
        max_n: 100_000,
    },
];

/// Window for an expected `n` nodes at intensity `lambda`, fitted to whole
/// SENS tiles when the construction needs a grid.
fn window_for(kind: Kind, lambda: f64, n: u64) -> (f64, Option<TileGrid>) {
    let side = ((n as f64) / lambda).sqrt();
    match kind {
        Kind::UdgSens => {
            let grid = TileGrid::fit(side, UdgSensParams::strict_default().tile_side);
            (side, Some(grid))
        }
        Kind::NnSens { a, k } => {
            let grid = TileGrid::fit(side, NnSensParams { a, k }.tile_side());
            (side, Some(grid))
        }
        _ => (side, None),
    }
}

/// Edge count + node count of whichever representation a kind builds.
fn graph_dims(g: &Csr) -> (u64, u64) {
    (g.n() as u64, g.m() as u64)
}

/// The plan tile side each kind actually shards with: the query radius for
/// the radius-bounded graphs, the k-NN halo for `Knn`.
fn plan_tile_for(kind: Kind, points: &PointSet) -> f64 {
    match kind {
        Kind::Knn { k } => wsn_rgg::knn_halo(points, k),
        _ => 1.0,
    }
}

fn shard_count_for(points: &PointSet, kind: Kind, grid: Option<&TileGrid>) -> usize {
    match grid {
        // SENS constructions shard by tile rows.
        Some(g) => g.rows(),
        None => points
            .bounding_box()
            .map(|bb| ShardGrid::new(&bb, plan_tile_for(kind, points), SHARD_TILES).shard_count())
            .unwrap_or(0),
    }
}

fn bench_cell(cell: &Cell, n: u64, seed: u64) -> BenchRow {
    let (side, grid) = window_for(cell.kind, cell.lambda, n);
    let window = grid
        .as_ref()
        .map(|g| g.covered_area())
        .unwrap_or_else(|| Aabb::square(side));

    let t = Instant::now();
    let points = sample_poisson_window(&mut rng_from_seed(seed), cell.lambda, &window);
    let deploy_secs = t.elapsed().as_secs_f64();

    // The shared gather index is the pipeline's halo-exchange substrate;
    // time one build of it explicitly so the phase is visible (the sharded
    // timings below include their own, identical, build). The cell matches
    // what the kind's builder actually uses: the k-NN kinds index at their
    // expected k-point radius, everything else at the query radius.
    let gather_cell = match cell.kind {
        Kind::Knn { k } | Kind::NnSens { k, .. } => wsn_rgg::knn_halo(&points, k) / 3.0,
        _ => 1.0,
    };
    let t = Instant::now();
    let gather = GridIndex::build(&points, gather_cell);
    let gather_index_secs = t.elapsed().as_secs_f64();
    drop(gather);

    // Sharded first (see module docs for the VmHWM rationale).
    let t = Instant::now();
    let sharded: Box<dyn EdgeView> = build(cell.kind, &points, grid.clone(), true);
    let sharded_secs = t.elapsed().as_secs_f64();
    let rss_after_sharded_kb = proc_status_kb("VmRSS");

    let t = Instant::now();
    let mono: Box<dyn EdgeView> = build(cell.kind, &points, grid.clone(), false);
    let monolithic_secs = t.elapsed().as_secs_f64();
    let rss_after_monolithic_kb = proc_status_kb("VmRSS");

    let t = Instant::now();
    let edge_identical = sharded.graph() == mono.graph();
    let verify_secs = t.elapsed().as_secs_f64();
    assert!(edge_identical, "{}: sharded != monolithic", cell.label);

    let (nodes, edges) = graph_dims(sharded.graph());
    BenchRow {
        topology: cell.label.to_string(),
        n_target: n,
        nodes,
        edges,
        lambda: cell.lambda,
        side,
        shard_tiles: SHARD_TILES,
        shards: shard_count_for(&points, cell.kind, grid.as_ref()),
        deploy_secs,
        gather_index_secs,
        sharded_secs,
        monolithic_secs,
        verify_secs,
        speedup: monolithic_secs / sharded_secs.max(1e-12),
        sharded_nodes_per_sec: nodes as f64 / sharded_secs.max(1e-12),
        monolithic_nodes_per_sec: nodes as f64 / monolithic_secs.max(1e-12),
        edge_identical,
        rss_after_sharded_kb,
        rss_after_monolithic_kb,
    }
}

/// Uniform view over `Csr` and `SensNetwork` results.
trait EdgeView {
    fn graph(&self) -> &Csr;
}
impl EdgeView for Csr {
    fn graph(&self) -> &Csr {
        self
    }
}
impl EdgeView for wsn_core::subgraph::SensNetwork {
    fn graph(&self) -> &Csr {
        &self.graph
    }
}

fn build(
    kind: Kind,
    points: &PointSet,
    grid: Option<TileGrid>,
    sharded: bool,
) -> Box<dyn EdgeView> {
    match kind {
        Kind::Udg => Box::new(if sharded {
            build_udg_ordered(points, 1.0, SHARD_TILES)
        } else {
            build_udg(points, 1.0)
        }),
        Kind::Knn { k } => Box::new(if sharded {
            build_knn_ordered(points, k, SHARD_TILES)
        } else {
            build_knn(points, k)
        }),
        Kind::Gabriel => Box::new(if sharded {
            build_gabriel_ordered(points, 1.0, SHARD_TILES)
        } else {
            build_gabriel(points, 1.0)
        }),
        Kind::Rng => Box::new(if sharded {
            build_rng_ordered(points, 1.0, SHARD_TILES)
        } else {
            build_rng(points, 1.0)
        }),
        Kind::Yao { cones } => Box::new(if sharded {
            build_yao_ordered(points, 1.0, cones, SHARD_TILES)
        } else {
            build_yao(points, 1.0, cones)
        }),
        Kind::UdgSens => {
            let params = UdgSensParams::strict_default();
            let grid = grid.expect("SENS grid");
            Box::new(
                if sharded {
                    build_udg_sens_ordered(points, &PointOrder::morton(points), params, grid)
                } else {
                    build_udg_sens(points, params, grid)
                }
                .expect("strict defaults valid"),
            )
        }
        Kind::NnSens { a, k } => {
            let params = NnSensParams { a, k };
            let grid = grid.expect("SENS grid");
            Box::new(
                if sharded {
                    let order = PointOrder::morton(points);
                    let base = build_knn_on_order(&order, k, SHARD_TILES);
                    build_nn_sens_ordered(points, &order, &base, params, grid)
                } else {
                    let base = build_knn(points, k);
                    build_nn_sens(points, &base, params, grid)
                }
                .expect("bench NN-SENS params valid"),
            )
        }
    }
}

/// Distributed Fig. 7 construction with per-shard message accounting (the
/// protocol engine is message-granular, so this runs at a smaller n).
fn bench_distributed(n: u64, seed: u64) -> DistributedRow {
    let params = UdgSensParams::strict_default();
    let lambda = 10.0;
    let side = ((n as f64) / lambda).sqrt();
    let grid = TileGrid::fit(side, params.tile_side);
    let window = grid.covered_area();
    let points = sample_poisson_window(&mut rng_from_seed(seed), lambda, &window);
    let t = Instant::now();
    let build = distributed_build_udg(&points, params, grid).expect("strict defaults valid");
    let build_secs = t.elapsed().as_secs_f64();
    DistributedRow {
        nodes: points.len() as u64,
        rounds: build.rounds,
        msgs_total: build.stats.sent,
        build_secs,
        accounting: ShardAccounting::of(&build, SHARD_TILES),
    }
}

/// Run `f` with `RAYON_NUM_THREADS` pinned to `threads`, restoring the
/// ambient value (or its absence) afterwards.
fn with_thread_count<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let key = "RAYON_NUM_THREADS";
    let ambient = std::env::var(key).ok();
    std::env::set_var(key, threads.to_string());
    let out = f();
    match ambient {
        Some(v) => std::env::set_var(key, v),
        None => std::env::remove_var(key),
    }
    out
}

/// The topology subset the scaling curve sweeps: one radius-bounded kind,
/// one witness-checked proximity kind, and the k-NN kind — together they
/// cover all three shard work profiles without rerunning the whole matrix.
const SCALING_CELLS: &[(&str, Kind)] = &[
    ("udg(r=1)", Kind::Udg),
    ("rng(r=1)", Kind::Rng),
    ("knn(k=8)", Kind::Knn { k: 8 }),
];

/// Record the thread-scaling curve: the Morton-ordered sharded build of
/// each `SCALING_CELLS` topology at each size, swept over [`THREAD_LADDER`]
/// in-process. Each thread count's CSR is compared against the
/// `threads = 1` build — the fan-out is deterministic by construction, and
/// the curve records the proof alongside the timings.
pub fn run_thread_scaling(sizes: &[u64], seed: u64) -> Vec<ThreadScalingRow> {
    let lambda = 10.0;
    let mut out = Vec::new();
    for (ci, &(label, kind)) in SCALING_CELLS.iter().enumerate() {
        for (si, &n) in sizes.iter().enumerate() {
            let side = ((n as f64) / lambda).sqrt();
            let window = Aabb::square(side);
            let row_seed = derive_seed2(seed, 0x5CA1E ^ ci as u64, si as u64);
            let points = sample_poisson_window(&mut rng_from_seed(row_seed), lambda, &window);
            let mut serial_secs = 0.0;
            let mut serial_graph: Option<Csr> = None;
            for &threads in THREAD_LADDER {
                eprintln!("bench: thread-scaling {label} n={n} threads={threads} ...");
                let (graph, secs) = with_thread_count(threads, || {
                    let t = Instant::now();
                    let g = build(kind, &points, None, true);
                    (g, t.elapsed().as_secs_f64())
                });
                let edge_identical = match &serial_graph {
                    None => {
                        serial_secs = secs;
                        serial_graph = Some(graph.graph().clone());
                        true
                    }
                    Some(base) => graph.graph() == base,
                };
                assert!(
                    edge_identical,
                    "{label} n={n}: threads={threads} CSR differs from threads=1"
                );
                let speedup = serial_secs / secs.max(1e-12);
                out.push(ThreadScalingRow {
                    topology: label.to_string(),
                    n_target: n,
                    nodes: points.len() as u64,
                    threads,
                    build_secs: secs,
                    nodes_per_sec: points.len() as f64 / secs.max(1e-12),
                    speedup_vs_serial: speedup,
                    efficiency: speedup / threads as f64,
                    edge_identical,
                });
            }
        }
    }
    out
}

/// Run the full pipeline bench and return the report.
///
/// `quick` keeps every size at 10⁴ (the CI smoke configuration); the full
/// profile runs n ∈ {10⁴, 10⁵, 10⁶} per topology (subject to each cell's
/// `max_n` cap).
pub fn run_pipeline_bench(quick: bool, seed: u64) -> BenchReport {
    let sizes: &[u64] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    for (ci, cell) in CELLS.iter().enumerate() {
        for (si, &n) in sizes.iter().enumerate() {
            if n > cell.max_n {
                eprintln!(
                    "bench: skipping {} at n={n} (capped at {})",
                    cell.label, cell.max_n
                );
                continue;
            }
            let row_seed = derive_seed2(seed, ci as u64, si as u64);
            eprintln!("bench: {} n={n} ...", cell.label);
            let row = bench_cell(cell, n, row_seed);
            eprintln!(
                "bench: {} n={} sharded {:.3}s mono {:.3}s speedup {:.2}x",
                cell.label, row.nodes, row.sharded_secs, row.monolithic_secs, row.speedup
            );
            rows.push(row);
        }
    }
    let distributed = vec![bench_distributed(
        if quick { 5_000 } else { 20_000 },
        derive_seed2(seed, 0xD15C0, 0),
    )];
    // The scaling curve stays at moderate sizes even in the full profile:
    // relative scaling saturates well before 10⁶ nodes, and the curve runs
    // every point four times over the thread ladder.
    let scaling_sizes: &[u64] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let thread_scaling = run_thread_scaling(scaling_sizes, seed);
    BenchReport {
        schema: PIPELINE_SCHEMA,
        quick,
        seed,
        threads: effective_threads(),
        vm_hwm_kb: proc_status_kb("VmHWM"),
        host_cpus: host_cpus(),
        rows,
        thread_scaling,
        distributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serialises() {
        // A miniature pass through every cell at a tiny n exercises the full
        // emitter path (including the edge-identity assertion) in ~a second.
        let mut rows = Vec::new();
        for (ci, cell) in CELLS.iter().enumerate() {
            rows.push(bench_cell(cell, 2_000, derive_seed2(7, ci as u64, 0)));
        }
        let report = BenchReport {
            schema: PIPELINE_SCHEMA,
            quick: true,
            seed: 7,
            threads: effective_threads(),
            vm_hwm_kb: proc_status_kb("VmHWM"),
            host_cpus: host_cpus(),
            rows,
            thread_scaling: run_thread_scaling(&[2_000], 7),
            distributed: vec![bench_distributed(2_000, 3)],
        };
        for row in &report.rows {
            assert!(row.edge_identical, "{}", row.topology);
            assert!(row.sharded_secs > 0.0 && row.monolithic_secs > 0.0);
            assert!(row.nodes > 0);
        }
        assert_eq!(
            report.thread_scaling.len(),
            SCALING_CELLS.len() * THREAD_LADDER.len()
        );
        for row in &report.thread_scaling {
            assert!(
                row.edge_identical,
                "{} threads={}",
                row.topology, row.threads
            );
            assert!(row.build_secs > 0.0);
            if row.threads == 1 {
                assert!((row.speedup_vs_serial - 1.0).abs() < 1e-9);
            }
        }
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"schema\": \"wsn-bench-pipeline/2\""));
        assert!(json.contains("thread_scaling"));
        assert!(json.contains("msgs_per_shard"));
    }
}
