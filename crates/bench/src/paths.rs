//! Runtime output-path resolution.
//!
//! The bench emitters used to bake their default output path at *compile
//! time* via `env!("CARGO_MANIFEST_DIR")`, so a binary restored from a CI
//! cache — or any relocated checkout — silently wrote its baseline to the
//! stale absolute path of the machine that compiled it. The default is now
//! resolved at *run time*: walk up from the current working directory to
//! the enclosing Cargo workspace root, falling back to the working
//! directory itself. `--out` stays the explicit override.

use std::path::{Path, PathBuf};

/// The nearest ancestor of `start` (inclusive) whose `Cargo.toml` declares
/// a `[workspace]`.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(contents) = std::fs::read_to_string(&manifest) {
                if contents.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// [`workspace_root_from`] anchored at the current working directory.
pub fn workspace_root() -> Option<PathBuf> {
    workspace_root_from(&std::env::current_dir().ok()?)
}

/// Default location for a repo-level output file (`BENCH_pipeline.json`,
/// `BENCH_lifetime.json`, the golden directory): the workspace root when
/// one encloses the working directory, else the working directory.
pub fn default_output_path(file_name: &str) -> PathBuf {
    match workspace_root() {
        Some(root) => root.join(file_name),
        None => PathBuf::from(file_name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_the_enclosing_workspace_at_runtime() {
        // Cargo runs tests with cwd = the crate directory, which declares
        // no workspace of its own — resolution must walk up to the root.
        let root = workspace_root().expect("tests run inside the workspace");
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
        assert_ne!(
            root,
            PathBuf::from(env!("CARGO_MANIFEST_DIR")),
            "the crate manifest dir is not the workspace root"
        );
        assert_eq!(default_output_path("X.json"), root.join("X.json"));
    }

    #[test]
    fn walks_up_from_nested_directories() {
        let nested = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src");
        assert_eq!(
            workspace_root_from(&nested),
            workspace_root(),
            "resolution must not depend on the starting depth"
        );
    }

    #[test]
    fn no_workspace_means_none() {
        // A directory tree with no Cargo.toml anywhere above it.
        let dir = std::env::temp_dir().join("wsn-paths-test-no-workspace");
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(workspace_root_from(&dir), None);
    }
}
