//! The CI performance-regression gate.
//!
//! `wsn-scenarios gate` compares a freshly measured `BENCH_pipeline.json`
//! (the `bench --quick` artifact CI just produced) against the committed
//! baseline and fails the job when either
//!
//! * any fresh row reports `edge_identical: false` — a pipeline that got
//!   faster by building a different graph is a bug, not a win — or
//! * a topology's sharded throughput (`sharded_nodes_per_sec`) fell more
//!   than [`NODES_PER_SEC_DROP_TOLERANCE`] below the baseline row of the
//!   same `(topology, n_target)`.
//!
//! `wsn-scenarios gate-lifetime` does the same for `BENCH_lifetime.json`:
//! it fails when any fresh locality-sweep row lost fingerprint identity
//! against the cold rebuild, when any plain row lost edge identity, or
//! when the incremental-vs-rebuild speedup at the **most-local sweep
//! point** (`target_dirty_shards == 1`) fell more than
//! [`LIFETIME_SPEEDUP_DROP_TOLERANCE`] below the committed baseline — the
//! regression that would mean repair cost stopped tracking churn locality.
//!
//! `gate-lifetime` additionally holds three self-checks on a full
//! (non-quick) committed baseline — CI's quick fresh runs never reach the
//! sizes involved, so each is a property of the committed document that a
//! careless re-bless would otherwise erase:
//!
//! * the **splice-floor rung**: a UDG most-local sweep row at
//!   [`SPLICE_FLOOR_N_TARGET`] nodes with speedup ≥
//!   [`SPLICE_FLOOR_MIN_SPEEDUP`] — re-recording a baseline whose
//!   10⁶-node one-dirty-shard epoch cost regressed back toward the old
//!   O(n + m) splice behaviour fails CI instead of quietly re-blessing
//!   the regression;
//! * the **k-NN certificate rung**: the k-NN most-local row at the same
//!   size must hold speedup ≥ [`KNN_LOCAL_MIN_SPEEDUP`] — the whole-group
//!   `covers_all` certificate over-escalated stragglers and floored this
//!   rung at ~342× while every other topology reached 2500–4800×; the
//!   per-group kth-distance margin certificate lifted it to ~369× (and
//!   ~111× → ~142× at 10⁵), and this rung keeps the certificate from
//!   silently decaying into the always-escalate regime (~0.5×);
//! * **HNG sweep presence**: the baseline must carry locality-sweep rows
//!   for the hierarchical-neighbor-graph topology, so the third
//!   SENS-class construction can never drop out of the recorded repair
//!   economics unnoticed.
//!
//! `wsn-scenarios gate-serve` guards `BENCH_serve.json`: every fresh row
//! must be answer-identical to its single-threaded replay oracle with zero
//! query errors, and a matched `(topology, n_target, readers)` row's qps
//! must stay within [`SERVE_QPS_DROP_TOLERANCE`] of the committed
//! baseline.
//!
//! `gate` additionally guards the `thread_scaling` section of
//! `BENCH_pipeline.json`: every fresh scaling row must be edge-identical
//! to its `threads = 1` build, every fresh `(topology, n_target)` curve
//! must record the complete thread ladder, matched rows hold the same
//! throughput band as the plain rows, and a full committed baseline
//! recorded on a multi-core host must show `speedup_vs_serial > 1` with at
//! least [`MIN_PARALLEL_EFFICIENCY`] on every in-core multi-thread point
//! (`1 < threads ≤ host_cpus`). On a 1-core recording host the
//! speedup/efficiency checks are vacuous by design — the curve records an
//! honest flat line, and the identity + ladder checks still bind.
//!
//! Every gate first checks the document's `schema` tag on both sides and
//! fails with a diagnostic *naming the expected version* on a mismatch or
//! a missing tag — "wrong baseline file" and "stale baseline recorded by
//! an older emitter" are the two classic silent-comparison bugs.
//!
//! Rows present on only one side (e.g. the committed baseline carries the
//! full 10⁴–10⁶ grid while CI measures the quick 10⁴ one) are reported as
//! skipped, never failed. A document *missing the gated section entirely*
//! (a partial or crashed bench run) is a loud failure with a named side
//! and section, not a silent empty comparison. The tolerances live in
//! exactly one place so retuning a band is a one-line diff.

use serde::value::Value;

use crate::lifetime::{LIFETIME_SCHEMA, RENEWAL_POLICIES};
use crate::pipeline::{PIPELINE_SCHEMA, THREAD_LADDER};
use crate::serve::SERVE_SCHEMA;

/// Allowed fractional drop of a serve row's `qps` against the committed
/// baseline (0.50 = "at least half of baseline throughput"). The widest
/// band of the three gates: a serve row's wall clock folds repair,
/// publication *and* reader scheduling together, and on an oversubscribed
/// CI core the reader-count rows jitter hardest — the gate exists to catch
/// an algorithmic collapse (a reader blocking on the splice, a cache gone
/// quadratic), not scheduler noise.
pub const SERVE_QPS_DROP_TOLERANCE: f64 = 0.50;

/// Allowed fractional drop of `sharded_nodes_per_sec` against the
/// committed baseline before the gate fails (0.40 = "at least 60% of
/// baseline throughput"). Deliberately wide: CI runners are slower and
/// noisier than the machine that recorded the baseline — this band
/// catches algorithmic regressions, not scheduler jitter.
pub const NODES_PER_SEC_DROP_TOLERANCE: f64 = 0.40;

/// Allowed fractional drop of the locality sweep's most-local speedup
/// against the committed baseline (0.60 = "at least 40% of baseline
/// speedup"). Wider than the throughput band: a speedup is a ratio of two
/// sub-millisecond measurements at the quick size, so scheduler jitter
/// cuts both ways — but losing more than half of a ≥5× speedup still
/// means the localized gather degraded to a global one.
pub const LIFETIME_SPEEDUP_DROP_TOLERANCE: f64 = 0.60;

/// The deployment size of the splice-floor acceptance rung.
pub const SPLICE_FLOOR_N_TARGET: u64 = 1_000_000;

/// Minimum UDG most-local (`target_dirty_shards == 1`) speedup a full
/// committed baseline must record at [`SPLICE_FLOOR_N_TARGET`] nodes. The
/// monolithic per-epoch `to_csr` capped this rung at ~4.2× (the splice was
/// O(n + m) no matter how local the churn); the chunked splice recorded
/// ~1680× on the baseline host, so 100× keeps an order of magnitude of
/// headroom for slower recording hosts while sitting far above anything an
/// O(n + m) splice could reach. UDG carries the claim because its repair
/// derivation is the cheapest — it was the topology the splice floor
/// dominated.
pub const SPLICE_FLOOR_MIN_SPEEDUP: f64 = 100.0;

/// Minimum k-NN most-local speedup a full committed baseline must record
/// at [`SPLICE_FLOOR_N_TARGET`] nodes. The whole-group `covers_all`
/// certificate re-derived whole straggler groups against escalated
/// extents and floored this rung at ~342× (~111× at 10⁵); the per-group
/// kth-distance margin certificate (escalate only when the kth candidate
/// actually reaches past the padded box's interior margin) recorded
/// ~369× at 10⁶ and ~142× at 10⁵ on the baseline host. 150× sits with
/// ~2.5× headroom under the measurement for slower recording hosts while
/// staying far above the always-escalating failure mode this rung exists
/// to catch (a whole-population index per epoch lands near 0.5×, like
/// HNG's clique stragglers).
pub const KNN_LOCAL_MIN_SPEEDUP: f64 = 150.0;

/// Minimum parallel efficiency (`speedup_vs_serial / threads`) a full
/// committed baseline must record on every thread-scaling point with
/// `1 < threads ≤ host_cpus`. 0.35 is deliberately loose — the shim's
/// fan-out pays a queue lock per batch and the builds have serial stitch
/// phases — but it is far above the ~`1/threads` efficiency of a fan-out
/// that stopped parallelising at all, which is the regression this floor
/// exists to catch. Points with `threads > host_cpus` measure
/// oversubscription and are exempt.
pub const MIN_PARALLEL_EFFICIENCY: f64 = 0.35;

/// Outcome of one gate evaluation.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Rows compared against a matching baseline row.
    pub checked: usize,
    /// Human-readable failures; empty = gate passes.
    pub failures: Vec<String>,
    /// Rows without a baseline counterpart (informational).
    pub skipped: Vec<String>,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn row_key(row: &Value) -> Option<(String, u64)> {
    Some((
        row.get("topology")?.as_str()?.to_string(),
        row.get("n_target")?.as_u64()?,
    ))
}

/// A named top-level array section of a bench document, or a loud failure
/// naming the side and section — a partial `bench`/`bench-lifetime` run
/// must wedge the gate with a diagnostic, not slide through as an empty
/// comparison.
fn section<'a>(doc: &'a Value, name: &str, side: &str, report: &mut GateReport) -> &'a [Value] {
    match doc.get(name).and_then(|r| r.as_array()) {
        Some(rows) => rows,
        None => {
            report.failures.push(format!(
                "{side} document is missing its \"{name}\" section — partial bench run?"
            ));
            &[]
        }
    }
}

/// Check a document's `schema` tag against the version this gate was built
/// for, naming the expected version in the diagnostic. A missing tag fails
/// too: an untagged document is a foreign or truncated file, and silently
/// comparing it hides exactly the drift the tag exists to catch.
fn check_schema(doc: &Value, expected: &str, side: &str, report: &mut GateReport) {
    match doc.get("schema").and_then(|v| v.as_str()) {
        Some(s) if s == expected => {}
        Some(s) => report.failures.push(format!(
            "{side} document schema is \"{s}\" but this gate expects \"{expected}\" — \
             stale baseline or mismatched emitter?"
        )),
        None => report.failures.push(format!(
            "{side} document has no \"schema\" tag — this gate expects \"{expected}\""
        )),
    }
}

/// Evaluate the gate: `fresh` is the CI measurement, `baseline` the
/// committed `BENCH_pipeline.json`.
pub fn gate_pipeline(baseline: &Value, fresh: &Value) -> GateReport {
    let mut report = GateReport::default();
    check_schema(baseline, PIPELINE_SCHEMA, "baseline", &mut report);
    check_schema(fresh, PIPELINE_SCHEMA, "fresh", &mut report);
    let baseline_rows: Vec<((String, u64), &Value)> =
        section(baseline, "rows", "baseline", &mut report)
            .iter()
            .filter_map(|r| row_key(r).map(|k| (k, r)))
            .collect();
    for row in section(fresh, "rows", "fresh", &mut report) {
        let Some(key) = row_key(row) else {
            report
                .failures
                .push("fresh row missing topology/n_target".into());
            continue;
        };
        let label = format!("{} @ n={}", key.0, key.1);
        // Correctness gate: never optional, even for unmatched rows.
        match row.get("edge_identical").and_then(|v| v.as_bool()) {
            Some(true) => {}
            _ => report
                .failures
                .push(format!("{label}: edge_identical is not true")),
        }
        let Some((_, base)) = baseline_rows.iter().find(|(k, _)| *k == key) else {
            report.skipped.push(label);
            continue;
        };
        // A missing or non-positive throughput on either side is a broken
        // document, not a pass — a zero baseline would make the floor 0
        // and green-light any regression.
        let mut nps = |doc: &Value, side: &str| -> Option<f64> {
            match doc.get("sharded_nodes_per_sec").and_then(|v| v.as_f64()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    report.failures.push(format!(
                        "{label}: {side} sharded_nodes_per_sec missing or ≤ 0"
                    ));
                    None
                }
            }
        };
        let (Some(fresh_nps), Some(base_nps)) = (nps(row, "fresh"), nps(base, "baseline")) else {
            continue;
        };
        report.checked += 1;
        let floor = base_nps * (1.0 - NODES_PER_SEC_DROP_TOLERANCE);
        if fresh_nps < floor {
            report.failures.push(format!(
                "{label}: sharded throughput {fresh_nps:.0} nodes/s fell below \
                 {:.0}% of baseline {base_nps:.0} (floor {floor:.0})",
                (1.0 - NODES_PER_SEC_DROP_TOLERANCE) * 100.0
            ));
        }
    }
    gate_thread_scaling(baseline, fresh, &mut report);
    if report.checked == 0 && report.failures.is_empty() {
        report
            .failures
            .push("no fresh row matched any baseline row — wrong baseline file?".into());
    }
    report
}

fn scaling_key(row: &Value) -> Option<(String, u64, u64)> {
    Some((
        row.get("topology")?.as_str()?.to_string(),
        row.get("n_target")?.as_u64()?,
        row.get("threads")?.as_u64()?,
    ))
}

/// The `thread_scaling` half of the pipeline gate (see module docs).
fn gate_thread_scaling(baseline: &Value, fresh: &Value, report: &mut GateReport) {
    let baseline_scaling: Vec<((String, u64, u64), &Value)> =
        section(baseline, "thread_scaling", "baseline", report)
            .iter()
            .filter_map(|r| scaling_key(r).map(|k| (k, r)))
            .collect();
    let mut ladders: std::collections::BTreeMap<(String, u64), Vec<u64>> = Default::default();
    for row in section(fresh, "thread_scaling", "fresh", report) {
        let Some(key) = scaling_key(row) else {
            report
                .failures
                .push("fresh thread_scaling row missing topology/n_target/threads".into());
            continue;
        };
        let label = format!("{} @ n={} threads={}", key.0, key.1, key.2);
        // Correctness gate: a thread count that changes the graph is a
        // scheduling leak, never a throughput trade-off.
        if row.get("edge_identical").and_then(|v| v.as_bool()) != Some(true) {
            report
                .failures
                .push(format!("{label}: edge_identical is not true"));
        }
        ladders
            .entry((key.0.clone(), key.1))
            .or_default()
            .push(key.2);
        let Some((_, base)) = baseline_scaling.iter().find(|(k, _)| *k == key) else {
            report.skipped.push(label);
            continue;
        };
        let mut nps = |doc: &Value, side: &str| -> Option<f64> {
            match doc.get("nodes_per_sec").and_then(|v| v.as_f64()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    report
                        .failures
                        .push(format!("{label}: {side} nodes_per_sec missing or ≤ 0"));
                    None
                }
            }
        };
        let (Some(fresh_nps), Some(base_nps)) = (nps(row, "fresh"), nps(base, "baseline")) else {
            continue;
        };
        report.checked += 1;
        let floor = base_nps * (1.0 - NODES_PER_SEC_DROP_TOLERANCE);
        if fresh_nps < floor {
            report.failures.push(format!(
                "{label}: scaling throughput {fresh_nps:.0} nodes/s fell below \
                 {:.0}% of baseline {base_nps:.0} (floor {floor:.0})",
                (1.0 - NODES_PER_SEC_DROP_TOLERANCE) * 100.0
            ));
        }
    }
    // Every fresh curve must record the complete thread ladder — a sweep
    // that silently dropped a thread count would thin the curve without
    // failing any per-row check.
    let expected: Vec<u64> = THREAD_LADDER.iter().map(|&t| t as u64).collect();
    for ((topology, n), mut threads) in ladders {
        threads.sort_unstable();
        threads.dedup();
        if threads != expected {
            report.failures.push(format!(
                "{topology} @ n={n}: thread ladder {threads:?} is incomplete — \
                 expected {expected:?}"
            ));
        }
    }
    // Full-baseline self-checks: a full committed baseline recorded on a
    // multi-core host must actually show parallel speedup on every
    // in-core multi-thread point. A 1-core recording host is exempt (its
    // honest curve is flat); points beyond the host's cores measure
    // oversubscription and are exempt too.
    if baseline.get("quick").and_then(|v| v.as_bool()) == Some(false) {
        if baseline_scaling.is_empty() {
            report.failures.push(
                "full baseline records no thread_scaling rows — the scaling curve \
                 dropped out of the committed baseline"
                    .into(),
            );
        }
        let host_cpus = baseline
            .get("host_cpus")
            .and_then(|v| v.as_u64())
            .unwrap_or(1);
        for ((topology, n, threads), row) in &baseline_scaling {
            if *threads <= 1 || *threads > host_cpus {
                continue;
            }
            let label = format!("baseline {topology} @ n={n} threads={threads}");
            let speedup = row
                .get("speedup_vs_serial")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            let efficiency = row
                .get("efficiency")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0);
            if speedup <= 1.0 {
                report.failures.push(format!(
                    "{label}: speedup_vs_serial {speedup:.2}x on a {host_cpus}-core \
                     recording host — the fan-out stopped scaling"
                ));
            } else if efficiency < MIN_PARALLEL_EFFICIENCY {
                report.failures.push(format!(
                    "{label}: parallel efficiency {efficiency:.2} is below the \
                     {MIN_PARALLEL_EFFICIENCY} floor"
                ));
            } else {
                report.checked += 1;
            }
        }
    }
}

fn sweep_key(row: &Value) -> Option<(String, u64, u64)> {
    Some((
        row.get("topology")?.as_str()?.to_string(),
        row.get("n_target")?.as_u64()?,
        row.get("target_dirty_shards")?.as_u64()?,
    ))
}

/// Evaluate the lifetime gate: `fresh` is the CI `bench-lifetime`
/// measurement, `baseline` the committed `BENCH_lifetime.json`.
pub fn gate_lifetime(baseline: &Value, fresh: &Value) -> GateReport {
    let mut report = GateReport::default();
    check_schema(baseline, LIFETIME_SCHEMA, "baseline", &mut report);
    check_schema(fresh, LIFETIME_SCHEMA, "fresh", &mut report);
    // Correctness gates first — never optional, even for unmatched rows:
    // a faster repair that walks a different topology is a bug.
    for row in section(fresh, "rows", "fresh", &mut report) {
        let label = row_key(row)
            .map(|(t, n)| format!("{t} @ n={n}"))
            .unwrap_or_else(|| "unkeyed row".into());
        if row.get("edge_identical").and_then(|v| v.as_bool()) != Some(true) {
            report
                .failures
                .push(format!("{label}: edge_identical is not true"));
        }
    }
    let baseline_sweep: Vec<((String, u64, u64), &Value)> =
        section(baseline, "locality_sweep", "baseline", &mut report)
            .iter()
            .filter_map(|r| sweep_key(r).map(|k| (k, r)))
            .collect();
    // Sweep comparisons tracked separately from the renewal checks: "no
    // sweep row matched anything" must stay a loud wrong-baseline failure
    // even when the renewal sections hold on their own.
    let mut sweep_checked = 0usize;
    for row in section(fresh, "locality_sweep", "fresh", &mut report) {
        let Some(key) = sweep_key(row) else {
            report
                .failures
                .push("fresh sweep row missing topology/n_target/target_dirty_shards".into());
            continue;
        };
        let label = format!("{} @ n={} locality={}", key.0, key.1, key.2);
        if row.get("fingerprint_identical").and_then(|v| v.as_bool()) != Some(true) {
            report
                .failures
                .push(format!("{label}: fingerprint_identical is not true"));
        }
        // The speedup band is pinned only at the most-local rung — that is
        // the point the locality refactor exists for; coarser rungs
        // converge to speedup ≈ 1 by design.
        if key.2 != 1 {
            continue;
        }
        let Some((_, base)) = baseline_sweep.iter().find(|(k, _)| *k == key) else {
            report.skipped.push(label);
            continue;
        };
        let mut speedup = |doc: &Value, side: &str| -> Option<f64> {
            match doc.get("speedup").and_then(|v| v.as_f64()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    report
                        .failures
                        .push(format!("{label}: {side} speedup missing or ≤ 0"));
                    None
                }
            }
        };
        let (Some(fresh_s), Some(base_s)) = (speedup(row, "fresh"), speedup(base, "baseline"))
        else {
            continue;
        };
        report.checked += 1;
        sweep_checked += 1;
        let floor = base_s * (1.0 - LIFETIME_SPEEDUP_DROP_TOLERANCE);
        if fresh_s < floor {
            report.failures.push(format!(
                "{label}: most-local speedup {fresh_s:.2}x fell below {:.0}% of \
                 baseline {base_s:.2}x (floor {floor:.2}x)",
                (1.0 - LIFETIME_SPEEDUP_DROP_TOLERANCE) * 100.0
            ));
        }
    }
    // Full-baseline self-checks: a *full* committed baseline must carry
    // the 10⁶-node UDG and k-NN most-local rows above their floors, and
    // must record HNG sweep rows at all. Quick documents (and the
    // miniature fixtures in tests) never reach those sizes, so the
    // self-checks key on the baseline's own `quick: false` marker.
    if baseline.get("quick").and_then(|v| v.as_bool()) == Some(false) {
        for (prefix, floor, what) in [
            (
                "udg",
                SPLICE_FLOOR_MIN_SPEEDUP,
                "the one-dirty-shard epoch cost regressed toward O(n + m)",
            ),
            (
                "knn",
                KNN_LOCAL_MIN_SPEEDUP,
                "the margin certificate regressed toward whole-group over-escalation",
            ),
        ] {
            let rung = baseline_sweep.iter().find(|((t, n, d), _)| {
                t.starts_with(prefix) && *n == SPLICE_FLOOR_N_TARGET && *d == 1
            });
            match rung {
                None => report.failures.push(format!(
                    "baseline has no {prefix} most-local sweep row at \
                     n={SPLICE_FLOOR_N_TARGET} — the {prefix} floor rung is not recorded"
                )),
                Some((_, row)) => match row.get("speedup").and_then(|v| v.as_f64()) {
                    Some(s) if s >= floor => report.checked += 1,
                    Some(s) => report.failures.push(format!(
                        "baseline {prefix} @ n={SPLICE_FLOOR_N_TARGET} locality=1: speedup \
                         {s:.2}x is below the {prefix} floor {floor:.1}x — {what}"
                    )),
                    None => report.failures.push(format!(
                        "baseline {prefix} @ n={SPLICE_FLOOR_N_TARGET} locality=1: \
                         speedup missing"
                    )),
                },
            }
        }
        if baseline_sweep
            .iter()
            .any(|((t, _, _), _)| t.starts_with("hng"))
        {
            report.checked += 1;
        } else {
            report.failures.push(
                "baseline records no hng locality-sweep rows — the HNG topology dropped \
                 out of the repair economics"
                    .into(),
            );
        }
    }
    // The renewal section is schedule-deterministic, so the same
    // invariants bind on both sides: a fresh run that lost them is a code
    // regression, a baseline that lost them is a careless re-bless.
    gate_renewal(baseline, "baseline", &mut report);
    gate_renewal(fresh, "fresh", &mut report);
    if sweep_checked == 0 && report.failures.is_empty() {
        report
            .failures
            .push("no fresh sweep row matched any baseline row — wrong baseline file?".into());
    }
    report
}

/// The renewal-section invariants of one `BENCH_lifetime.json` document:
/// every policy of [`RENEWAL_POLICIES`] present (named expected/found
/// diagnostics on a mismatch), the drain-only row actually partitioned
/// (otherwise every comparison is censored at the horizon), and the
/// energy-adding policies' lifetime-to-first-partition strictly exceeding
/// the drain-only baseline. Sink rotation adds no energy and is exempt
/// from the strict-exceed check.
fn gate_renewal(doc: &Value, side: &str, report: &mut GateReport) {
    let rows = section(doc, "renewal", side, report);
    if rows.is_empty() {
        return;
    }
    let found: Vec<&str> = rows
        .iter()
        .filter_map(|r| r.get("policy").and_then(|p| p.as_str()))
        .collect();
    if found != RENEWAL_POLICIES {
        report.failures.push(format!(
            "{side} renewal section: expected policies {RENEWAL_POLICIES:?}, found {found:?}"
        ));
        return;
    }
    let rounds = |policy: &str| -> Option<u64> {
        let row = rows
            .iter()
            .find(|r| r.get("policy").and_then(|p| p.as_str()) == Some(policy))?;
        row.get("lifetime_rounds").and_then(|v| v.as_u64())
    };
    let Some(none_rounds) = rounds("none") else {
        report.failures.push(format!(
            "{side} renewal section: \"none\" row has no lifetime_rounds"
        ));
        return;
    };
    let none_partitioned = rows
        .iter()
        .find(|r| r.get("policy").and_then(|p| p.as_str()) == Some("none"))
        .and_then(|r| r.get("partitioned"))
        .and_then(|v| v.as_bool());
    if none_partitioned != Some(true) {
        report.failures.push(format!(
            "{side} renewal section: the drain-only row never partitioned — the renewal \
             comparison is censored at the horizon"
        ));
        return;
    }
    for policy in ["mobile-charger", "solar"] {
        match rounds(policy) {
            Some(r) if r > none_rounds => report.checked += 1,
            Some(r) => report.failures.push(format!(
                "{side} renewal section: {policy} lifetime {r} rounds does not strictly \
                 exceed the drain-only baseline's {none_rounds}"
            )),
            None => report.failures.push(format!(
                "{side} renewal section: {policy} row has no lifetime_rounds"
            )),
        }
    }
}

fn serve_key(row: &Value) -> Option<(String, u64, u64)> {
    Some((
        row.get("topology")?.as_str()?.to_string(),
        row.get("n_target")?.as_u64()?,
        row.get("readers")?.as_u64()?,
    ))
}

/// Evaluate the serve gate: `fresh` is the CI `bench-serve` measurement,
/// `baseline` the committed `BENCH_serve.json`. Every fresh row must be
/// answer-identical to its replay oracle (`identical: true`) with zero
/// errors — matched or not — and a matched `(topology, n_target, readers)`
/// row's qps must stay within [`SERVE_QPS_DROP_TOLERANCE`] of baseline.
pub fn gate_serve(baseline: &Value, fresh: &Value) -> GateReport {
    let mut report = GateReport::default();
    check_schema(baseline, SERVE_SCHEMA, "baseline", &mut report);
    check_schema(fresh, SERVE_SCHEMA, "fresh", &mut report);
    let baseline_rows: Vec<((String, u64, u64), &Value)> =
        section(baseline, "rows", "baseline", &mut report)
            .iter()
            .filter_map(|r| serve_key(r).map(|k| (k, r)))
            .collect();
    for row in section(fresh, "rows", "fresh", &mut report) {
        let Some(key) = serve_key(row) else {
            report
                .failures
                .push("fresh serve row missing topology/n_target/readers".into());
            continue;
        };
        let label = format!("{} @ n={} readers={}", key.0, key.1, key.2);
        // Correctness gates: never optional, even for unmatched rows. A
        // service that got faster by answering differently (or by failing
        // queries) is a bug, not a win.
        if row.get("identical").and_then(|v| v.as_bool()) != Some(true) {
            report
                .failures
                .push(format!("{label}: identical is not true"));
        }
        match row.get("errors").and_then(|v| v.as_u64()) {
            Some(0) => {}
            Some(e) => report.failures.push(format!("{label}: {e} query error(s)")),
            None => report.failures.push(format!("{label}: errors missing")),
        }
        let Some((_, base)) = baseline_rows.iter().find(|(k, _)| *k == key) else {
            report.skipped.push(label);
            continue;
        };
        let mut qps = |doc: &Value, side: &str| -> Option<f64> {
            match doc.get("qps").and_then(|v| v.as_f64()) {
                Some(v) if v > 0.0 => Some(v),
                _ => {
                    report
                        .failures
                        .push(format!("{label}: {side} qps missing or ≤ 0"));
                    None
                }
            }
        };
        let (Some(fresh_qps), Some(base_qps)) = (qps(row, "fresh"), qps(base, "baseline")) else {
            continue;
        };
        report.checked += 1;
        let floor = base_qps * (1.0 - SERVE_QPS_DROP_TOLERANCE);
        if fresh_qps < floor {
            report.failures.push(format!(
                "{label}: qps {fresh_qps:.0} fell below {:.0}% of baseline \
                 {base_qps:.0} (floor {floor:.0})",
                (1.0 - SERVE_QPS_DROP_TOLERANCE) * 100.0
            ));
        }
    }
    if report.checked == 0 && report.failures.is_empty() {
        report
            .failures
            .push("no fresh serve row matched any baseline row — wrong baseline file?".into());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pipeline document with the current schema tag and an explicit
    /// `thread_scaling` section.
    fn pipeline_doc(rows_json: &str, scaling_json: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"schema": "{PIPELINE_SCHEMA}", "rows": {rows_json},
                 "thread_scaling": {scaling_json}}}"#
        ))
        .unwrap()
    }

    fn doc(rows_json: &str) -> Value {
        pipeline_doc(rows_json, "[]")
    }

    /// A serve document with the current schema tag.
    fn sdoc(rows_json: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"schema": "{SERVE_SCHEMA}", "rows": {rows_json}}}"#
        ))
        .unwrap()
    }

    fn row(topology: &str, n: u64, nps: f64, identical: bool) -> String {
        format!(
            r#"{{"topology": "{topology}", "n_target": {n},
                 "sharded_nodes_per_sec": {nps}, "edge_identical": {identical}}}"#
        )
    }

    #[test]
    fn passes_within_the_band() {
        let base = doc(&format!("[{}]", row("udg(r=1)", 10000, 100_000.0, true)));
        // 40% drop exactly is still allowed (strict-below fails).
        let fresh = doc(&format!("[{}]", row("udg(r=1)", 10000, 60_000.0, true)));
        let g = gate_pipeline(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1);
    }

    #[test]
    fn fails_below_the_band() {
        let base = doc(&format!("[{}]", row("udg(r=1)", 10000, 100_000.0, true)));
        let fresh = doc(&format!("[{}]", row("udg(r=1)", 10000, 59_000.0, true)));
        let g = gate_pipeline(&base, &fresh);
        assert!(!g.passed());
        assert!(g.failures[0].contains("fell below"));
    }

    #[test]
    fn fails_on_non_identical_edges_even_without_baseline_match() {
        let base = doc("[]");
        let fresh = doc(&format!("[{}]", row("rng(r=1)", 10000, 1e9, false)));
        let g = gate_pipeline(&base, &fresh);
        assert!(!g.passed());
        assert!(g.failures.iter().any(|f| f.contains("edge_identical")));
    }

    #[test]
    fn unmatched_rows_are_skipped_not_failed() {
        let base = doc(&format!("[{}]", row("udg(r=1)", 10000, 100_000.0, true)));
        let fresh = doc(&format!(
            "[{}, {}]",
            row("udg(r=1)", 10000, 90_000.0, true),
            row("udg(r=1)", 1000000, 1.0, true) // only in the fresh run
        ));
        let g = gate_pipeline(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1);
        assert_eq!(g.skipped, vec!["udg(r=1) @ n=1000000".to_string()]);
    }

    #[test]
    fn missing_throughput_fields_fail_not_pass() {
        // A baseline row without (or with a zeroed) sharded_nodes_per_sec
        // must fail the gate: a 0 baseline would set the floor to 0 and
        // wave any regression through.
        let base: Value = serde_json::from_str(
            r#"{"rows": [{"topology": "udg(r=1)", "n_target": 10000,
                 "edge_identical": true}]}"#,
        )
        .unwrap();
        let fresh = doc(&format!("[{}]", row("udg(r=1)", 10000, 1.0, true)));
        let g = gate_pipeline(&base, &fresh);
        assert!(!g.passed());
        assert!(g.failures.iter().any(|f| f.contains("missing or ≤ 0")));
        let zeroed = doc(&format!("[{}]", row("udg(r=1)", 10000, 0.0, true)));
        let g2 = gate_pipeline(
            &doc(&format!("[{}]", row("udg(r=1)", 10000, 100.0, true))),
            &zeroed,
        );
        assert!(!g2.passed());
    }

    fn renewal_row_json(policy: &str, rounds: u64, partitioned: bool) -> String {
        format!(
            r#"{{"policy": "{policy}", "lifetime_rounds": {rounds},
                 "partitioned": {partitioned}}}"#
        )
    }

    /// A renewal section that satisfies every invariant: the drain-only
    /// row partitions at 7, both energy-adding policies out-live it.
    fn good_renewal() -> String {
        format!(
            "[{}, {}, {}, {}]",
            renewal_row_json("none", 7, true),
            renewal_row_json("mobile-charger", 18, false),
            renewal_row_json("solar", 18, false),
            renewal_row_json("sink-rotation", 7, true),
        )
    }

    fn lifetime_doc_with_renewal(rows_json: &str, sweep_json: &str, renewal_json: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"schema": "{LIFETIME_SCHEMA}", "rows": {rows_json},
                 "locality_sweep": {sweep_json}, "renewal": {renewal_json}}}"#
        ))
        .unwrap()
    }

    fn lifetime_doc(rows_json: &str, sweep_json: &str) -> Value {
        lifetime_doc_with_renewal(rows_json, sweep_json, &good_renewal())
    }

    fn sweep_row(topology: &str, n: u64, target: u64, speedup: f64, identical: bool) -> String {
        format!(
            r#"{{"topology": "{topology}", "n_target": {n},
                 "target_dirty_shards": {target}, "speedup": {speedup},
                 "fingerprint_identical": {identical}}}"#
        )
    }

    #[test]
    fn lifetime_gate_passes_within_the_band_and_pins_only_the_local_rung() {
        let base = lifetime_doc(
            "[]",
            &format!(
                "[{}, {}]",
                sweep_row("udg(r=1)", 10000, 1, 10.0, true),
                sweep_row("udg(r=1)", 10000, 64, 1.1, true)
            ),
        );
        // 40% of baseline at the local rung passes (floor is exactly 4.0);
        // the coarse rung may collapse to ~1x without tripping anything.
        let fresh = lifetime_doc(
            "[]",
            &format!(
                "[{}, {}]",
                sweep_row("udg(r=1)", 10000, 1, 4.0, true),
                sweep_row("udg(r=1)", 10000, 64, 0.9, true)
            ),
        );
        let g = gate_lifetime(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        // 1 sweep comparison + 2 renewal strict-exceed checks per side.
        assert_eq!(g.checked, 5);
        let too_slow = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 3.9, true)),
        );
        let g2 = gate_lifetime(&base, &too_slow);
        assert!(!g2.passed());
        assert!(g2.failures[0].contains("most-local speedup"));
    }

    #[test]
    fn lifetime_gate_fails_on_lost_identity_anywhere() {
        let base = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("rng(r=1)", 10000, 1, 8.0, true)),
        );
        // A non-identical fingerprint fails even on an unmatched rung.
        let fresh = lifetime_doc(
            "[]",
            &format!(
                "[{}, {}]",
                sweep_row("rng(r=1)", 10000, 1, 9.0, true),
                sweep_row("rng(r=1)", 10000, 16, 2.0, false)
            ),
        );
        let g = gate_lifetime(&base, &fresh);
        assert!(!g.passed());
        assert!(g
            .failures
            .iter()
            .any(|f| f.contains("fingerprint_identical")));
        // And a plain row that lost edge identity fails too.
        let bad_rows = lifetime_doc(
            &format!("[{}]", row("rng(r=1)", 10000, 1e5, false)),
            &format!("[{}]", sweep_row("rng(r=1)", 10000, 1, 9.0, true)),
        );
        let g2 = gate_lifetime(&base, &bad_rows);
        assert!(!g2.passed());
        assert!(g2.failures.iter().any(|f| f.contains("edge_identical")));
    }

    #[test]
    fn lifetime_gate_skips_unmatched_and_fails_on_disjoint_docs() {
        let base = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 10.0, true)),
        );
        // A fresh full-size rung without a baseline counterpart is skipped.
        let fresh = lifetime_doc(
            "[]",
            &format!(
                "[{}, {}]",
                sweep_row("udg(r=1)", 10000, 1, 9.0, true),
                sweep_row("udg(r=1)", 1000000, 1, 2.0, true)
            ),
        );
        let g = gate_lifetime(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 5);
        assert_eq!(g.skipped.len(), 1);
        // Nothing matched at all → loud failure, not a silent pass, even
        // though both renewal sections hold on their own.
        let g2 = gate_lifetime(&base, &lifetime_doc("[]", "[]"));
        assert!(!g2.passed());
        assert!(g2.failures.iter().any(|f| f.contains("wrong baseline")));
    }

    #[test]
    fn renewal_gate_requires_the_full_policy_set_with_named_diagnostics() {
        let base = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 10.0, true)),
        );
        // Drop the solar row from the fresh document: the failure must
        // name both the expected set and what was actually found.
        let missing = lifetime_doc_with_renewal(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 9.0, true)),
            &format!(
                "[{}, {}, {}]",
                renewal_row_json("none", 7, true),
                renewal_row_json("mobile-charger", 18, false),
                renewal_row_json("sink-rotation", 7, true),
            ),
        );
        let g = gate_lifetime(&base, &missing);
        assert!(!g.passed());
        let f = g
            .failures
            .iter()
            .find(|f| f.contains("expected policies"))
            .expect("completeness diagnostic");
        assert!(f.contains("fresh") && f.contains("solar") && f.contains("mobile-charger"));
    }

    #[test]
    fn renewal_gate_pins_strict_exceed_and_an_uncensored_baseline() {
        let base = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 10.0, true)),
        );
        // A charger that merely ties the drain-only lifetime fails.
        let tied = lifetime_doc_with_renewal(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 9.0, true)),
            &format!(
                "[{}, {}, {}, {}]",
                renewal_row_json("none", 7, true),
                renewal_row_json("mobile-charger", 7, true),
                renewal_row_json("solar", 18, false),
                renewal_row_json("sink-rotation", 7, true),
            ),
        );
        let g = gate_lifetime(&base, &tied);
        assert!(!g.passed());
        assert!(g
            .failures
            .iter()
            .any(|f| f.contains("mobile-charger") && f.contains("strictly")));
        // A drain-only row that never partitioned censors everything.
        let censored = lifetime_doc_with_renewal(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 9.0, true)),
            &format!(
                "[{}, {}, {}, {}]",
                renewal_row_json("none", 18, false),
                renewal_row_json("mobile-charger", 18, false),
                renewal_row_json("solar", 18, false),
                renewal_row_json("sink-rotation", 18, false),
            ),
        );
        let g2 = gate_lifetime(&base, &censored);
        assert!(!g2.passed());
        assert!(g2.failures.iter().any(|f| f.contains("censored")));
        // And a document without the section at all fails loudly.
        let no_renewal: Value = serde_json::from_str(&format!(
            r#"{{"schema": "{LIFETIME_SCHEMA}", "rows": [],
                 "locality_sweep": [{}]}}"#,
            sweep_row("udg(r=1)", 10000, 1, 9.0, true)
        ))
        .unwrap();
        let g3 = gate_lifetime(&base, &no_renewal);
        assert!(!g3.passed());
        assert!(g3
            .failures
            .iter()
            .any(|f| f.contains("fresh") && f.contains("\"renewal\"")));
    }

    #[test]
    fn missing_sections_fail_with_a_named_diagnostic() {
        // A fresh pipeline document without a "rows" section (a partial
        // bench run) must name the side and section, not pass vacuously.
        let base = doc(&format!("[{}]", row("udg(r=1)", 10000, 1.0, true)));
        let partial: Value = serde_json::from_str(r#"{"schema": "x"}"#).unwrap();
        let g = gate_pipeline(&base, &partial);
        assert!(!g.passed());
        assert!(
            g.failures
                .iter()
                .any(|f| f.contains("fresh") && f.contains("\"rows\"")),
            "{:?}",
            g.failures
        );
        let g2 = gate_pipeline(&partial, &base);
        assert!(!g2.passed());
        assert!(g2
            .failures
            .iter()
            .any(|f| f.contains("baseline") && f.contains("\"rows\"")));
        // Same for the lifetime gate's locality_sweep section.
        let sweep_only = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 9.0, true)),
        );
        let no_sweep: Value = serde_json::from_str(r#"{"rows": []}"#).unwrap();
        let g3 = gate_lifetime(&sweep_only, &no_sweep);
        assert!(!g3.passed());
        assert!(g3
            .failures
            .iter()
            .any(|f| f.contains("fresh") && f.contains("\"locality_sweep\"")));
    }

    /// A full (quick: false) baseline document, as committed by a full
    /// `bench-lifetime` run.
    fn full_lifetime_doc(sweep_json: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"schema": "{LIFETIME_SCHEMA}", "quick": false, "rows": [],
                 "locality_sweep": {sweep_json}, "renewal": {}}}"#,
            good_renewal()
        ))
        .unwrap()
    }

    /// A complete full-baseline sweep fixture: healthy UDG and k-NN floor
    /// rungs plus an HNG row, minus whatever `drop` names.
    fn full_sweep(drop: &str) -> Value {
        let rows = [
            ("small", sweep_row("udg(r=1)", 10000, 1, 10.0, true)),
            (
                "udg",
                sweep_row("udg(r=1)", 1000000, 1, SPLICE_FLOOR_MIN_SPEEDUP + 2.0, true),
            ),
            (
                "knn",
                sweep_row("knn(k=8)", 1000000, 1, KNN_LOCAL_MIN_SPEEDUP + 2.0, true),
            ),
            ("hng", sweep_row("hng(p=0.5,m=1)", 10000, 1, 5.0, true)),
        ];
        let kept: Vec<String> = rows
            .into_iter()
            .filter(|(name, _)| *name != drop)
            .map(|(_, r)| r)
            .collect();
        full_lifetime_doc(&format!("[{}]", kept.join(", ")))
    }

    #[test]
    fn full_baseline_self_checks_hold_all_three_rungs() {
        let fresh = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 9.0, true)),
        );
        // Complete full baseline: passes.
        let g = gate_lifetime(&full_sweep(""), &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        // A rung below its floor fails with a named diagnostic.
        let regressed = full_lifetime_doc(&format!(
            "[{}, {}, {}]",
            sweep_row("udg(r=1)", 1000000, 1, SPLICE_FLOOR_MIN_SPEEDUP - 1.0, true),
            sweep_row("knn(k=8)", 1000000, 1, KNN_LOCAL_MIN_SPEEDUP - 1.0, true),
            sweep_row("hng(p=0.5,m=1)", 10000, 1, 5.0, true)
        ));
        let g2 = gate_lifetime(&regressed, &fresh);
        assert!(!g2.passed());
        assert!(g2.failures.iter().any(|f| f.contains("udg floor")));
        assert!(g2.failures.iter().any(|f| f.contains("knn floor")));
        // Each missing ingredient fails on its own.
        for (drop, diagnostic) in [
            ("udg", "udg floor rung is not recorded"),
            ("knn", "knn floor rung is not recorded"),
            ("hng", "no hng locality-sweep rows"),
        ] {
            let g3 = gate_lifetime(&full_sweep(drop), &fresh);
            assert!(!g3.passed(), "dropping {drop} must fail");
            assert!(
                g3.failures.iter().any(|f| f.contains(diagnostic)),
                "dropping {drop}: {:?}",
                g3.failures
            );
        }
        // Quick baselines (and fixtures without the marker) skip the
        // self-checks — they never record the 10⁶ size.
        let quick = lifetime_doc(
            "[]",
            &format!("[{}]", sweep_row("udg(r=1)", 10000, 1, 10.0, true)),
        );
        let g4 = gate_lifetime(&quick, &fresh);
        assert!(g4.passed(), "{:?}", g4.failures);
    }

    fn serve_row(
        topology: &str,
        n: u64,
        readers: u64,
        qps: f64,
        identical: bool,
        errors: u64,
    ) -> String {
        format!(
            r#"{{"topology": "{topology}", "n_target": {n}, "readers": {readers},
                 "qps": {qps}, "identical": {identical}, "errors": {errors}}}"#
        )
    }

    #[test]
    fn serve_gate_passes_within_the_band_and_fails_below() {
        let base = sdoc(&format!(
            "[{}, {}]",
            serve_row("udg(r=1)", 100000, 1, 50_000.0, true, 0),
            serve_row("udg(r=1)", 100000, 4, 40_000.0, true, 0)
        ));
        // Exactly half of baseline still passes (strict-below fails).
        let fresh = sdoc(&format!(
            "[{}, {}]",
            serve_row("udg(r=1)", 100000, 1, 25_000.0, true, 0),
            serve_row("udg(r=1)", 100000, 4, 20_000.0, true, 0)
        ));
        let g = gate_serve(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 2);
        let slow = sdoc(&format!(
            "[{}]",
            serve_row("udg(r=1)", 100000, 1, 24_000.0, true, 0)
        ));
        let g2 = gate_serve(&base, &slow);
        assert!(!g2.passed());
        assert!(g2.failures[0].contains("fell below"));
    }

    #[test]
    fn serve_gate_fails_on_divergence_or_errors_even_unmatched() {
        let base = sdoc("[]");
        let fresh = sdoc(&format!(
            "[{}, {}]",
            serve_row("rng(r=1)", 100000, 8, 1e9, false, 0),
            serve_row("rng(r=1)", 100000, 2, 1e9, true, 3)
        ));
        let g = gate_serve(&base, &fresh);
        assert!(!g.passed());
        assert!(g.failures.iter().any(|f| f.contains("identical")));
        assert!(g.failures.iter().any(|f| f.contains("query error")));
    }

    #[test]
    fn serve_gate_skips_unmatched_and_fails_disjoint_or_partial_docs() {
        let base = sdoc(&format!(
            "[{}]",
            serve_row("udg(r=1)", 100000, 1, 50_000.0, true, 0)
        ));
        let fresh = sdoc(&format!(
            "[{}, {}]",
            serve_row("udg(r=1)", 100000, 1, 45_000.0, true, 0),
            serve_row("udg(r=1)", 1000000, 1, 2_000.0, true, 0) // fresh-only
        ));
        let g = gate_serve(&base, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1);
        assert_eq!(g.skipped.len(), 1);
        // Nothing matched → loud failure; missing rows section → named.
        assert!(!gate_serve(&base, &sdoc("[]")).passed());
        let partial: Value = serde_json::from_str(r#"{"schema": "x"}"#).unwrap();
        let g2 = gate_serve(&base, &partial);
        assert!(g2
            .failures
            .iter()
            .any(|f| f.contains("fresh") && f.contains("\"rows\"")));
        // A zeroed qps on either side is a broken document, not a pass.
        let zeroed = sdoc(&format!(
            "[{}]",
            serve_row("udg(r=1)", 100000, 1, 0.0, true, 0)
        ));
        assert!(!gate_serve(&base, &zeroed).passed());
    }

    #[test]
    fn schema_mismatch_fails_naming_the_expected_version() {
        // Each gate names its expected schema version on a mismatched or
        // missing tag — on either side.
        let stale: Value =
            serde_json::from_str(r#"{"schema": "wsn-bench-pipeline/1", "rows": []}"#).unwrap();
        let good = doc(&format!("[{}]", row("udg(r=1)", 10000, 1.0, true)));
        let g = gate_pipeline(&stale, &good);
        assert!(!g.passed());
        assert!(
            g.failures.iter().any(|f| f.contains("baseline")
                && f.contains("wsn-bench-pipeline/1")
                && f.contains(PIPELINE_SCHEMA)),
            "{:?}",
            g.failures
        );
        let untagged: Value = serde_json::from_str(r#"{"rows": []}"#).unwrap();
        let g2 = gate_pipeline(&good, &untagged);
        assert!(g2
            .failures
            .iter()
            .any(|f| f.contains("fresh") && f.contains("no \"schema\" tag")));
        // Lifetime and serve gates name their own versions.
        let g3 = gate_lifetime(&untagged, &untagged);
        assert!(g3.failures.iter().any(|f| f.contains(LIFETIME_SCHEMA)));
        let g4 = gate_serve(&untagged, &untagged);
        assert!(g4.failures.iter().any(|f| f.contains(SERVE_SCHEMA)));
        // Matching tags on both sides add no schema failure.
        let g5 = gate_pipeline(&good, &good);
        assert!(
            !g5.failures.iter().any(|f| f.contains("schema")),
            "{:?}",
            g5.failures
        );
    }

    fn scaling_row(
        topology: &str,
        n: u64,
        threads: u64,
        nps: f64,
        speedup: f64,
        identical: bool,
    ) -> String {
        format!(
            r#"{{"topology": "{topology}", "n_target": {n}, "threads": {threads},
                 "nodes_per_sec": {nps}, "speedup_vs_serial": {speedup},
                 "efficiency": {:.6}, "edge_identical": {identical}}}"#,
            speedup / threads as f64
        )
    }

    /// A full curve for one topology × size over the whole thread ladder.
    fn full_ladder(topology: &str, n: u64, base_nps: f64, identical: bool) -> String {
        THREAD_LADDER
            .iter()
            .map(|&t| {
                scaling_row(
                    topology,
                    n,
                    t as u64,
                    base_nps * (t as f64).sqrt(),
                    (t as f64).sqrt(),
                    identical,
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    #[test]
    fn thread_scaling_rows_hold_identity_band_and_ladder() {
        let matched_rows = format!("[{}]", row("udg(r=1)", 10000, 100_000.0, true));
        let base = pipeline_doc(
            &matched_rows,
            &format!("[{}]", full_ladder("udg(r=1)", 10000, 50_000.0, true)),
        );
        // Same curve: passes, and every ladder point is checked.
        let g = gate_pipeline(&base, &base);
        assert!(g.passed(), "{:?}", g.failures);
        assert_eq!(g.checked, 1 + THREAD_LADDER.len());
        // A non-identical scaling row fails even without a baseline match.
        let leaky = pipeline_doc(
            &matched_rows,
            &format!("[{}]", full_ladder("rng(r=1)", 10000, 50_000.0, false)),
        );
        let g2 = gate_pipeline(&base, &leaky);
        assert!(!g2.passed());
        assert!(g2
            .failures
            .iter()
            .any(|f| f.contains("threads=4") && f.contains("edge_identical")));
        // A matched point below the throughput band fails with its thread
        // count named.
        let tail: Vec<String> = THREAD_LADDER
            .iter()
            .skip(1)
            .map(|&t| {
                scaling_row(
                    "udg(r=1)",
                    10000,
                    t as u64,
                    50_000.0 * (t as f64).sqrt(),
                    (t as f64).sqrt(),
                    true,
                )
            })
            .collect();
        let slow = pipeline_doc(
            &matched_rows,
            &format!(
                "[{}, {}]",
                scaling_row("udg(r=1)", 10000, 1, 29_000.0, 1.0, true),
                tail.join(", ")
            ),
        );
        let g3 = gate_pipeline(&base, &slow);
        assert!(!g3.passed());
        assert!(
            g3.failures
                .iter()
                .any(|f| f.contains("threads=1") && f.contains("scaling throughput")),
            "{:?}",
            g3.failures
        );
        // A curve that dropped a ladder point fails the completeness check.
        let thin = pipeline_doc(
            &matched_rows,
            &format!(
                "[{}, {}]",
                scaling_row("udg(r=1)", 10000, 1, 50_000.0, 1.0, true),
                scaling_row("udg(r=1)", 10000, 4, 90_000.0, 1.8, true)
            ),
        );
        let g4 = gate_pipeline(&base, &thin);
        assert!(!g4.passed());
        assert!(
            g4.failures
                .iter()
                .any(|f| f.contains("thread ladder") && f.contains("incomplete")),
            "{:?}",
            g4.failures
        );
    }

    /// A full (quick: false) pipeline baseline with a given host core count
    /// and scaling curve.
    fn full_pipeline_doc(host_cpus: u64, scaling_json: &str) -> Value {
        serde_json::from_str(&format!(
            r#"{{"schema": "{PIPELINE_SCHEMA}", "quick": false,
                 "host_cpus": {host_cpus},
                 "rows": [{}], "thread_scaling": {scaling_json}}}"#,
            row("udg(r=1)", 10000, 100_000.0, true)
        ))
        .unwrap()
    }

    #[test]
    fn full_baseline_scaling_self_checks_bind_only_in_core_points() {
        let fresh = doc(&format!("[{}]", row("udg(r=1)", 10000, 90_000.0, true)));
        // Multi-core recording host, healthy curve (speedup √t ≥ efficiency
        // floor at every in-core point): passes.
        let healthy = full_pipeline_doc(
            8,
            &format!("[{}]", full_ladder("udg(r=1)", 10000, 5e4, true)),
        );
        let g = gate_pipeline(&healthy, &fresh);
        assert!(g.passed(), "{:?}", g.failures);
        // A flat curve on an 8-core recording host fails: the fan-out
        // stopped scaling.
        let flat = full_pipeline_doc(
            8,
            &format!(
                "[{}, {}]",
                scaling_row("udg(r=1)", 10000, 1, 5e4, 1.0, true),
                scaling_row("udg(r=1)", 10000, 4, 5e4, 1.0, true)
            ),
        );
        let g2 = gate_pipeline(&flat, &fresh);
        assert!(!g2.passed());
        assert!(
            g2.failures.iter().any(|f| f.contains("stopped scaling")),
            "{:?}",
            g2.failures
        );
        // Positive but inefficient speedup fails the efficiency floor.
        let weak = full_pipeline_doc(
            8,
            &format!("[{}]", scaling_row("udg(r=1)", 10000, 8, 6e4, 1.2, true)),
        );
        let g3 = gate_pipeline(&weak, &fresh);
        assert!(g3.failures.iter().any(|f| f.contains("efficiency")));
        // The same flat curve recorded on a 1-core host is exempt — the
        // honest curve *is* flat there (threads > host_cpus measure
        // oversubscription).
        let one_core = full_pipeline_doc(
            1,
            &format!(
                "[{}, {}]",
                scaling_row("udg(r=1)", 10000, 1, 5e4, 1.0, true),
                scaling_row("udg(r=1)", 10000, 4, 5e4, 0.9, true)
            ),
        );
        let g4 = gate_pipeline(&one_core, &fresh);
        assert!(g4.passed(), "{:?}", g4.failures);
        // A full baseline with no curve at all fails loudly.
        let missing = full_pipeline_doc(8, "[]");
        let g5 = gate_pipeline(&missing, &fresh);
        assert!(g5
            .failures
            .iter()
            .any(|f| f.contains("no thread_scaling rows")));
    }

    #[test]
    fn disjoint_documents_fail_loudly() {
        // An empty fresh document, or one sharing no row with the
        // baseline, means the gate compared nothing — fail rather than
        // green-light a misconfigured baseline path.
        let base = doc(&format!("[{}]", row("udg(r=1)", 10000, 1.0, true)));
        let g = gate_pipeline(&base, &doc("[]"));
        assert!(!g.passed());
        let fresh = doc(&format!("[{}]", row("yao(r=1,c=6)", 10000, 1.0, true)));
        let g2 = gate_pipeline(&base, &fresh);
        assert!(!g2.passed(), "zero matched rows must not pass");
        assert_eq!(g2.checked, 0);
        assert_eq!(g2.skipped.len(), 1);
    }
}
