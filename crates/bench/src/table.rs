//! Aligned plain-text tables for experiment output.

/// A simple column-aligned table accumulated row by row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Format helper: fixed decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["a".into(), f(1.23456, 3)]);
        t.row(&["longer".into(), f(10.0, 3)]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("1.235"));
        assert!(r.contains("10.000"));
        // Both value cells right-aligned to the same width.
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }
}
