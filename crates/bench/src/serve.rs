//! The `wsn-scenarios bench-serve` emitter: sustained query throughput of
//! the always-on topology service, recorded as `BENCH_serve.json`.
//!
//! For each plain topology × deployment size the harness runs the *same*
//! serve schedule — 10% per-epoch clustered churn with reserve joins,
//! queries mixing routes, k-NN, coverage and membership — once per reader
//! count in [`READER_COUNTS`], and records sustained qps, latency
//! percentiles (p50/p99) and the route-cache hit rate of each row.
//!
//! Two correctness witnesses ride along with every row:
//!
//! * `identical`: the concurrent run's per-client digests, epoch
//!   fingerprints and folded answer digest are byte-identical to a
//!   single-threaded [`run_replay`] of the same schedule (the replay runs
//!   once per topology × size and every reader row compares against it —
//!   reader count must never leak into answers), and
//! * `errors == 0`: no query ever saw an empty alive population.
//!
//! On a single-core host the reader rows measure oversubscription, not
//! parallel speedup — the value of the sweep is the identity column (more
//! threads must change *nothing* but the wall clock) plus the qps floor
//! the CI gate holds.

use std::time::Instant;

use serde::Serialize;
use wsn_geom::hash::derive_seed2;
use wsn_geom::Aabb;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointSet};
use wsn_rgg::IncTopology;
use wsn_simnet::churn::{ChurnConfig, ChurnModel};
use wsn_simnet::{run_replay, run_serve, ServeConfig, ServeReport};

/// Schema tag of `BENCH_serve.json`; the gate names this version in its
/// diagnostics.
pub const SERVE_SCHEMA: &str = "wsn-bench-serve/1";

/// Per-epoch expected kill fraction (the acceptance regime: 10% clustered
/// churn, matching `bench-lifetime`).
const CHURN_FRACTION: f64 = 0.10;

/// Blast radius of the clustered outages, in UDG radii.
const BLAST_RADIUS: f64 = 5.0;

/// Epochs served per row.
const EPOCHS: usize = 5;

/// Query clients (partitioned over the reader threads).
const CLIENTS: usize = 8;

/// Queries per client per epoch.
const QUERIES_PER_CLIENT: usize = 64;

/// Reader-thread sweep of each topology × size.
pub const READER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Fraction of the universe held back as the reserve pool (dead at start,
/// admitted as churn joins).
const RESERVE_FRAC: f64 = 0.125;

/// Joins admitted per death.
const JOIN_RATE: f64 = 0.5;

/// Route-source hot set (gateway/sink model): uniform sources over 10⁵
/// alive nodes would repeat a `(src, dst)` pair with probability ~0 and
/// the cache-hit column would measure nothing.
const HOT_ROUTES: usize = 4;

/// Per-client LRU capacity under the hot-set workload.
const CACHE_CAPACITY: usize = 512;

/// One topology × size × reader-count measurement.
#[derive(Clone, Debug, Serialize)]
pub struct ServeBenchRow {
    pub topology: String,
    /// Expected node count (Poisson intensity × window area).
    pub n_target: u64,
    /// Realised universe size (deployment + reserve pool).
    pub nodes: u64,
    pub readers: usize,
    pub epochs: u64,
    pub churn_fraction: f64,
    pub blast_radius: f64,
    pub clients: usize,
    pub queries_per_client: usize,
    /// Queries answered over the whole run.
    pub queries: u64,
    /// Queries that saw an empty alive population (must be 0).
    pub errors: u64,
    /// Wall-clock of the run (epoch repairs + concurrent readers).
    pub wall_secs: f64,
    /// Sustained queries per second over that wall clock.
    pub qps: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Route-cache hits / lookups.
    pub cache_hit_rate: f64,
    /// Per-client digests, epoch fingerprints and the folded answer digest
    /// all equal the single-threaded replay's.
    pub identical: bool,
    pub deaths_total: u64,
    pub joins_total: u64,
    pub final_alive: u64,
    pub snapshots_published: u64,
    pub snapshots_retired: u64,
    /// Peak co-resident snapshots at any publish point (leak witness).
    pub max_live_snapshots: u64,
}

/// The whole `BENCH_serve.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct ServeBenchReport {
    pub schema: &'static str,
    pub quick: bool,
    pub seed: u64,
    pub rows: Vec<ServeBenchRow>,
}

/// The benchmarked topologies. UDG and RNG carry the acceptance claim at
/// every size; k-NN rides along at the quick size only (its repair halo is
/// the family's widest, and the reader sweep re-runs the whole schedule
/// four times per row).
fn kinds(n: u64) -> Vec<IncTopology> {
    let mut k = vec![
        IncTopology::Udg { radius: 1.0 },
        IncTopology::Rng { radius: 1.0 },
    ];
    if n <= 100_000 {
        k.push(IncTopology::Knn { k: 8 });
    }
    k
}

fn serve_config(readers: usize, seed: u64) -> ServeConfig {
    let mut churn = ChurnConfig::new(EPOCHS, 1e12, 0, CHURN_FRACTION, JOIN_RATE);
    churn.churn_model = ChurnModel::Clustered {
        radius: BLAST_RADIUS,
    };
    churn.verify = false;
    let mut cfg = ServeConfig::new(churn, readers, CLIENTS, QUERIES_PER_CLIENT);
    cfg.hot_routes = HOT_ROUTES;
    cfg.cache_capacity = CACHE_CAPACITY;
    cfg.seed = seed;
    cfg
}

/// The identity witness: answers (not timings) of two runs agree exactly.
fn answers_identical(a: &ServeReport, b: &ServeReport) -> bool {
    a.client_digests == b.client_digests
        && a.epoch_fingerprints == b.epoch_fingerprints
        && a.answer_digest == b.answer_digest
        && a.errors == b.errors
        && a.final_alive == b.final_alive
}

fn row_from(
    kind: IncTopology,
    n: u64,
    report: &ServeReport,
    oracle: &ServeReport,
    nodes: u64,
) -> ServeBenchRow {
    ServeBenchRow {
        topology: kind.label(),
        n_target: n,
        nodes,
        readers: report.readers,
        epochs: report.epochs,
        churn_fraction: CHURN_FRACTION,
        blast_radius: BLAST_RADIUS,
        clients: report.clients,
        queries_per_client: QUERIES_PER_CLIENT,
        queries: report.queries,
        errors: report.errors,
        wall_secs: report.wall_secs,
        qps: report.qps,
        p50_us: report.p50_us,
        p99_us: report.p99_us,
        cache_hit_rate: report.cache_hits as f64 / (report.cache_lookups.max(1) as f64),
        identical: answers_identical(report, oracle),
        deaths_total: report.deaths_total,
        joins_total: report.joins_total,
        final_alive: report.final_alive,
        snapshots_published: report.snapshots_published,
        snapshots_retired: report.snapshots_retired,
        max_live_snapshots: report.max_live_snapshots,
    }
}

/// The reader sweep for one topology × size: one single-threaded replay
/// oracle, then one concurrent run per reader count, each compared against
/// the *same* oracle — reader count must never leak into answers.
fn sweep_rows(kind: IncTopology, n: u64, seed: u64) -> Vec<ServeBenchRow> {
    let lambda = 10.0;
    let side = ((n as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let nodes = points.len() as u64;
    let deployed = points.len() - (RESERVE_FRAC * points.len() as f64).round() as usize;
    let alive: Vec<bool> = (0..points.len()).map(|i| i < deployed).collect();

    let oracle = run_replay(&points, &alive, kind, &serve_config(1, seed));
    let mut rows = Vec::new();
    for readers in READER_COUNTS {
        let cfg = serve_config(readers, seed);
        let t0 = Instant::now();
        let report = run_serve(&points, &alive, kind, &cfg);
        let total = t0.elapsed().as_secs_f64();
        let row = row_from(kind, n, &report, &oracle, nodes);
        assert!(
            row.identical,
            "{}: serve with {readers} reader(s) diverged from the replay oracle",
            kind.label()
        );
        eprintln!(
            "bench-serve: {} n={nodes} readers={readers} qps {:.0} \
             p50 {:.1}us p99 {:.1}us cache {:.1}% (run total {total:.3}s)",
            kind.label(),
            row.qps,
            row.p50_us,
            row.p99_us,
            row.cache_hit_rate * 100.0,
        );
        rows.push(row);
    }
    rows
}

/// Run the serve bench: quick = the 10⁵-node acceptance grid (the size the
/// reader-scaling claim is pinned at), full adds 10⁶-node UDG/RNG rows.
pub fn run_serve_bench(quick: bool, seed: u64) -> ServeBenchReport {
    let sizes: &[u64] = if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    for (si, &n) in sizes.iter().enumerate() {
        for (ki, kind) in kinds(n).into_iter().enumerate() {
            let row_seed = derive_seed2(seed, 0x5E12, (si * 8 + ki) as u64);
            rows.extend(sweep_rows(kind, n, row_seed));
        }
    }
    ServeBenchReport {
        schema: SERVE_SCHEMA,
        quick,
        seed,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_sweep_is_identical_across_reader_counts_and_serialises() {
        let rows = sweep_rows(IncTopology::Udg { radius: 1.0 }, 2_000, 0x5E12BE);
        assert_eq!(rows.len(), READER_COUNTS.len());
        for row in &rows {
            assert!(row.identical);
            assert_eq!(row.errors, 0);
            assert!(row.qps > 0.0 && row.queries > 0);
            assert!(row.p50_us <= row.p99_us);
            assert!(row.snapshots_published == row.snapshots_retired);
            assert!(row.max_live_snapshots <= 2);
        }
        // Reader count changes timing columns only; the answer-side
        // columns are pinned to the shared oracle.
        assert!(rows
            .windows(2)
            .all(|w| w[0].queries == w[1].queries && w[0].final_alive == w[1].final_alive));
        let json = serde_json::to_string_pretty(&rows).unwrap();
        assert!(json.contains("\"cache_hit_rate\""));
    }

    #[test]
    fn hot_route_workload_accumulates_cache_hits() {
        let rows = sweep_rows(IncTopology::Rng { radius: 1.0 }, 2_000, 0x5E12BF);
        // The hot-set model exists so this column measures something.
        assert!(
            rows.iter().all(|r| r.cache_hit_rate > 0.0),
            "hot-route workload produced no cache hits"
        );
    }
}
