//! EXP-C21 — Claim 2.1: adjacent good tiles in UDG-SENS are joined by a
//! 3-edge path through relays, each edge ≤ 1, with rep–rep stretch constant
//! c_u ≤ 3.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 14.0 } else { 40.0 };
    let reps_target = scaled(10_000);

    let mut checked = 0usize;
    let mut ok_paths = 0usize;
    let mut max_edge_len: f64 = 0.0;
    let mut max_cu: f64 = 0.0;
    let mut sum_cu = 0.0;
    let mut replicate = 0u64;

    while checked < reps_target && replicate < 64 {
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(
            &mut rng_from_seed(seed().wrapping_add(replicate)),
            25.0,
            &window,
        );
        let net = build_udg_sens(&pts, params, grid).unwrap();
        for s in net.lattice.sites() {
            if !net.lattice.is_open(s) {
                continue;
            }
            for nb in [(s.0 + 1, s.1), (s.0, s.1 + 1)] {
                if !net.lattice.in_bounds(nb) || !net.lattice.is_open(nb) {
                    continue;
                }
                checked += 1;
                let Some(path) = net.adjacent_rep_path(s, nb) else {
                    continue;
                };
                // Claim: 3 edges rep → relay → relay → rep (relays may
                // coincide, shortening the path).
                if path.len() <= 4 {
                    ok_paths += 1;
                }
                let mut plen = 0.0;
                for w in path.windows(2) {
                    let d = pts.get(w[0]).dist(pts.get(w[1]));
                    max_edge_len = max_edge_len.max(d);
                    plen += d;
                }
                let eu = pts.get(path[0]).dist(pts.get(*path.last().unwrap()));
                let cu = plen / eu;
                max_cu = max_cu.max(cu);
                sum_cu += cu;
            }
        }
        replicate += 1;
    }

    let mut t = Table::new(
        "EXP-C21: Claim 2.1 on adjacent good tiles",
        &["metric", "value", "paper"],
    );
    t.row(&["pairs checked".into(), checked.to_string(), "-".into()]);
    t.row(&[
        "≤3-edge paths".into(),
        f(ok_paths as f64 / checked as f64, 4),
        "1 (all)".into(),
    ]);
    t.row(&["max edge length".into(), f(max_edge_len, 4), "≤ 1".into()]);
    t.row(&["mean c_u".into(), f(sum_cu / checked as f64, 4), "-".into()]);
    t.row(&["max c_u".into(), f(max_cu, 4), "≤ 3".into()]);
    t.print();

    assert!(
        max_edge_len <= params.radius + 1e-9,
        "Claim 2.1 edge bound violated"
    );
    assert!(
        ok_paths == checked,
        "some adjacent good pair lacked a 3-edge path"
    );
    println!("Claim 2.1 verified on every sampled pair.");
    write_json("exp_claim_udg", &(checked, max_edge_len, max_cu));
}
