//! EXP-F7 — Fig. 7 construction protocol cost: rounds and messages per
//! node as the network grows.
//!
//! Expected shape (property P4, local computability): the round count is
//! constant and the per-node message cost depends only on local density,
//! not on the number of nodes.

use wsn_bench::table::{f, Table};
use wsn_bench::{seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};
use wsn_simnet::distributed_build_udg;

fn main() {
    let params = UdgSensParams::strict_default();
    let sides: &[f64] = if wsn_bench::quick_mode() {
        &[8.0, 12.0]
    } else {
        &[10.0, 15.0, 20.0, 30.0, 40.0]
    };

    let mut t = Table::new(
        "EXP-F7: distributed construction cost (λ = 30)",
        &[
            "window",
            "nodes",
            "rounds",
            "msgs total",
            "msgs/node",
            "max msgs/node",
        ],
    );
    let mut results = Vec::new();
    for &side in sides {
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed()), 30.0, &window);
        let n = pts.len();
        let build = distributed_build_udg(&pts, params, grid).unwrap();
        t.row(&[
            f(side, 0),
            n.to_string(),
            build.rounds.to_string(),
            build.stats.sent.to_string(),
            f(build.stats.mean_per_node(), 2),
            build.stats.max_per_node().to_string(),
        ]);
        results.push((
            side,
            n,
            build.rounds,
            build.stats.sent,
            build.stats.mean_per_node(),
        ));
    }
    t.print();
    println!(
        "shape check (P4 / Fig. 7): rounds constant; messages per node flat as the window \
         grows 16× in area — the protocol is purely local."
    );
    write_json("exp_construct_cost", &results);
}
