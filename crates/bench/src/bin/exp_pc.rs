//! EXP-PC — substrate validation: site-percolation θ(p), crossing
//! probability, and a p_c estimate.
//!
//! Paper reference: §2 cites p_c ∈ [0.592, 0.593]; the literature value is
//! 0.592746. Our crossing-probability bisection should land inside the
//! cited bracket (±finite-size error).

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_perc::critical::{estimate_pc, sweep};

fn main() {
    let l_size = if wsn_bench::quick_mode() { 48 } else { 128 };
    let reps = scaled(200);
    let ps: Vec<f64> = (0..=12).map(|i| 0.53 + 0.01 * i as f64).collect();

    let points = sweep(&ps, l_size, reps, seed());
    let mut t = Table::new(
        &format!("EXP-PC: site percolation on {l_size}x{l_size}, {reps} reps"),
        &["p", "theta_L(p)", "P[crossing]"],
    );
    for pt in &points {
        t.row(&[f(pt.p, 3), f(pt.theta, 4), f(pt.crossing, 4)]);
    }
    t.print();

    let pc = estimate_pc(l_size, reps, 14, seed());
    println!("estimated p_c = {pc:.4}   (paper bracket [0.592, 0.593]; literature 0.5927)");
    write_json("exp_pc", &(points, pc));
}
