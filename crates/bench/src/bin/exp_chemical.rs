//! EXP-AP — Lemma 1.1 (Antal–Pisztora) substrate check: chemical distance
//! on the supercritical lattice concentrates at a constant multiple of L¹
//! distance, with a thinner tail at higher p.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_perc::chemical::sample_ratios;

fn main() {
    let l_size = if wsn_bench::quick_mode() { 40 } else { 96 };
    let reps = scaled(60);
    let pairs_per_rep = 40;

    let mut t = Table::new(
        &format!("EXP-AP: chemical distance D_p/D on {l_size}² lattices"),
        &[
            "p",
            "samples",
            "mean ratio",
            "p95 ratio",
            "max ratio",
            "P[ratio>1.5]",
        ],
    );
    let mut results = Vec::new();
    for p in [0.65, 0.75, 0.85, 0.95] {
        let mut samples = sample_ratios(p, l_size, reps, pairs_per_rep, seed());
        // Long-range pairs only: the theorem is asymptotic in D.
        samples.retain(|s| s.l1 >= 8);
        let mut ratios: Vec<f64> = samples.iter().map(|s| s.ratio()).collect();
        ratios.sort_by(f64::total_cmp);
        let n = ratios.len();
        let mean = ratios.iter().sum::<f64>() / n as f64;
        let p95 = ratios[(n as f64 * 0.95) as usize];
        let tail = ratios.iter().filter(|&&r| r > 1.5).count() as f64 / n as f64;
        t.row(&[
            f(p, 2),
            n.to_string(),
            f(mean, 4),
            f(p95, 4),
            f(*ratios.last().unwrap(), 4),
            f(tail, 4),
        ]);
        results.push((p, mean, p95, tail));
    }
    t.print();
    println!(
        "shape check (Lemma 1.1): ratios concentrate near a constant ρ(p) ≥ 1 that decreases \
         toward 1 as p → 1, with a thin upper tail."
    );
    write_json("exp_chemical", &results);
}
