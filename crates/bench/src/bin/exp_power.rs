//! EXP-PWR — the power-efficiency headline: power stretch δ^β of UDG-SENS
//! against the base UDG optimum, compared with the classical
//! topology-control baselines (Gabriel, RNG, Yao), at a fraction of the
//! edges.
//!
//! Expected shape: Gabriel keeps power stretch ≈ 1 (it is a power spanner)
//! but with Θ(n) more edges than SENS; SENS pays a constant factor —
//! bounded mean, flat in β — while using ≈ 2 edges per *member* node and
//! covering the region with a fraction of the deployment.

use rand::RngExt;
use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::power::compare_power;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};
use wsn_rgg::{build_gabriel, build_rng, build_udg, build_yao};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 12.0 } else { 24.0 };
    let n_pairs = scaled(300);

    let grid = TileGrid::fit(side, params.tile_side);
    let window = grid.covered_area();
    let pts = sample_poisson_window(&mut rng_from_seed(seed()), 25.0, &window);
    let udg = build_udg(&pts, params.radius);
    let net = build_udg_sens(&pts, params, grid).unwrap();

    // Pairs of SENS representatives (the nodes that carry traffic in the
    // sensing overlay) — the same endpoints for every topology.
    let reps: Vec<u32> = net
        .reps
        .iter()
        .copied()
        .filter(|&r| r != u32::MAX && net.is_member(r))
        .collect();
    let mut rng = rng_from_seed(seed() ^ 0x77);
    let pairs: Vec<(u32, u32)> = (0..n_pairs)
        .filter_map(|_| {
            let a = reps[rng.random_range(0..reps.len())];
            let b = reps[rng.random_range(0..reps.len())];
            (a != b).then_some((a, b))
        })
        .collect();

    let topologies: Vec<(&str, wsn_graph::Csr)> = vec![
        ("Gabriel", build_gabriel(&pts, params.radius)),
        ("RNG", build_rng(&pts, params.radius)),
        ("Yao(6)", build_yao(&pts, params.radius, 6)),
        ("UDG-SENS", net.graph.clone()),
    ];

    let mut t = Table::new(
        &format!(
            "EXP-PWR: power stretch vs UDG optimum ({} pairs, n = {})",
            pairs.len(),
            pts.len()
        ),
        &[
            "β",
            "topology",
            "connected",
            "mean δ^β",
            "max δ^β",
            "edges/node",
        ],
    );
    let mut results = Vec::new();
    for beta in [2.0, 3.0, 4.0, 5.0] {
        for (name, g) in &topologies {
            let c = compare_power(&udg, g, &pts, &pairs, beta);
            t.row(&[
                f(beta, 0),
                name.to_string(),
                format!("{}/{}", c.sub_pairs, c.base_pairs),
                f(c.mean_stretch, 3),
                f(c.max_stretch, 3),
                f(c.edges_per_node, 3),
            ]);
            results.push((beta, name.to_string(), c.mean_stretch, c.edges_per_node));
        }
    }
    t.print();
    println!(
        "shape check: SENS pays a bounded constant power factor over the UDG optimum while \
         carrying ~10× fewer edges per node than the UDG and fewer than every baseline; \
         Gabriel/RNG stay near stretch 1 but keep every node and far more edges."
    );
    write_json("exp_power", &results);
}
