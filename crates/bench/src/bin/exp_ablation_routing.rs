//! EXP-ABL-R — ablation: why route along the canonical x–y path with BFS
//! *repair* (Fig. 9) instead of just flooding?
//!
//! Compares, on the same supercritical lattices and pairs:
//!
//! * **Fig. 9** — x–y path + distributed BFS repair (probes counted);
//! * **flooding** — a full distributed BFS from the source (probes = every
//!   site the flood expands);
//! * **oracle** — the true shortest open path length (lower bound, free).
//!
//! Expected shape: Fig. 9 probes grow linearly with distance (constant per
//! step), flooding probes grow with the *cluster size* (≈ lattice area) —
//! the gap widens with the window, which is the paper's reason for adopting
//! Angel et al.'s algorithm.

use rand::RngExt;
use std::collections::VecDeque;
use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_perc::chemical::chemical_distance;
use wsn_perc::cluster::label_clusters;
use wsn_perc::sample::bernoulli_lattice;
use wsn_perc::{route_xy, Lattice, Site};
use wsn_pointproc::rng_from_seed;

/// Distributed flood: BFS from `src` until `dst` is dequeued; every
/// expanded site is one probe.
fn flood_probes(lat: &Lattice, src: Site, dst: Site) -> Option<u64> {
    let mut seen = vec![false; lat.len()];
    let mut queue = VecDeque::new();
    seen[lat.id(src) as usize] = true;
    queue.push_back(src);
    let mut probes = 0u64;
    while let Some(s) = queue.pop_front() {
        probes += 1;
        if s == dst {
            return Some(probes);
        }
        for nb in lat.neighbors(s) {
            if lat.is_open(nb) && !seen[lat.id(nb) as usize] {
                seen[lat.id(nb) as usize] = true;
                queue.push_back(nb);
            }
        }
    }
    None
}

fn main() {
    let p = 0.72;
    let pairs_per_size = scaled(300);
    let sizes: &[usize] = if wsn_bench::quick_mode() {
        &[32, 64]
    } else {
        &[32, 64, 128, 256]
    };

    let mut t = Table::new(
        &format!("EXP-ABL-R: Fig. 9 vs flooding at p = {p}"),
        &[
            "L",
            "pairs",
            "mean dist",
            "fig9 probes",
            "flood probes",
            "fig9/dist",
            "flood/dist",
        ],
    );
    let mut results = Vec::new();
    for &l in sizes {
        let lat = bernoulli_lattice(&mut rng_from_seed(seed()), l, l, p);
        let clusters = label_clusters(&lat);
        let members: Vec<Site> = lat
            .sites()
            .filter(|&s| clusters.in_largest(&lat, s))
            .collect();
        let mut rng = rng_from_seed(seed() ^ l as u64);
        let mut n = 0u64;
        let (mut sum_d, mut sum_fig9, mut sum_flood) = (0u64, 0u64, 0u64);
        for _ in 0..pairs_per_size {
            let a = members[rng.random_range(0..members.len())];
            let b = members[rng.random_range(0..members.len())];
            if Lattice::dist_l1(a, b) < (l / 4) as u32 {
                continue;
            }
            let r = route_xy(&lat, a, b);
            assert!(r.delivered);
            let fl = flood_probes(&lat, a, b).expect("same cluster");
            let d = chemical_distance(&lat, a, b).unwrap() as u64;
            n += 1;
            sum_d += d;
            sum_fig9 += r.probes as u64;
            sum_flood += fl;
        }
        let (d, f9, fl) = (
            sum_d as f64 / n as f64,
            sum_fig9 as f64 / n as f64,
            sum_flood as f64 / n as f64,
        );
        t.row(&[
            l.to_string(),
            n.to_string(),
            f(d, 1),
            f(f9, 1),
            f(fl, 1),
            f(f9 / d, 2),
            f(fl / d, 2),
        ]);
        results.push((l, d, f9, fl));
    }
    t.print();
    println!(
        "shape check: Fig. 9 probes per unit of shortest path stay O(1) as L grows; flooding \
         probes per unit grow ~linearly with L (the flood visits the whole cluster)."
    );
    write_json("exp_ablation_routing", &results);
}
