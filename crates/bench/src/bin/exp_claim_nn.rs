//! EXP-C23 — Claim 2.3: adjacent good tiles in NN-SENS are joined by a
//! 5-edge path through 4 relays, with every edge present in `NN(2, k)`
//! (missing_links = 0) and rep–rep stretch constant c_k.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::nn::build_nn_sens;
use wsn_core::params::NnSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};
use wsn_rgg::build_knn;

fn main() {
    // Unit density; tile area 100a² must be ≲ k/2 to have good tiles.
    let params = NnSensParams { a: 1.2, k: 400 };
    let grids = if wsn_bench::quick_mode() { 2usize } else { 6 };
    let reps_target = scaled(400);

    let mut checked = 0usize;
    let mut five_edge = 0usize;
    let mut missing_total = 0usize;
    let mut max_ck: f64 = 0.0;
    let mut sum_ck = 0.0;
    let mut replicate = 0u64;

    while checked < reps_target && (replicate as usize) < grids {
        let grid = TileGrid::new(params.tile_side(), 4, 4);
        let window = grid.covered_area();
        let pts = sample_poisson_window(
            &mut rng_from_seed(seed().wrapping_add(replicate)),
            1.0,
            &window,
        );
        let base = build_knn(&pts, params.k);
        let net = build_nn_sens(&pts, &base, params, grid).unwrap();
        missing_total += net.missing_links;
        for s in net.lattice.sites() {
            if !net.lattice.is_open(s) {
                continue;
            }
            for nb in [(s.0 + 1, s.1), (s.0, s.1 + 1)] {
                if !net.lattice.in_bounds(nb) || !net.lattice.is_open(nb) {
                    continue;
                }
                checked += 1;
                let Some(path) = net.adjacent_rep_path(s, nb) else {
                    continue;
                };
                if path.len() <= 6 {
                    five_edge += 1;
                }
                let plen: f64 = path
                    .windows(2)
                    .map(|w| pts.get(w[0]).dist(pts.get(w[1])))
                    .sum();
                let eu = pts.get(path[0]).dist(pts.get(*path.last().unwrap()));
                let ck = plen / eu;
                max_ck = max_ck.max(ck);
                sum_ck += ck;
            }
        }
        replicate += 1;
    }

    let mut t = Table::new(
        "EXP-C23: Claim 2.3 on adjacent good tiles (NN-SENS)",
        &["metric", "value", "paper"],
    );
    t.row(&["pairs checked".into(), checked.to_string(), "-".into()]);
    t.row(&[
        "missing NN(2,k) links".into(),
        missing_total.to_string(),
        "0".into(),
    ]);
    if checked > 0 {
        t.row(&[
            "≤5-edge paths".into(),
            f(five_edge as f64 / checked as f64, 4),
            "1 (all)".into(),
        ]);
        t.row(&[
            "mean c_k".into(),
            f(sum_ck / checked as f64, 4),
            "constant".into(),
        ]);
        t.row(&["max c_k".into(), f(max_ck, 4), "constant".into()]);
    }
    t.print();

    assert_eq!(
        missing_total, 0,
        "Claim 2.3 edge missing from the base graph"
    );
    println!("Claim 2.3 verified: every required link existed in NN(2, k).");
    write_json("exp_claim_nn", &(checked, missing_total, max_ck));
}
