//! EXP-MAT — robustness to non-Poisson deployments.
//!
//! The paper's analysis assumes complete spatial randomness (a Poisson
//! process). Real deployments have minimum-separation constraints; this
//! experiment rebuilds UDG-SENS on Matérn type-II hard-core deployments of
//! matched *retained* intensity and checks that the topology properties
//! survive the dependence.
//!
//! Expected shape: at equal retained intensity the hard-core process is
//! *more* regular than Poisson (less clumping ⇒ fewer empty regions), so
//! goodness and coverage should be at least as good.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::coverage::empty_box_curve;
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::matern::sample_matern_ii;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 14.0 } else { 30.0 };
    let boxes = scaled(10_000);
    let hard_core = 0.1;
    let pi_r2 = std::f64::consts::PI * hard_core * hard_core;

    let mut t = Table::new(
        "EXP-MAT: Poisson vs Matérn-II deployments (matched retained intensity)",
        &[
            "λ_retained",
            "process",
            "nodes",
            "good tiles",
            "max deg",
            "P_empty(ℓ=1)",
        ],
    );
    let mut results = Vec::new();
    for lambda_target in [20.0, 30.0] {
        // Invert the Matérn retention formula for the parent intensity.
        let retention_arg = 1.0 - lambda_target * pi_r2;
        assert!(retention_arg > 0.0, "target too dense for this hard core");
        let lambda_parent = -retention_arg.ln() / pi_r2;

        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        for (name, pts) in [
            (
                "Poisson",
                sample_poisson_window(&mut rng_from_seed(seed()), lambda_target, &window),
            ),
            (
                "Matérn-II",
                sample_matern_ii(
                    &mut rng_from_seed(seed()),
                    lambda_parent,
                    hard_core,
                    &window,
                ),
            ),
        ] {
            let net = build_udg_sens(&pts, params, grid.clone()).unwrap();
            let p_empty = empty_box_curve(&net, &pts, &[1.0], boxes, seed())[0].p_empty;
            let s = net.summary();
            t.row(&[
                f(lambda_target, 0),
                name.into(),
                pts.len().to_string(),
                s.tiles_good.to_string(),
                s.max_degree.to_string(),
                f(p_empty, 4),
            ]);
            assert!(s.max_degree <= 4, "P1 must hold for {name}");
            results.push((lambda_target, name.to_string(), s.tiles_good, p_empty));
        }
    }
    t.print();
    println!(
        "shape check: at matched intensity the hard-core deployment is at least as good as \
         Poisson (regularity reduces empty regions) — the construction does not secretly rely \
         on complete spatial randomness."
    );
    write_json("exp_matern", &results);
}
