//! EXP-C34 — Corollary 3.4: the box side needed to push the empty
//! probability below 1/n grows like log n.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::coverage::ell_for_target;
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 16.0 } else { 36.0 };
    let samples = scaled(20_000);

    let grid = TileGrid::fit(side, params.tile_side);
    let window = grid.covered_area();
    let pts = sample_poisson_window(&mut rng_from_seed(seed()), 30.0, &window);
    let net = build_udg_sens(&pts, params, grid).unwrap();

    let mut t = Table::new(
        "EXP-C34: smallest ℓ with P[B(ℓ) empty] < 1/n",
        &["n", "log n", "ℓ*", "ℓ*/log n"],
    );
    let mut results = Vec::new();
    for n in [10.0, 30.0, 100.0, 300.0, 1000.0] {
        match ell_for_target(&net, &pts, n, samples, seed()) {
            Some(ell) => {
                t.row(&[f(n, 0), f(n.ln(), 2), f(ell, 3), f(ell / n.ln(), 3)]);
                results.push((n, Some(ell)));
            }
            None => {
                t.row(&[f(n, 0), f(n.ln(), 2), "-".into(), "-".into()]);
                results.push((n, None));
            }
        }
    }
    t.print();
    println!(
        "shape check (Cor 3.4): ℓ*/log n is roughly constant — the required box side grows \
         logarithmically in the failure target."
    );
    write_json("exp_coverage_logn", &results);
}
