//! EXP-T22 — Theorem 2.2: the supercritical density λ_s of UDG-SENS.
//!
//! Paper: "Numerical calculations showed that the smallest value of λ for
//! which the probability of a tile being good exceeds 0.593 is λ_s = 1.568."
//! DESIGN.md §2 documents why that constant cannot be reproduced under any
//! region geometry; this experiment reports the measured λ_s for
//! (a) the corrected strict geometry (workspace default),
//! (b) the optimiser's best strict geometry, and
//! (c) the paper's stated geometry with visibility-verified election.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::optimize::{lambda_s_analytic, optimize_udg_geometry};
use wsn_core::params::UdgSensParams;
use wsn_core::threshold::{lambda_s_udg, GOODNESS_TARGET};

fn main() {
    let reps = scaled(20_000);
    let configs: Vec<(&str, UdgSensParams)> = vec![
        ("strict-default", UdgSensParams::strict_default()),
        (
            "strict-optimized",
            optimize_udg_geometry(if wsn_bench::quick_mode() { 10 } else { 24 }).params,
        ),
        ("paper-geometry", UdgSensParams::paper()),
    ];

    // P[good](λ) sweep per configuration.
    let lambdas: Vec<f64> = vec![1.0, 1.568, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0];
    let mut t = Table::new(
        &format!("EXP-T22: P[tile good](λ), {reps} tiles per point"),
        &["config", "λ", "P[good] MC", "P[good] exact"],
    );
    for (name, params) in &configs {
        for &l in &lambdas {
            let mc = wsn_core::threshold::p_good_udg(*params, l, reps, seed());
            let exact = wsn_core::threshold::p_good_udg_analytic(*params, l)
                .map(|p| f(p, 4))
                .unwrap_or_else(|| "-".into());
            t.row(&[name.to_string(), f(l, 3), f(mc, 4), exact]);
        }
    }
    t.print();

    let mut t2 = Table::new(
        "EXP-T22: measured λ_s (target P[good] = 0.593)",
        &["config", "λ_s measured", "λ_s analytic", "paper λ_s"],
    );
    let mut results = Vec::new();
    for (name, params) in &configs {
        let ls = lambda_s_udg(*params, GOODNESS_TARGET, reps / 4, 18, seed());
        let analytic = lambda_s_analytic(*params, GOODNESS_TARGET)
            .map(|v| f(v, 3))
            .unwrap_or_else(|| "-".into());
        t2.row(&[name.to_string(), f(ls, 3), analytic, "1.568".into()]);
        results.push((name.to_string(), ls));
    }
    t2.print();
    println!(
        "shape check: finite λ_s exists for every geometry (supercritical regime reachable), \
         as Theorem 2.2 claims; the paper's 1.568 is not attainable (DESIGN.md D2)."
    );
    write_json("exp_udg_threshold", &results);
}
