//! EXP-T32 — Theorem 3.2: constant stretch with an exponentially small
//! tail.
//!
//! Expected shape: mean stretch flat in distance; `P[stretch > α]` decaying
//! (roughly exponentially) with distance for α above the typical constant.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::stretch::{binned_stretch, measure_sens_stretch, sample_rep_pairs};
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 20.0 } else { 60.0 };
    let pairs_n = scaled(4000);
    let grid = TileGrid::fit(side, params.tile_side);
    let window = grid.covered_area();
    let pts = sample_poisson_window(&mut rng_from_seed(seed()), 25.0, &window);
    let net = build_udg_sens(&pts, params, grid).unwrap();

    let pairs = sample_rep_pairs(&net, pairs_n, seed());
    let samples = measure_sens_stretch(&net, &pts, &pairs);
    let max_d = side * 0.9;
    let edges: Vec<f64> = (0..=8)
        .map(|i| 1.0 + (max_d - 1.0) * i as f64 / 8.0)
        .collect();
    let alpha = 2.5;
    let bins = binned_stretch(&samples, &edges, alpha);

    let mut t = Table::new(
        &format!(
            "EXP-T32: stretch vs distance (α = {alpha}, {} pairs)",
            samples.len()
        ),
        &[
            "d range",
            "pairs",
            "mean stretch",
            "max stretch",
            "P[stretch>α]",
        ],
    );
    for b in &bins {
        if b.pairs == 0 {
            continue;
        }
        t.row(&[
            format!("[{:.1},{:.1})", b.dist_lo, b.dist_hi),
            b.pairs.to_string(),
            f(b.mean_stretch, 3),
            f(b.max_stretch, 3),
            f(b.tail_prob, 4),
        ]);
    }
    t.print();
    println!(
        "shape check (Thm 3.2): mean stretch is flat in distance (constant-stretch) and the \
         α-exceedance probability does not grow with distance."
    );
    write_json("exp_stretch", &bins);
}
