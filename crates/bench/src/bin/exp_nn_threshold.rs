//! EXP-T24 — Theorem 2.4: the critical neighbour count k_s of NN-SENS.
//!
//! Paper: "the smallest value of k for which the probability of a tile
//! being good exceeds 0.593 is 188, and the value of a for which this
//! happens is 0.893". We reproduce the calculation by Monte Carlo: for each
//! tile scale `a`, the smallest k with `P[good] ≥ 0.593` (regions occupied
//! AND ≤ k/2 points per tile), then report the best (a, k_s).

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::threshold::{
    k_s_for_scale, nn_tile_samples, p_good_nn_from_samples, GOODNESS_TARGET,
};

fn main() {
    let reps = scaled(4000);
    let scales: Vec<f64> = (0..14).map(|i| 0.5 + 0.1 * i as f64).collect();

    let mut t = Table::new(
        &format!("EXP-T24: NN-SENS goodness vs tile scale a ({reps} tiles/point)"),
        &[
            "a",
            "P[regions occupied]",
            "k_s (P≥0.593)",
            "P[good] at k_s",
        ],
    );
    let mut best: Option<(f64, usize)> = None;
    let mut results = Vec::new();
    for &a in &scales {
        let samples = nn_tile_samples(a, reps, seed());
        let p_regions =
            samples.iter().filter(|s| s.regions_ok).count() as f64 / samples.len() as f64;
        let ks = k_s_for_scale(a, GOODNESS_TARGET, reps, seed());
        let (ks_str, p_at) = match ks {
            Some(k) => (k.to_string(), f(p_good_nn_from_samples(&samples, k), 4)),
            None => ("-".into(), "-".into()),
        };
        t.row(&[f(a, 2), f(p_regions, 4), ks_str, p_at]);
        if let Some(k) = ks {
            if best.is_none_or(|(_, bk)| k < bk) {
                best = Some((a, k));
            }
        }
        results.push((a, ks));
    }
    t.print();

    match best {
        Some((a, k)) => println!(
            "best measured: k_s = {k} at a = {a:.2}   (paper: k_s = 188 at a = 0.893)\n\
             shape check: a finite k_s exists with an interior optimum in a; at full replicate \
             counts the measured optimum reproduces the paper's (188, ≈0.9) almost exactly."
        ),
        None => println!("no feasible k_s found in the scanned range (increase reps/scales)"),
    }
    write_json("exp_nn_threshold", &results);
}
