//! EXP-P1 — sparsity property P1 (and Fig. 1): degree distribution of the
//! SENS subgraph vs the base UDG and the classical topology-control
//! baselines.
//!
//! Expected shape: SENS max degree ≤ 4 *independent of density*, while the
//! UDG's mean degree grows linearly in λ and even the baselines (Gabriel,
//! RNG, Yao) keep a constant-factor more edges.

use wsn_bench::table::{f, Table};
use wsn_bench::{seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_graph::stats::degree_stats;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};
use wsn_rgg::{build_gabriel, build_rng, build_udg, build_yao};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 12.0 } else { 30.0 };
    let mut t = Table::new(
        "EXP-P1: degree statistics by topology and density",
        &["λ", "topology", "nodes", "edges", "mean deg", "max deg"],
    );
    let mut results = Vec::new();
    for lambda in [20.0, 30.0, 45.0] {
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed()), lambda, &window);
        let udg = build_udg(&pts, params.radius);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        let rows: Vec<(&str, wsn_graph::stats::DegreeStats)> = vec![
            ("UDG (base)", degree_stats(&udg)),
            ("Gabriel", degree_stats(&build_gabriel(&pts, params.radius))),
            ("RNG", degree_stats(&build_rng(&pts, params.radius))),
            ("Yao(6)", degree_stats(&build_yao(&pts, params.radius, 6))),
            ("UDG-SENS", net.degree_stats()),
        ];
        for (name, s) in rows {
            t.row(&[
                f(lambda, 0),
                name.into(),
                s.n.to_string(),
                s.m.to_string(),
                f(s.mean, 2),
                s.max.to_string(),
            ]);
            results.push((lambda, name.to_string(), s.mean, s.max));
        }
        assert!(net.degree_stats().max <= 4, "P1 violated");
    }
    t.print();
    println!(
        "shape check: UDG mean degree grows ~linearly with λ; SENS max degree stays ≤ 4 \
         at every density (P1), far below every baseline."
    );
    write_json("exp_sparsity", &results);
}
