//! `wsn-scenarios` — the unified experiment driver.
//!
//! One binary replaces the fifteen `exp_*` binaries that used to live in
//! this directory: every paper claim is a named preset of the
//! `wsn-scenario` crate, run over the declarative scenario matrix with
//! deterministic per-replication seeds.
//!
//! ```text
//! wsn-scenarios list                      # the preset catalogue
//! wsn-scenarios run --all                 # full-profile run, aligned tables
//! wsn-scenarios run sparsity coverage     # a subset
//! wsn-scenarios run --quick --out DIR     # quick profile + JSON reports
//! wsn-scenarios check --all               # quick run vs tests/golden (CI)
//! wsn-scenarios bless --all               # regenerate tests/golden
//! ```
//!
//! `check` and `bless` always use the quick profile and the default seed:
//! that is the configuration the golden files pin. Byte-identical output at
//! any `RAYON_NUM_THREADS` is part of the contract `check` verifies.

use std::path::PathBuf;
use std::process::ExitCode;

use wsn_bench::paths::default_output_path;
use wsn_bench::table::{f, Table};
use wsn_scenario::{all_presets, find_preset, golden, run_preset, Profile, Report};

/// Default seed (override with `--seed` for `run`; pinned for goldens).
const DEFAULT_SEED: u64 = 0xC0FFEE;

fn default_golden_dir() -> PathBuf {
    // Resolved at run time relative to the enclosing workspace (a binary
    // restored from a CI cache must not write to its compile-time path).
    default_output_path("tests").join("golden")
}

struct Args {
    command: String,
    presets: Vec<String>,
    all: bool,
    quick: bool,
    seed: Option<u64>,
    out_dir: Option<PathBuf>,
    golden_dir: PathBuf,
    baseline: Option<PathBuf>,
    fresh: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: wsn-scenarios <list | run | check | bless | bench | bench-lifetime | gate | \
         gate-lifetime> [PRESET...] [options]\n\
         \n\
         commands:\n\
         \x20 list            show the preset catalogue\n\
         \x20 run             run presets and print aligned result tables\n\
         \x20 check           quick-profile run, byte-compare against golden files\n\
         \x20 bless           quick-profile run, rewrite the golden files\n\
         \x20 bench           sharded-vs-monolithic construction pipeline bench,\n\
         \x20                 writes BENCH_pipeline.json (nodes/sec, phases, RSS)\n\
         \x20 bench-lifetime  churn-engine incremental-vs-rebuild repair bench,\n\
         \x20                 writes BENCH_lifetime.json (speedup per topology +\n\
         \x20                 churn-locality sweep)\n\
         \x20 gate            CI perf gate: compare a fresh pipeline bench JSON\n\
         \x20                 against the committed baseline (--baseline/--fresh)\n\
         \x20 gate-lifetime   CI perf gate over lifetime bench JSONs: locality\n\
         \x20                 fingerprints + most-local sweep speedup\n\
         \n\
         options:\n\
         \x20 --all           select every preset\n\
         \x20 --quick         run the quick (smoke) profile      [run, bench*]\n\
         \x20 --seed N        base seed, default 0xC0FFEE        [run, bench*]\n\
         \x20 --out PATH      JSON output: report dir for `run`,\n\
         \x20                 output file for `bench*`           [run, bench*]\n\
         \x20 --golden-dir D  golden directory, default tests/golden\n\
         \x20 --baseline P    committed bench JSON               [gate]\n\
         \x20 --fresh P       freshly measured bench JSON        [gate]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let Some(command) = it.next() else { usage() };
    let mut args = Args {
        command,
        presets: Vec::new(),
        all: false,
        quick: false,
        seed: None,
        out_dir: None,
        golden_dir: default_golden_dir(),
        baseline: None,
        fresh: None,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => args.all = true,
            "--quick" => args.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.seed = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => args.out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--golden-dir" => args.golden_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--fresh" => args.fresh = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            name if !name.starts_with('-') => args.presets.push(name.to_string()),
            _ => usage(),
        }
    }
    // The goldens pin the quick profile at the default seed: rejecting the
    // run-only flags here keeps `bless --seed 42` from silently rewriting
    // them at a seed the user did not get.
    if matches!(args.command.as_str(), "check" | "bless")
        && (args.quick || args.seed.is_some() || args.out_dir.is_some())
    {
        eprintln!(
            "--quick/--seed/--out apply to `run` only; `{}` always uses the \
             quick profile at the default seed",
            args.command
        );
        std::process::exit(2);
    }
    args
}

fn selected(args: &Args) -> Vec<&'static str> {
    if args.all {
        return all_presets().iter().map(|p| p.name).collect();
    }
    if args.presets.is_empty() {
        // Guard against accidentally launching the whole full-profile
        // catalogue (minutes of compute) on a bare `run`.
        eprintln!("no presets selected: name them explicitly or pass --all");
        std::process::exit(2);
    }
    let mut out = Vec::new();
    for name in &args.presets {
        match find_preset(name) {
            Some(p) => out.push(p.name),
            None => {
                eprintln!("unknown preset `{name}` (see `wsn-scenarios list`)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn cmd_list() -> ExitCode {
    let mut t = Table::new("wsn-scenarios presets", &["preset", "replaces", "title"]);
    for p in all_presets() {
        let replaces = if p.replaces.is_empty() {
            "(new)".to_string()
        } else {
            p.replaces.join(", ")
        };
        t.row(&[p.name.to_string(), replaces, p.title.to_string()]);
    }
    t.print();
    ExitCode::SUCCESS
}

/// Aligned per-cell metric tables for human consumption.
fn print_report(report: &Report) {
    println!("== preset `{}` ({}) ==", report.name, report.title);
    for cell in &report.scenarios {
        let mut t = Table::new(&cell.label, &["metric", "n", "mean", "min", "max"]);
        for (name, agg) in &cell.metrics.0 {
            t.row(&[
                name.clone(),
                agg.n.to_string(),
                f(agg.mean, 4),
                f(agg.min, 4),
                f(agg.max, 4),
            ]);
        }
        t.print();
    }
    if let Some(substrate) = &report.substrate {
        // Substrate payloads are structured tables already; print the JSON.
        println!(
            "substrate payload:\n{}",
            serde_json::to_string_pretty(substrate).unwrap()
        );
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let profile = if args.quick {
        Profile::Quick
    } else {
        Profile::Full
    };
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    for name in selected(args) {
        let report = run_preset(name, profile, seed).expect("preset name pre-validated");
        print_report(&report);
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{name}.json"));
            std::fs::create_dir_all(dir).expect("create --out dir");
            std::fs::write(&path, report.canonical_json()).expect("write report");
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_goldens(args: &Args, bless: bool) -> ExitCode {
    let mut failures = 0usize;
    for name in selected(args) {
        let report = run_preset(name, Profile::Quick, DEFAULT_SEED).expect("pre-validated");
        if bless {
            let path = golden::bless(&args.golden_dir, &report).expect("write golden");
            println!("blessed {}", path.display());
            continue;
        }
        match golden::check(&args.golden_dir, &report) {
            golden::GoldenOutcome::Match => println!("OK    {name}"),
            golden::GoldenOutcome::Diff { detail } => {
                failures += 1;
                eprintln!("DIFF  {name}: {detail}");
            }
            golden::GoldenOutcome::Missing { detail } => {
                failures += 1;
                eprintln!("MISS  {name}: {detail}");
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} preset(s) diverged from the goldens; \
             run `wsn-scenarios bless` if the change is intentional"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Shared tail of the bench emitters: pretty-print to the (runtime-
/// resolved) default path or the `--out` override.
fn write_bench_json<T: serde::Serialize>(args: &Args, default_name: &str, report: &T) {
    let path = args
        .out_dir
        .clone()
        .unwrap_or_else(|| default_output_path(default_name));
    let mut json = serde_json::to_string_pretty(report).expect("bench serialisation is total");
    json.push('\n');
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// `bench`: measure the sharded pipeline against the monolithic builders
/// and write the machine-readable baseline.
fn cmd_bench(args: &Args) -> ExitCode {
    if !args.presets.is_empty() || args.all {
        eprintln!("`bench` takes no presets (it has its own topology × size grid)");
        return ExitCode::from(2);
    }
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let report = wsn_bench::pipeline::run_pipeline_bench(args.quick, seed);
    write_bench_json(args, "BENCH_pipeline.json", &report);
    ExitCode::SUCCESS
}

/// `bench-lifetime`: incremental-vs-rebuild churn repair economics.
fn cmd_bench_lifetime(args: &Args) -> ExitCode {
    if !args.presets.is_empty() || args.all {
        eprintln!("`bench-lifetime` takes no presets (it has its own topology × size grid)");
        return ExitCode::from(2);
    }
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let report = wsn_bench::lifetime::run_lifetime_bench(args.quick, seed);
    write_bench_json(args, "BENCH_lifetime.json", &report);
    ExitCode::SUCCESS
}

/// `gate` / `gate-lifetime`: the CI perf-regression gates over bench
/// documents.
fn cmd_gate(args: &Args, lifetime: bool) -> ExitCode {
    let cmd = if lifetime { "gate-lifetime" } else { "gate" };
    let (Some(baseline_path), Some(fresh_path)) = (&args.baseline, &args.fresh) else {
        eprintln!("`{cmd}` needs --baseline and --fresh bench JSON paths");
        return ExitCode::from(2);
    };
    // A missing or mangled bench document is an environment problem, not a
    // perf regression: name the file and exit cleanly so CI logs show the
    // cause instead of a panic backtrace.
    let load = |path: &PathBuf| -> Result<serde::value::Value, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{cmd}: cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&text)
            .map_err(|e| format!("{cmd}: cannot parse {} as JSON: {e:?}", path.display()))
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };
    let report = if lifetime {
        wsn_bench::gate::gate_lifetime(&baseline, &fresh)
    } else {
        wsn_bench::gate::gate_pipeline(&baseline, &fresh)
    };
    for s in &report.skipped {
        println!("SKIP  {s} (no baseline row)");
    }
    if lifetime {
        println!(
            "{cmd}: {} most-local sweep row(s) within {:.0}% of baseline speedup",
            report.checked,
            (1.0 - wsn_bench::gate::LIFETIME_SPEEDUP_DROP_TOLERANCE) * 100.0
        );
    } else {
        println!(
            "{cmd}: {} row(s) within {:.0}% of baseline throughput",
            report.checked,
            (1.0 - wsn_bench::gate::NODES_PER_SEC_DROP_TOLERANCE) * 100.0
        );
    }
    if report.passed() {
        println!("{cmd}: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL  {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&args),
        "check" => cmd_goldens(&args, false),
        "bless" => cmd_goldens(&args, true),
        "bench" => cmd_bench(&args),
        "bench-lifetime" => cmd_bench_lifetime(&args),
        "gate" => cmd_gate(&args, false),
        "gate-lifetime" => cmd_gate(&args, true),
        _ => usage(),
    }
}
