//! `wsn-scenarios` — the unified experiment driver.
//!
//! One binary replaces the fifteen `exp_*` binaries that used to live in
//! this directory: every paper claim is a named preset of the
//! `wsn-scenario` crate, run over the declarative scenario matrix with
//! deterministic per-replication seeds.
//!
//! ```text
//! wsn-scenarios list                      # the preset catalogue
//! wsn-scenarios run --all                 # full-profile run, aligned tables
//! wsn-scenarios run sparsity coverage     # a subset
//! wsn-scenarios run --quick --out DIR     # quick profile + JSON reports
//! wsn-scenarios check --all               # quick run vs tests/golden (CI)
//! wsn-scenarios bless --all               # regenerate tests/golden
//! ```
//!
//! `check` and `bless` always use the quick profile and the default seed:
//! that is the configuration the golden files pin. Byte-identical output at
//! any `RAYON_NUM_THREADS` is part of the contract `check` verifies.

use std::path::PathBuf;
use std::process::ExitCode;

use wsn_bench::paths::default_output_path;
use wsn_bench::table::{f, Table};
use wsn_scenario::{all_presets, find_preset, golden, run_preset, Profile, Report};

/// Default seed (override with `--seed` for `run`; pinned for goldens).
const DEFAULT_SEED: u64 = 0xC0FFEE;

fn default_golden_dir() -> PathBuf {
    // Resolved at run time relative to the enclosing workspace (a binary
    // restored from a CI cache must not write to its compile-time path).
    default_output_path("tests").join("golden")
}

struct Args {
    command: String,
    presets: Vec<String>,
    all: bool,
    quick: bool,
    seed: Option<u64>,
    out_dir: Option<PathBuf>,
    golden_dir: PathBuf,
    baseline: Option<PathBuf>,
    fresh: Option<PathBuf>,
    serve: ServeArgs,
}

/// Knobs of the `serve` subcommand (the ad-hoc service runner).
struct ServeArgs {
    topology: String,
    nodes: u64,
    epochs: usize,
    readers: usize,
    clients: usize,
    queries: usize,
    churn: f64,
    blast: f64,
    join: f64,
    verify: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            topology: "udg".into(),
            nodes: 100_000,
            epochs: 5,
            readers: 4,
            clients: 8,
            queries: 64,
            churn: 0.10,
            blast: 5.0,
            join: 0.5,
            verify: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: wsn-scenarios <list | run | check | bless | serve | bench | bench-lifetime | \
         bench-serve | gate | gate-lifetime | gate-serve> [PRESET...] [options]\n\
         \n\
         commands:\n\
         \x20 list            show the preset catalogue\n\
         \x20 run             run presets and print aligned result tables\n\
         \x20 check           quick-profile run, byte-compare against golden files\n\
         \x20 bless           quick-profile run, rewrite the golden files\n\
         \x20 serve           run the always-on topology service once: churn the\n\
         \x20                 network while reader threads answer queries over\n\
         \x20                 epoch snapshots; nonzero exit on errors or zero qps\n\
         \x20 bench           sharded-vs-monolithic construction pipeline bench,\n\
         \x20                 writes BENCH_pipeline.json (nodes/sec, phases, RSS)\n\
         \x20 bench-lifetime  churn-engine incremental-vs-rebuild repair bench,\n\
         \x20                 writes BENCH_lifetime.json (speedup per topology +\n\
         \x20                 churn-locality sweep)\n\
         \x20 bench-serve     topology-service throughput bench, writes\n\
         \x20                 BENCH_serve.json (qps/p50/p99/cache per reader count,\n\
         \x20                 every row digest-checked against the replay oracle)\n\
         \x20 gate            CI perf gate: compare a fresh pipeline bench JSON\n\
         \x20                 against the committed baseline (--baseline/--fresh)\n\
         \x20 gate-lifetime   CI perf gate over lifetime bench JSONs: locality\n\
         \x20                 fingerprints + most-local sweep speedup\n\
         \x20 gate-serve      CI perf gate over serve bench JSONs: replay identity,\n\
         \x20                 zero errors, qps per (topology, n, readers)\n\
         \n\
         options:\n\
         \x20 --all           select every preset\n\
         \x20 --quick         run the quick (smoke) profile      [run, bench*]\n\
         \x20 --seed N        base seed, default 0xC0FFEE        [run, bench*, serve]\n\
         \x20 --out PATH      JSON output: report dir for `run`,\n\
         \x20                 output file for `bench*`           [run, bench*]\n\
         \x20 --golden-dir D  golden directory, default tests/golden\n\
         \x20 --baseline P    committed bench JSON               [gate*]\n\
         \x20 --fresh P       freshly measured bench JSON        [gate*]\n\
         \n\
         serve options:\n\
         \x20 --topology T    udg | rng | gabriel | yao | knn | hng  (default udg)\n\
         \x20 --nodes N       target universe size               (default 100000)\n\
         \x20 --epochs N      churn epochs to serve              (default 5)\n\
         \x20 --readers N     reader threads                     (default 4)\n\
         \x20 --clients N     query clients                      (default 8)\n\
         \x20 --queries N     queries per client per epoch       (default 64)\n\
         \x20 --churn F       per-epoch kill fraction            (default 0.10)\n\
         \x20 --blast R       clustered blast radius, UDG radii  (default 5.0)\n\
         \x20 --join F        joins admitted per death           (default 0.5)\n\
         \x20 --verify        also run the single-threaded replay oracle and\n\
         \x20                 fail on any answer divergence"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let Some(command) = it.next() else { usage() };
    let mut args = Args {
        command,
        presets: Vec::new(),
        all: false,
        quick: false,
        seed: None,
        out_dir: None,
        golden_dir: default_golden_dir(),
        baseline: None,
        fresh: None,
        serve: ServeArgs::default(),
    };
    fn next_parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>) -> T {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => args.all = true,
            "--quick" => args.quick = true,
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                args.seed = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            "--out" => args.out_dir = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            "--topology" => args.serve.topology = it.next().unwrap_or_else(|| usage()),
            "--nodes" => args.serve.nodes = next_parse(&mut it),
            "--epochs" => args.serve.epochs = next_parse(&mut it),
            "--readers" => args.serve.readers = next_parse(&mut it),
            "--clients" => args.serve.clients = next_parse(&mut it),
            "--queries" => args.serve.queries = next_parse(&mut it),
            "--churn" => args.serve.churn = next_parse(&mut it),
            "--blast" => args.serve.blast = next_parse(&mut it),
            "--join" => args.serve.join = next_parse(&mut it),
            "--verify" => args.serve.verify = true,
            "--golden-dir" => args.golden_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().unwrap_or_else(|| usage())))
            }
            "--fresh" => args.fresh = Some(PathBuf::from(it.next().unwrap_or_else(|| usage()))),
            name if !name.starts_with('-') => args.presets.push(name.to_string()),
            _ => usage(),
        }
    }
    // The goldens pin the quick profile at the default seed: rejecting the
    // run-only flags here keeps `bless --seed 42` from silently rewriting
    // them at a seed the user did not get.
    if matches!(args.command.as_str(), "check" | "bless")
        && (args.quick || args.seed.is_some() || args.out_dir.is_some())
    {
        eprintln!(
            "--quick/--seed/--out apply to `run` only; `{}` always uses the \
             quick profile at the default seed",
            args.command
        );
        std::process::exit(2);
    }
    args
}

fn selected(args: &Args) -> Vec<&'static str> {
    if args.all {
        return all_presets().iter().map(|p| p.name).collect();
    }
    if args.presets.is_empty() {
        // Guard against accidentally launching the whole full-profile
        // catalogue (minutes of compute) on a bare `run`.
        eprintln!("no presets selected: name them explicitly or pass --all");
        std::process::exit(2);
    }
    let mut out = Vec::new();
    for name in &args.presets {
        match find_preset(name) {
            Some(p) => out.push(p.name),
            None => {
                eprintln!("unknown preset `{name}` (see `wsn-scenarios list`)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn cmd_list() -> ExitCode {
    let mut t = Table::new("wsn-scenarios presets", &["preset", "replaces", "title"]);
    for p in all_presets() {
        let replaces = if p.replaces.is_empty() {
            "(new)".to_string()
        } else {
            p.replaces.join(", ")
        };
        t.row(&[p.name.to_string(), replaces, p.title.to_string()]);
    }
    t.print();
    ExitCode::SUCCESS
}

/// Aligned per-cell metric tables for human consumption.
fn print_report(report: &Report) {
    println!("== preset `{}` ({}) ==", report.name, report.title);
    for cell in &report.scenarios {
        let mut t = Table::new(&cell.label, &["metric", "n", "mean", "min", "max"]);
        for (name, agg) in &cell.metrics.0 {
            t.row(&[
                name.clone(),
                agg.n.to_string(),
                f(agg.mean, 4),
                f(agg.min, 4),
                f(agg.max, 4),
            ]);
        }
        t.print();
    }
    if let Some(substrate) = &report.substrate {
        // Substrate payloads are structured tables already; print the JSON.
        println!(
            "substrate payload:\n{}",
            serde_json::to_string_pretty(substrate).unwrap()
        );
    }
}

fn cmd_run(args: &Args) -> ExitCode {
    let profile = if args.quick {
        Profile::Quick
    } else {
        Profile::Full
    };
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    for name in selected(args) {
        let report = run_preset(name, profile, seed).expect("preset name pre-validated");
        print_report(&report);
        if let Some(dir) = &args.out_dir {
            let path = dir.join(format!("{name}.json"));
            std::fs::create_dir_all(dir).expect("create --out dir");
            std::fs::write(&path, report.canonical_json()).expect("write report");
            println!("wrote {}", path.display());
        }
    }
    ExitCode::SUCCESS
}

fn cmd_goldens(args: &Args, bless: bool) -> ExitCode {
    let mut failures = 0usize;
    for name in selected(args) {
        let report = run_preset(name, Profile::Quick, DEFAULT_SEED).expect("pre-validated");
        if bless {
            let path = golden::bless(&args.golden_dir, &report).expect("write golden");
            println!("blessed {}", path.display());
            continue;
        }
        match golden::check(&args.golden_dir, &report) {
            golden::GoldenOutcome::Match => println!("OK    {name}"),
            golden::GoldenOutcome::Diff { detail } => {
                failures += 1;
                eprintln!("DIFF  {name}: {detail}");
            }
            golden::GoldenOutcome::Missing { detail } => {
                failures += 1;
                eprintln!("MISS  {name}: {detail}");
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} preset(s) diverged from the goldens; \
             run `wsn-scenarios bless` if the change is intentional"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Shared tail of the bench emitters: pretty-print to the (runtime-
/// resolved) default path or the `--out` override.
fn write_bench_json<T: serde::Serialize>(args: &Args, default_name: &str, report: &T) {
    let path = args
        .out_dir
        .clone()
        .unwrap_or_else(|| default_output_path(default_name));
    let mut json = serde_json::to_string_pretty(report).expect("bench serialisation is total");
    json.push('\n');
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("wrote {}", path.display());
}

/// `bench`: measure the sharded pipeline against the monolithic builders
/// and write the machine-readable baseline.
fn cmd_bench(args: &Args) -> ExitCode {
    if !args.presets.is_empty() || args.all {
        eprintln!("`bench` takes no presets (it has its own topology × size grid)");
        return ExitCode::from(2);
    }
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let report = wsn_bench::pipeline::run_pipeline_bench(args.quick, seed);
    write_bench_json(args, "BENCH_pipeline.json", &report);
    ExitCode::SUCCESS
}

/// `bench-lifetime`: incremental-vs-rebuild churn repair economics.
fn cmd_bench_lifetime(args: &Args) -> ExitCode {
    if !args.presets.is_empty() || args.all {
        eprintln!("`bench-lifetime` takes no presets (it has its own topology × size grid)");
        return ExitCode::from(2);
    }
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let report = wsn_bench::lifetime::run_lifetime_bench(args.quick, seed);
    write_bench_json(args, "BENCH_lifetime.json", &report);
    ExitCode::SUCCESS
}

/// `bench-serve`: topology-service throughput per reader count, every row
/// digest-checked against the single-threaded replay oracle.
fn cmd_bench_serve(args: &Args) -> ExitCode {
    if !args.presets.is_empty() || args.all {
        eprintln!("`bench-serve` takes no presets (it has its own topology × size grid)");
        return ExitCode::from(2);
    }
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    let report = wsn_bench::serve::run_serve_bench(args.quick, seed);
    write_bench_json(args, "BENCH_serve.json", &report);
    ExitCode::SUCCESS
}

/// `serve`: one ad-hoc run of the always-on topology service. Exits
/// nonzero on query errors, zero qps, or (with `--verify`) any answer
/// divergence from the single-threaded replay oracle.
fn cmd_serve(args: &Args) -> ExitCode {
    use wsn_geom::Aabb;
    use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointSet};
    use wsn_rgg::IncTopology;
    use wsn_simnet::churn::{ChurnConfig, ChurnModel};
    use wsn_simnet::{run_replay, run_serve, ServeConfig};

    if !args.presets.is_empty() || args.all || args.quick {
        eprintln!("`serve` takes no presets/--quick (configure it with the serve options)");
        return ExitCode::from(2);
    }
    let s = &args.serve;
    let kind = match s.topology.as_str() {
        "udg" => IncTopology::Udg { radius: 1.0 },
        "rng" => IncTopology::Rng { radius: 1.0 },
        "gabriel" => IncTopology::Gabriel { radius: 1.0 },
        "yao" => IncTopology::Yao {
            radius: 1.0,
            cones: 6,
        },
        "knn" => IncTopology::Knn { k: 8 },
        "hng" => IncTopology::Hng {
            p: 0.5,
            links: 1,
            seed: args.seed.unwrap_or(DEFAULT_SEED),
        },
        other => {
            eprintln!("unknown --topology `{other}` (udg | rng | gabriel | yao | knn | hng)");
            return ExitCode::from(2);
        }
    };
    let seed = args.seed.unwrap_or(DEFAULT_SEED);
    // The universe: a Poisson deployment at the benches' density, with a
    // reserve pool (dead at start) for churn joins to admit.
    let lambda = 10.0;
    let side = ((s.nodes as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let deployed = points.len() - (0.125 * points.len() as f64).round() as usize;
    let alive: Vec<bool> = (0..points.len()).map(|i| i < deployed).collect();

    let mut churn = ChurnConfig::new(s.epochs, 1e12, 0, s.churn, s.join);
    churn.churn_model = ChurnModel::Clustered { radius: s.blast };
    churn.verify = false;
    let mut cfg = ServeConfig::new(churn, s.readers, s.clients, s.queries);
    cfg.seed = seed;

    let report = run_serve(&points, &alive, kind, &cfg);
    let mut t = Table::new(
        &format!("serve: {} over {} nodes", kind.label(), points.len()),
        &["metric", "value"],
    );
    t.row(&["epochs served".into(), report.epochs.to_string()]);
    t.row(&["readers".into(), report.readers.to_string()]);
    t.row(&["clients".into(), report.clients.to_string()]);
    t.row(&["queries".into(), report.queries.to_string()]);
    t.row(&["errors".into(), report.errors.to_string()]);
    t.row(&["qps".into(), f(report.qps, 0)]);
    t.row(&["p50 (us)".into(), f(report.p50_us, 1)]);
    t.row(&["p99 (us)".into(), f(report.p99_us, 1)]);
    t.row(&[
        "cache hits / lookups".into(),
        format!("{} / {}", report.cache_hits, report.cache_lookups),
    ]);
    t.row(&[
        "snapshots published / retired".into(),
        format!(
            "{} / {}",
            report.snapshots_published, report.snapshots_retired
        ),
    ]);
    t.row(&[
        "max live snapshots".into(),
        report.max_live_snapshots.to_string(),
    ]);
    t.row(&[
        "deaths / joins".into(),
        format!("{} / {}", report.deaths_total, report.joins_total),
    ]);
    t.row(&["final alive".into(), report.final_alive.to_string()]);
    t.row(&[
        "final fingerprint".into(),
        format!(
            "{:016x}",
            report.epoch_fingerprints.last().copied().unwrap_or(0)
        ),
    ]);
    t.print();

    let mut failed = false;
    if report.errors > 0 {
        eprintln!("serve: FAIL — {} query error(s)", report.errors);
        failed = true;
    }
    if report.qps <= 0.0 {
        eprintln!("serve: FAIL — zero sustained qps");
        failed = true;
    }
    if s.verify {
        let oracle = run_replay(&points, &alive, kind, &cfg);
        if report.client_digests != oracle.client_digests
            || report.epoch_fingerprints != oracle.epoch_fingerprints
            || report.answer_digest != oracle.answer_digest
        {
            eprintln!("serve: FAIL — concurrent answers diverged from the single-threaded replay");
            failed = true;
        } else {
            println!("serve: answers verified identical to the single-threaded replay");
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Which bench document a gate invocation compares.
#[derive(Clone, Copy, PartialEq)]
enum GateKind {
    Pipeline,
    Lifetime,
    Serve,
}

/// `gate` / `gate-lifetime` / `gate-serve`: the CI perf-regression gates
/// over bench documents.
fn cmd_gate(args: &Args, kind: GateKind) -> ExitCode {
    let cmd = match kind {
        GateKind::Pipeline => "gate",
        GateKind::Lifetime => "gate-lifetime",
        GateKind::Serve => "gate-serve",
    };
    let (Some(baseline_path), Some(fresh_path)) = (&args.baseline, &args.fresh) else {
        eprintln!("`{cmd}` needs --baseline and --fresh bench JSON paths");
        return ExitCode::from(2);
    };
    // A missing or mangled bench document is an environment problem, not a
    // perf regression: name the file and exit cleanly so CI logs show the
    // cause instead of a panic backtrace.
    let load = |path: &PathBuf| -> Result<serde::value::Value, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{cmd}: cannot read {}: {e}", path.display()))?;
        serde_json::from_str(&text)
            .map_err(|e| format!("{cmd}: cannot parse {} as JSON: {e:?}", path.display()))
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::from(2);
        }
    };
    let report = match kind {
        GateKind::Pipeline => wsn_bench::gate::gate_pipeline(&baseline, &fresh),
        GateKind::Lifetime => wsn_bench::gate::gate_lifetime(&baseline, &fresh),
        GateKind::Serve => wsn_bench::gate::gate_serve(&baseline, &fresh),
    };
    for s in &report.skipped {
        println!("SKIP  {s} (no baseline row)");
    }
    match kind {
        GateKind::Lifetime => println!(
            "{cmd}: {} most-local sweep row(s) within {:.0}% of baseline speedup",
            report.checked,
            (1.0 - wsn_bench::gate::LIFETIME_SPEEDUP_DROP_TOLERANCE) * 100.0
        ),
        GateKind::Serve => println!(
            "{cmd}: {} serve row(s) within {:.0}% of baseline qps",
            report.checked,
            (1.0 - wsn_bench::gate::SERVE_QPS_DROP_TOLERANCE) * 100.0
        ),
        GateKind::Pipeline => println!(
            "{cmd}: {} row(s) within {:.0}% of baseline throughput",
            report.checked,
            (1.0 - wsn_bench::gate::NODES_PER_SEC_DROP_TOLERANCE) * 100.0
        ),
    }
    if report.passed() {
        println!("{cmd}: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &report.failures {
            eprintln!("FAIL  {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.command.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&args),
        "check" => cmd_goldens(&args, false),
        "bless" => cmd_goldens(&args, true),
        "serve" => cmd_serve(&args),
        "bench" => cmd_bench(&args),
        "bench-lifetime" => cmd_bench_lifetime(&args),
        "bench-serve" => cmd_bench_serve(&args),
        "gate" => cmd_gate(&args, GateKind::Pipeline),
        "gate-lifetime" => cmd_gate(&args, GateKind::Lifetime),
        "gate-serve" => cmd_gate(&args, GateKind::Serve),
        _ => usage(),
    }
}
