//! EXP-T33 — Theorem 3.3: the probability that a box `B(ℓ)` misses the
//! SENS network decays exponentially in ℓ, and sharper at higher density.

use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::coverage::{empty_box_curve, exponential_decay_rate};
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window};

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 16.0 } else { 40.0 };
    let samples = scaled(20_000);
    let ells: Vec<f64> = (1..=10).map(|i| 0.25 * i as f64).collect();

    let mut t = Table::new(
        "EXP-T33: P[B(ℓ) ∩ SENS = ∅] by density",
        &["λ", "ℓ", "P_empty"],
    );
    let mut rates = Vec::new();
    for lambda in [20.0, 30.0, 45.0] {
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed()), lambda, &window);
        let net = build_udg_sens(&pts, params, grid).unwrap();
        let curve = empty_box_curve(&net, &pts, &ells, samples, seed());
        for c in &curve {
            t.row(&[f(lambda, 0), f(c.ell, 2), f(c.p_empty, 5)]);
        }
        let rate = exponential_decay_rate(&curve);
        rates.push((lambda, rate));
    }
    t.print();

    let mut t2 = Table::new(
        "EXP-T33: fitted exponential decay rates",
        &["λ", "decay rate c₃"],
    );
    for (lambda, rate) in &rates {
        t2.row(&[
            f(*lambda, 0),
            rate.map(|r| f(r, 3)).unwrap_or_else(|| "-".into()),
        ]);
    }
    t2.print();
    println!(
        "shape check (Thm 3.3): log P_empty is ~linear in ℓ (exponential decay) and the decay \
         rate increases with λ."
    );
    write_json("exp_coverage", &rates);
}
