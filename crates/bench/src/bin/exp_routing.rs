//! EXP-F9 — Fig. 9 routing (Angel et al.): message overhead per unit of
//! lattice distance is constant, and all same-core packets deliver.

use rand::RngExt;
use wsn_bench::table::{f, Table};
use wsn_bench::{scaled, seed, write_json};
use wsn_core::params::UdgSensParams;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_perc::{Lattice, Site};
use wsn_pointproc::{rng_from_seed, sample_poisson_window};
use wsn_simnet::route_packet;

fn main() {
    let params = UdgSensParams::strict_default();
    let side = if wsn_bench::quick_mode() { 20.0 } else { 70.0 };
    let routes = scaled(3000);

    // λ = 22 keeps a visible fraction of bad tiles so repairs actually
    // happen (P[good] ≈ 0.72).
    let grid = TileGrid::fit(side, params.tile_side);
    let window = grid.covered_area();
    let pts = sample_poisson_window(&mut rng_from_seed(seed()), 22.0, &window);
    let net = build_udg_sens(&pts, params, grid).unwrap();
    println!(
        "lattice {}x{}, open fraction {:.3}",
        net.lattice.cols(),
        net.lattice.rows(),
        net.lattice.open_fraction()
    );

    let cores: Vec<Site> = net
        .lattice
        .sites()
        .filter(|&s| {
            net.lattice.is_open(s) && net.rep_of(s).map(|r| net.is_member(r)).unwrap_or(false)
        })
        .collect();

    // Distance-binned accounting.
    let max_d = (net.lattice.cols() + net.lattice.rows()) as u32;
    let bin_of = |d: u32| -> usize { (d as usize * 6 / max_d as usize).min(5) };
    let mut per_bin: Vec<(u64, f64, f64, u64)> = vec![(0, 0.0, 0.0, 0); 6]; // n, Σoverhead, Σrepairs, delivered
    let mut rng = rng_from_seed(seed() ^ 0x5555);
    for _ in 0..routes {
        let a = cores[rng.random_range(0..cores.len())];
        let b = cores[rng.random_range(0..cores.len())];
        let d = Lattice::dist_l1(a, b);
        if d < 2 {
            continue;
        }
        let r = route_packet(&net, a, b);
        let bin = &mut per_bin[bin_of(d)];
        bin.0 += 1;
        bin.1 += r.overhead_ratio();
        bin.2 += r.repairs as f64;
        bin.3 += r.delivered as u64;
    }

    let mut t = Table::new(
        "EXP-F9: routing overhead vs distance (messages per lattice step)",
        &[
            "L1 distance bin",
            "routes",
            "delivered",
            "mean msgs/step",
            "mean repairs",
        ],
    );
    let mut results = Vec::new();
    for (i, &(n, sum_ov, sum_rep, delivered)) in per_bin.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let lo = i * max_d as usize / 6;
        let hi = (i + 1) * max_d as usize / 6;
        let mean_ov = sum_ov / n as f64;
        t.row(&[
            format!("[{lo},{hi})"),
            n.to_string(),
            f(delivered as f64 / n as f64, 4),
            f(mean_ov, 3),
            f(sum_rep / n as f64, 2),
        ]);
        results.push((lo, n, mean_ov));
    }
    t.print();
    println!(
        "shape check (Fig. 9 / Angel et al.): delivery = 1.0 within the core and messages per \
         lattice step stay O(1) — flat across distance bins — while absolute repairs grow \
         linearly with distance."
    );
    write_json("exp_routing", &results);
}
