//! # wsn-bench
//!
//! The experiment harness. Every theorem, claim and algorithm figure of the
//! paper is a *named preset* of the `wsn-scenario` crate, driven by the one
//! `wsn-scenarios` binary in this crate (which replaced the fifteen
//! historical `exp_*` binaries):
//!
//! ```text
//! cargo run -p wsn-bench --release --bin wsn-scenarios -- list
//! cargo run -p wsn-bench --release --bin wsn-scenarios -- run sparsity
//! cargo run -p wsn-bench --release --bin wsn-scenarios -- run --all --quick
//! cargo run -p wsn-bench --release --bin wsn-scenarios -- check --all
//! ```
//!
//! The quick profile of every preset is pinned by the golden-file suite
//! (`tests/scenarios_golden.rs` against `tests/golden/*.json`); `check`
//! re-runs it and fails on any byte difference.
//!
//! The criterion microbenches for the hot paths live under `benches/`.
//! This library keeps small shared helpers: `WSN_QUICK` / `WSN_SEED`
//! handling for ad-hoc tooling, aligned-table rendering, and JSON dumps.

pub mod gate;
pub mod lifetime;
pub mod paths;
pub mod pipeline;
pub mod serve;
pub mod table;

use serde::Serialize;

/// True when quick (smoke-test) mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("WSN_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Scale a replicate count down in quick mode.
pub fn scaled(full: usize) -> usize {
    if quick_mode() {
        (full / 10).max(8)
    } else {
        full
    }
}

/// Write a JSON result file if `WSN_JSON_DIR` is set.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    if let Ok(dir) = std::env::var("WSN_JSON_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()))
        {
            eprintln!("warning: could not write {path:?}: {e}");
        }
    }
}

/// Default deterministic seed for experiments (override with `WSN_SEED`).
pub fn seed() -> u64 {
    std::env::var("WSN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_reduces_in_quick_mode() {
        // Environment-dependent, so only check the arithmetic helper
        // directly.
        let scale = |full: usize| (full / 10).max(8);
        assert_eq!(scale(1000), 100);
        assert_eq!(scale(20), 8);
        let _ = quick_mode();
        assert!(seed() > 0);
    }
}
