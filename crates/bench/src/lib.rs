//! # wsn-bench
//!
//! The experiment harness: every theorem, claim and algorithm figure of the
//! paper has a binary target here that regenerates the corresponding
//! numbers (see DESIGN.md §5 for the index and EXPERIMENTS.md for recorded
//! paper-vs-measured results).
//!
//! Run an experiment with
//!
//! ```text
//! cargo run -p wsn-bench --release --bin exp_udg_threshold
//! ```
//!
//! Every binary honours the `WSN_QUICK=1` environment variable, which
//! scales replicate counts down ~10× for smoke runs (the integration tests
//! use it). Results are printed as aligned tables and, when `WSN_JSON_DIR`
//! is set, also written as JSON for archival.

pub mod table;

use serde::Serialize;

/// True when quick (smoke-test) mode is requested.
pub fn quick_mode() -> bool {
    std::env::var("WSN_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Scale a replicate count down in quick mode.
pub fn scaled(full: usize) -> usize {
    if quick_mode() {
        (full / 10).max(8)
    } else {
        full
    }
}

/// Write a JSON result file if `WSN_JSON_DIR` is set.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    if let Ok(dir) = std::env::var("WSN_JSON_DIR") {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, serde_json::to_string_pretty(value).unwrap()))
        {
            eprintln!("warning: could not write {path:?}: {e}");
        }
    }
}

/// Default deterministic seed for experiments (override with `WSN_SEED`).
pub fn seed() -> u64 {
    std::env::var("WSN_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FFEE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_reduces_in_quick_mode() {
        // Environment-dependent, so only check the arithmetic helper
        // directly.
        let scale = |full: usize| (full / 10).max(8);
        assert_eq!(scale(1000), 100);
        assert_eq!(scale(20), 8);
        let _ = quick_mode();
        assert!(seed() > 0);
    }
}
