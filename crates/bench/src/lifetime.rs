//! The `wsn-scenarios bench-lifetime` emitter: incremental-vs-rebuild
//! repair economics of the churn engine, recorded as `BENCH_lifetime.json`.
//!
//! For each plain topology × deployment size the harness runs the *same*
//! lifetime simulation twice — once with incremental shard repair, once
//! rebuilding the topology cold every epoch — under 10% per-epoch clustered
//! churn (sector blackouts; see `wsn_simnet::churn::ChurnModel` for why
//! clustering is the realistic regime). It records the wall-clock spent in
//! the repair step of each mode, their ratio (`speedup`), and two
//! edge-identity witnesses:
//!
//! * the per-epoch CSR fingerprints of both runs must agree exactly
//!   (`edge_identical`), and
//! * at the smallest size each topology additionally re-runs with the
//!   engine's verify path on, asserting byte-identity of the incremental
//!   CSR against a cold monolithic rebuild after *every* epoch
//!   (`verified_cold`).
//!
//! Timed repair runs keep verification off — a bench that times its own
//! assertions measures nothing.
//!
//! ## The churn-locality sweep
//!
//! The per-topology speedup rows answer "is incremental repair worth it?";
//! the [`LocalitySweepRow`] section answers the sharper question the
//! locality-proportional gather exists for: **does repair cost track the
//! churned region?** For each topology the sweep kills (and re-admits
//! reserve nodes inside) a block-aligned region sized from one shard up to
//! the whole window, races [`IncrementalGraph::apply_churn`] against the
//! same cold sharded rebuild the engine's rebuild mode uses, and records
//! the speedup ladder — which must *rise* as churn gets more local, where
//! the PR-4 whole-population gather plateaued at ~2–3× regardless of
//! locality. Every sweep point asserts fingerprint identity against the
//! rebuild, and the k-NN escalation counter rides along so a sweep that
//! quietly fell back to global indexing is visible in the recorded JSON.

use std::time::Instant;

use serde::Serialize;
use wsn_geom::hash::derive_seed2;
use wsn_geom::Aabb;
use wsn_graph::fingerprint;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointSet};
use wsn_rgg::{IncTopology, IncrementalGraph};
use wsn_simnet::churn::{
    cold_sharded_rebuild, simulate_lifetime_plain, ChurnConfig, ChurnModel, LifetimeReport,
    RenewalPolicy, RepairMode,
};

/// Schema tag of `BENCH_lifetime.json`; the gate names this version in its
/// diagnostics. `/4` added the `renewal` section (energy-renewal lifetime
/// economics alongside the repair economics).
pub const LIFETIME_SCHEMA: &str = "wsn-bench-lifetime/4";

/// Per-epoch expected kill fraction of the bench churn (the acceptance
/// regime: 10% per-epoch churn).
const CHURN_FRACTION: f64 = 0.10;

/// Blast radius of the clustered outages, in UDG radii.
const BLAST_RADIUS: f64 = 5.0;

/// Epochs simulated per row.
const EPOCHS: usize = 5;

/// Packets per epoch — kept small so repair, not routing, dominates the
/// timed loop.
const TRAFFIC: usize = 8;

/// Repair granularity (halo tiles per shard side) of the incremental mode.
const REPAIR_TILES: usize = 4;

/// One topology × size measurement.
#[derive(Clone, Debug, Serialize)]
pub struct LifetimeBenchRow {
    pub topology: String,
    /// Expected node count (Poisson intensity × window area).
    pub n_target: u64,
    /// Realised node count.
    pub nodes: u64,
    pub lambda: f64,
    pub side: f64,
    pub epochs: u64,
    pub churn_fraction: f64,
    pub blast_radius: f64,
    pub repair_tiles: usize,
    /// Total wall-clock of the incremental repair steps, seconds.
    pub incremental_repair_secs: f64,
    /// Portion of that spent splicing repaired shards' edge deltas into
    /// the chunked CSR — the per-epoch cost the monolithic `to_csr`
    /// rebuild paid as O(n + m) regardless of churn locality.
    pub incremental_splice_secs: f64,
    /// Total wall-clock of the rebuild-per-epoch steps, seconds.
    pub rebuild_secs: f64,
    /// `rebuild_secs / incremental_repair_secs`.
    pub speedup: f64,
    /// Per-epoch CSR fingerprints of the two modes agree exactly.
    pub edge_identical: bool,
    /// This row also ran the engine's byte-identity verification against a
    /// cold monolithic rebuild each epoch.
    pub verified_cold: bool,
    /// Mean dirty / re-derived shards per epoch of the incremental run.
    pub mean_dirty_shards: f64,
    pub mean_rederived_shards: f64,
    /// Survivors and deaths over the run (identical across modes).
    pub final_alive: u64,
    pub deaths_total: u64,
    pub delivered_total: u64,
}

/// One point of the churn-locality sweep: a block-aligned churn region
/// targeting `target_dirty_shards`, measured over `repeats` identical
/// kill → repair → restore cycles.
#[derive(Clone, Debug, Serialize)]
pub struct LocalitySweepRow {
    pub topology: String,
    pub n_target: u64,
    pub nodes: u64,
    pub repair_tiles: usize,
    /// Shards in the incremental plan.
    pub shard_count: u64,
    /// The ladder rung: how many shards the churn region was sized to
    /// dirty (1 = the most-local point the acceptance gate pins).
    pub target_dirty_shards: u64,
    /// Shards the repair actually marked dirty / re-derived (mean over
    /// repeats; k-NN straggler shards can push this past the target).
    pub mean_dirty_shards: f64,
    pub mean_rederived_shards: f64,
    /// Points gathered into the localized working sets per repair (mean) —
    /// the direct witness that gather work tracks the region, not n.
    pub mean_gathered: f64,
    /// Deaths + joins applied per cycle.
    pub churned_nodes: u64,
    pub repeats: u64,
    /// Total wall-clock across repeats of each mode, seconds.
    pub incremental_repair_secs: f64,
    /// Portion of the incremental total spent in the chunked-CSR splice
    /// (the O(dirty) replacement of the old O(n + m) `to_csr` floor).
    pub incremental_splice_secs: f64,
    pub rebuild_secs: f64,
    /// `rebuild_secs / incremental_repair_secs`.
    pub speedup: f64,
    /// Every repeat's repaired CSR fingerprint equals the cold sharded
    /// rebuild's.
    pub fingerprint_identical: bool,
    /// Global-index escalations across all repeats (k-NN only; always 0
    /// for the other topologies).
    pub escalations: u64,
}

/// Stable policy names of the renewal section, in recorded order. The
/// gate's completeness check pins exactly this set.
pub const RENEWAL_POLICIES: [&str; 4] = ["none", "mobile-charger", "solar", "sink-rotation"];

/// One renewal policy's lifetime economics: the same deployment, seed and
/// drain schedule simulated under each [`RenewalPolicy`], recorded so the
/// gate can assert that adding energy actually buys rounds. Everything in
/// a row is schedule-deterministic (no wall-clock), so fresh CI rows equal
/// the committed baseline byte-for-byte at any thread count.
#[derive(Clone, Debug, Serialize)]
pub struct RenewalBenchRow {
    /// One of [`RENEWAL_POLICIES`].
    pub policy: String,
    pub topology: String,
    pub nodes: u64,
    /// Simulated horizon.
    pub epochs: u64,
    /// First-partition epoch, or the full horizon when the network never
    /// partitioned (`partitioned` disambiguates the censored case).
    pub lifetime_rounds: u64,
    pub partitioned: bool,
    /// Total energy added by the policy over the run (0 for `none` and
    /// `sink-rotation`).
    pub recharged_total: f64,
    pub final_alive: u64,
    pub deaths_battery: u64,
    /// Population variance of alive batteries at the final epoch.
    pub final_battery_variance: f64,
    pub delivered_fraction: f64,
}

/// The whole `BENCH_lifetime.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct LifetimeBenchReport {
    pub schema: &'static str,
    pub quick: bool,
    pub seed: u64,
    /// Effective rayon worker count.
    pub threads: usize,
    pub rows: Vec<LifetimeBenchRow>,
    /// The churn-locality sweep (dirty-shard ladder per topology × size).
    pub locality_sweep: Vec<LocalitySweepRow>,
    /// Energy-renewal lifetime economics (one row per policy).
    pub renewal: Vec<RenewalBenchRow>,
}

/// Seed of the HNG bench hierarchy. Fixed so a bench row is reproducible
/// from the report seed alone: levels are a pure function of
/// `(seed, node id)` and never of the deployment.
const HNG_BENCH_SEED: u64 = 0x48_4E_47;

/// The benchmarked topologies (UDG and RNG carry the acceptance claim;
/// the rest record the trajectory of the whole family).
fn kinds() -> Vec<IncTopology> {
    vec![
        IncTopology::Udg { radius: 1.0 },
        IncTopology::Rng { radius: 1.0 },
        IncTopology::Gabriel { radius: 1.0 },
        IncTopology::Yao {
            radius: 1.0,
            cones: 6,
        },
        IncTopology::Knn { k: 8 },
        IncTopology::Hng {
            p: 0.5,
            links: 1,
            seed: HNG_BENCH_SEED,
        },
    ]
}

fn config(verify: bool, repair: RepairMode) -> ChurnConfig {
    let mut cfg = ChurnConfig::new(EPOCHS, 1e12, TRAFFIC, CHURN_FRACTION, 0.0);
    cfg.churn_model = ChurnModel::Clustered {
        radius: BLAST_RADIUS,
    };
    cfg.repair_tiles = REPAIR_TILES;
    cfg.repair = repair;
    cfg.verify = verify;
    cfg
}

fn repair_secs(report: &LifetimeReport) -> f64 {
    report.epochs.iter().map(|e| e.repair_secs).sum()
}

fn bench_row(kind: IncTopology, n: u64, seed: u64, verify_pass: bool) -> LifetimeBenchRow {
    let lambda = 10.0;
    let side = ((n as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let alive = vec![true; points.len()];

    // Timed runs: verification off.
    let t = Instant::now();
    let inc = simulate_lifetime_plain(
        &points,
        &alive,
        kind,
        &config(false, RepairMode::Incremental),
        seed,
    );
    let inc_total = t.elapsed().as_secs_f64();
    let reb = simulate_lifetime_plain(
        &points,
        &alive,
        kind,
        &config(false, RepairMode::Rebuild),
        seed,
    );

    // Edge identity across modes: the whole per-epoch fingerprint walk.
    let edge_identical = inc.epochs.len() == reb.epochs.len()
        && inc
            .epochs
            .iter()
            .zip(&reb.epochs)
            .all(|(a, b)| a.graph_hash == b.graph_hash && a.alive == b.alive);
    assert!(
        edge_identical,
        "{}: incremental and rebuild runs diverged",
        kind.label()
    );

    // Byte-identity pass (engine asserts vs a cold monolithic rebuild
    // after every epoch) — run untimed at the smallest size.
    if verify_pass {
        let verified = simulate_lifetime_plain(
            &points,
            &alive,
            kind,
            &config(true, RepairMode::Incremental),
            seed,
        );
        assert_eq!(verified.final_graph_hash, inc.final_graph_hash);
    }

    let inc_secs = repair_secs(&inc);
    let reb_secs = repair_secs(&reb);
    let epochs = inc.epochs.len().max(1) as f64;
    eprintln!(
        "bench-lifetime: {} n={} inc {:.3}s reb {:.3}s speedup {:.2}x (sim total {:.3}s)",
        kind.label(),
        points.len(),
        inc_secs,
        reb_secs,
        reb_secs / inc_secs.max(1e-12),
        inc_total
    );
    LifetimeBenchRow {
        topology: kind.label(),
        n_target: n,
        nodes: points.len() as u64,
        lambda,
        side,
        epochs: inc.epochs.len() as u64,
        churn_fraction: CHURN_FRACTION,
        blast_radius: BLAST_RADIUS,
        repair_tiles: REPAIR_TILES,
        incremental_repair_secs: inc_secs,
        incremental_splice_secs: inc.repair_splice_secs_total,
        rebuild_secs: reb_secs,
        speedup: reb_secs / inc_secs.max(1e-12),
        edge_identical,
        verified_cold: verify_pass,
        mean_dirty_shards: inc.epochs.iter().map(|e| e.shards_dirty).sum::<u64>() as f64 / epochs,
        mean_rederived_shards: inc.epochs.iter().map(|e| e.shards_rederived).sum::<u64>() as f64
            / epochs,
        final_alive: inc.final_alive,
        deaths_total: inc.deaths_battery_total + inc.deaths_random_total,
        delivered_total: inc.delivered_total,
    }
}

/// Reserve stream: ids hashing to 0 (mod this) start dead and re-join when
/// their region churns, so the UDG sweep exercises the localized
/// re-derivation path, not just the deaths-only filter.
const SWEEP_RESERVE_MOD: u64 = 8;

/// Kill percentage among alive nodes inside the churn region.
const SWEEP_KILL_PCT: u64 = 30;

/// The dirty-shard ladder: one shard, ~1/64, ~1/8, and all of them.
fn sweep_targets(shard_count: usize) -> Vec<usize> {
    let mut t = vec![
        1,
        shard_count.div_ceil(64),
        shard_count.div_ceil(8),
        shard_count,
    ];
    t.sort_unstable();
    t.dedup();
    t
}

/// The block-aligned churn region for a `k × k`-shard rung: the union of
/// those shards' core blocks, shrunk by the halo so every churned point is
/// deeper than the halo inside the union — churn then dirties exactly the
/// targeted shards (edge blocks keep their unbounded outward reach, and
/// the shard side is `4 × halo`, so the shrink can never invert the box).
fn block_region(g: &IncrementalGraph, k: usize) -> (Aabb, usize) {
    let grid = g.grid();
    let (ki, kj) = (k.min(grid.cols()), k.min(grid.rows()));
    let (i0, j0) = ((grid.cols() - ki) / 2, (grid.rows() - kj) / 2);
    let mut region: Option<Aabb> = None;
    for j in j0..j0 + kj {
        for i in i0..i0 + ki {
            let core = grid.padded(j * grid.cols() + i, 0.0);
            region = Some(match region {
                None => core,
                Some(r) => r.union(&core),
            });
        }
    }
    (region.expect("k >= 1").inflate(-g.halo()), ki * kj)
}

/// The churn-locality sweep for one topology × size: identical
/// kill → repair → restore cycles per ladder rung, incremental repair
/// raced against the engine's cold sharded rebuild, fingerprint-checked at
/// every point.
fn locality_sweep_rows(kind: IncTopology, n: u64, seed: u64) -> Vec<LocalitySweepRow> {
    let lambda = 10.0;
    let side = ((n as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let alive: Vec<bool> = (0..points.len() as u64)
        .map(|u| !derive_seed2(seed, 0xE5, u).is_multiple_of(SWEEP_RESERVE_MOD))
        .collect();
    let nodes = points.len() as u64;
    let mut g = IncrementalGraph::build(points, alive, kind, REPAIR_TILES);
    let base_fp = fingerprint(g.graph());
    let shard_count = g.grid().shard_count();
    // More repeats at small sizes where a single repair is microseconds —
    // the CI gate compares speedups, so the ratio must be stable.
    let repeats: u64 = if n > 50_000 { 3 } else { 5 };

    // Whole-window pre-warm: one untimed churn-everything cycle grows the
    // allocator arena to its steady state before any rung is timed.
    // Without it the first (most local) rung systematically pays the
    // arena growth of the ~O(m) splice buffers, which at splice-dominated
    // sizes is larger than the rung-to-rung differences being measured.
    {
        let mut deaths = Vec::new();
        let mut joins = Vec::new();
        for (u, _) in g.points().iter_enumerated() {
            if g.alive()[u as usize] {
                if derive_seed2(seed, 0xD1, u as u64) % 100 < SWEEP_KILL_PCT {
                    deaths.push(u);
                }
            } else {
                joins.push(u);
            }
        }
        g.apply_churn(&deaths, &joins);
        let _ = cold_sharded_rebuild(g.points(), g.alive(), kind);
        g.apply_churn(&joins, &deaths);
        assert_eq!(fingerprint(g.graph()), base_fp, "pre-warm restore diverged");
    }

    let mut rows = Vec::new();
    let mut realized_seen = Vec::new();
    for t in sweep_targets(shard_count) {
        let k = (t as f64).sqrt().ceil() as usize;
        let (region, realized) = block_region(&g, k);
        if realized_seen.contains(&realized) {
            continue;
        }
        realized_seen.push(realized);

        // Deterministic churn sets, fixed across repeats (restore returns
        // the structure to its baseline state between cycles).
        let mut deaths = Vec::new();
        let mut joins = Vec::new();
        for (u, p) in g.points().iter_enumerated() {
            if !region.contains(p) {
                continue;
            }
            if g.alive()[u as usize] {
                if derive_seed2(seed, 0xD1, u as u64) % 100 < SWEEP_KILL_PCT {
                    deaths.push(u);
                }
            } else {
                joins.push(u);
            }
        }
        if deaths.is_empty() && joins.is_empty() {
            continue;
        }

        let (mut inc_secs, mut reb_secs, mut splice_secs) = (0.0f64, 0.0f64, 0.0f64);
        let (mut dirty, mut rederived, mut gathered, mut escalations) = (0u64, 0u64, 0u64, 0u64);
        let mut identical = true;
        // One untimed warmup cycle: the first repair after a build pays
        // allocator growth and cold caches, which at splice-dominated
        // rungs is the same order as the rung-to-rung differences the
        // sweep exists to show.
        g.apply_churn(&deaths, &joins);
        identical &= fingerprint(g.graph())
            == fingerprint(&cold_sharded_rebuild(g.points(), g.alive(), kind));
        g.apply_churn(&joins, &deaths);
        identical &= fingerprint(g.graph()) == base_fp;
        for _ in 0..repeats {
            let t0 = Instant::now();
            let stats = g.apply_churn(&deaths, &joins);
            inc_secs += t0.elapsed().as_secs_f64();
            splice_secs += stats.splice_secs;
            dirty += stats.dirty as u64;
            rederived += stats.rederived as u64;
            gathered += stats.gathered as u64;
            escalations += stats.escalations as u64;

            let t1 = Instant::now();
            let rebuilt = cold_sharded_rebuild(g.points(), g.alive(), kind);
            reb_secs += t1.elapsed().as_secs_f64();
            identical &= fingerprint(g.graph()) == fingerprint(&rebuilt);

            // Restore (untimed): re-admit the dead, re-kill the joined.
            g.apply_churn(&joins, &deaths);
            identical &= fingerprint(g.graph()) == base_fp;
        }
        assert!(
            identical,
            "{}: locality sweep diverged from the cold rebuild at {realized} target shards",
            kind.label()
        );
        let reps = repeats as f64;
        eprintln!(
            "bench-lifetime: {} n={nodes} locality {realized}/{shard_count} shards \
             inc {:.4}s (splice {:.4}s) reb {:.4}s speedup {:.2}x (gathered {:.0}/repair)",
            kind.label(),
            inc_secs,
            splice_secs,
            reb_secs,
            reb_secs / inc_secs.max(1e-12),
            gathered as f64 / reps,
        );
        rows.push(LocalitySweepRow {
            topology: kind.label(),
            n_target: n,
            nodes,
            repair_tiles: REPAIR_TILES,
            shard_count: shard_count as u64,
            target_dirty_shards: realized as u64,
            mean_dirty_shards: dirty as f64 / reps,
            mean_rederived_shards: rederived as f64 / reps,
            mean_gathered: gathered as f64 / reps,
            churned_nodes: (deaths.len() + joins.len()) as u64,
            repeats,
            incremental_repair_secs: inc_secs,
            incremental_splice_secs: splice_secs,
            rebuild_secs: reb_secs,
            speedup: reb_secs / inc_secs.max(1e-12),
            fingerprint_identical: identical,
            escalations,
        });
    }
    rows
}

/// Deployment size of the renewal section — small enough that the charger
/// can reach a meaningful fraction of the population per epoch, and cheap
/// enough that the section is pure determinism, not wall-clock.
const RENEWAL_N: u64 = 300;

/// Horizon of the renewal rows. Long enough that the drain-only baseline
/// partitions well inside it, so the renewal policies' extra rounds are
/// observable rather than censored.
const RENEWAL_EPOCHS: usize = 18;

/// Battery / drain schedule of the renewal rows: idle drain alone depletes
/// a node in ⌈3200 / 450⌉ = 8 epochs, so the `none` row partitions around
/// there and the horizon leaves 10 rounds of headroom for renewal to win.
const RENEWAL_BATTERY: f64 = 3200.0;
const RENEWAL_IDLE: f64 = 450.0;
const RENEWAL_TRAFFIC: usize = 20;

/// One renewal policy × the drain schedule above, on a shared deployment.
fn renewal_row(
    policy_name: &str,
    policy: RenewalPolicy,
    points: &PointSet,
    seed: u64,
) -> RenewalBenchRow {
    let kind = IncTopology::Udg { radius: 1.0 };
    let alive = vec![true; points.len()];
    let mut cfg = ChurnConfig::new(RENEWAL_EPOCHS, RENEWAL_BATTERY, RENEWAL_TRAFFIC, 0.0, 0.0);
    cfg.idle_cost = RENEWAL_IDLE;
    cfg.renewal = policy;
    let report = simulate_lifetime_plain(points, &alive, kind, &cfg, seed);
    let partitioned = report.rounds_to_first_partition.is_some();
    let last = report.epochs.last().expect("at least one epoch");
    eprintln!(
        "bench-lifetime: renewal {policy_name} n={} lifetime {} rounds (partitioned {}) \
         recharged {:.0}",
        points.len(),
        report
            .rounds_to_first_partition
            .unwrap_or(report.epochs.len() as u64),
        partitioned,
        report.recharged_total,
    );
    RenewalBenchRow {
        policy: policy_name.to_string(),
        topology: kind.label(),
        nodes: points.len() as u64,
        epochs: report.epochs.len() as u64,
        lifetime_rounds: report
            .rounds_to_first_partition
            .unwrap_or(report.epochs.len() as u64),
        partitioned,
        recharged_total: report.recharged_total,
        final_alive: report.final_alive,
        deaths_battery: report.deaths_battery_total,
        final_battery_variance: last.battery_variance,
        delivered_fraction: if report.offered_total > 0 {
            report.delivered_total as f64 / report.offered_total as f64
        } else {
            0.0
        },
    }
}

/// The renewal section: every policy over one shared deployment and seed.
/// The charger's travel budget and the solar rate are sized so both
/// strictly out-live the drain-only baseline (the gate pins exactly that),
/// while sink rotation records the no-added-energy comparison point.
fn renewal_rows(seed: u64) -> Vec<RenewalBenchRow> {
    let lambda = 10.0;
    let side = ((RENEWAL_N as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let policies = [
        ("none", RenewalPolicy::None),
        (
            "mobile-charger",
            RenewalPolicy::MobileCharger {
                travel_budget: 30.0 * side,
                min_charge: 0.5 * RENEWAL_BATTERY,
                max_charge: RENEWAL_BATTERY,
            },
        ),
        (
            "solar",
            RenewalPolicy::Solar {
                rate: RENEWAL_IDLE + 50.0,
                max_charge: RENEWAL_BATTERY,
            },
        ),
        ("sink-rotation", RenewalPolicy::SinkRotation),
    ];
    debug_assert!(policies
        .iter()
        .map(|(n, _)| *n)
        .eq(RENEWAL_POLICIES.iter().copied()));
    policies
        .into_iter()
        .map(|(name, policy)| renewal_row(name, policy, &points, seed))
        .collect()
}

/// Run the lifetime bench: quick = 10⁴ nodes per topology (CI smoke), full
/// adds the 10⁵ rows the committed baseline records. The churn-locality
/// sweep additionally climbs to 10⁶ nodes in the full profile — the scale
/// the splice-floor acceptance rung is pinned at — without dragging the
/// main rows there (each main row runs two *whole* lifetime simulations;
/// the sweep only cycles repairs).
pub fn run_lifetime_bench(quick: bool, seed: u64) -> LifetimeBenchReport {
    let sizes: &[u64] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let sweep_sizes: &[u64] = if quick {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    let mut locality_sweep = Vec::new();
    for (ki, kind) in kinds().into_iter().enumerate() {
        for (si, &n) in sizes.iter().enumerate() {
            let row_seed = derive_seed2(seed, ki as u64, si as u64);
            rows.push(bench_row(kind, n, row_seed, si == 0));
        }
        for (si, &n) in sweep_sizes.iter().enumerate() {
            let row_seed = derive_seed2(seed, ki as u64, si as u64);
            locality_sweep.extend(locality_sweep_rows(kind, n, row_seed ^ 0x10C));
        }
    }
    LifetimeBenchReport {
        schema: LIFETIME_SCHEMA,
        quick,
        seed,
        threads: crate::pipeline::effective_threads(),
        rows,
        locality_sweep,
        renewal: renewal_rows(derive_seed2(seed, 0xEE, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_rows_run_and_serialise() {
        for (i, kind) in [
            IncTopology::Udg { radius: 1.0 },
            IncTopology::Rng { radius: 1.0 },
        ]
        .into_iter()
        .enumerate()
        {
            let row = bench_row(kind, 2_000, 40 + i as u64, true);
            assert!(row.edge_identical && row.verified_cold);
            assert!(row.nodes > 0 && row.deaths_total > 0);
            let json = serde_json::to_string_pretty(&row).unwrap();
            assert!(json.contains("\"speedup\""));
        }
    }

    #[test]
    fn miniature_locality_sweep_is_fingerprint_identical_and_cold() {
        for (i, kind) in [
            IncTopology::Udg { radius: 1.0 },
            IncTopology::Rng { radius: 1.0 },
            IncTopology::Knn { k: 4 },
            IncTopology::Hng {
                p: 0.5,
                links: 1,
                seed: HNG_BENCH_SEED,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let rows = locality_sweep_rows(kind, 2_000, 70 + i as u64);
            assert!(!rows.is_empty(), "{kind:?}: sweep produced no rungs");
            // Rungs ascend, start at the single-shard point, end at all.
            assert_eq!(rows[0].target_dirty_shards, 1);
            assert!(rows
                .windows(2)
                .all(|w| w[0].target_dirty_shards < w[1].target_dirty_shards));
            assert_eq!(
                rows.last().unwrap().target_dirty_shards,
                rows.last().unwrap().shard_count
            );
            for row in &rows {
                assert!(row.fingerprint_identical, "{kind:?}");
                assert!(row.churned_nodes > 0);
                assert!(row.incremental_repair_secs > 0.0 && row.rebuild_secs > 0.0);
                // The splice is a timed sub-step of the repair total.
                assert!(
                    row.incremental_splice_secs > 0.0
                        && row.incremental_splice_secs <= row.incremental_repair_secs,
                    "{kind:?}: splice time {} outside repair total {}",
                    row.incremental_splice_secs,
                    row.incremental_repair_secs
                );
                if !matches!(kind, IncTopology::Knn { .. } | IncTopology::Hng { .. }) {
                    assert_eq!(row.escalations, 0, "{kind:?} must never escalate");
                }
            }
            // Gather work must track the region: the single-shard rung
            // touches a fraction of what the all-shards rung does (k-NN's
            // outsized halo bounds how local a tiny 9-shard plan can get,
            // so it only pins strict monotonicity here). HNG is exempt at
            // miniature scale: its top-level clique stragglers re-dirty
            // scattered shards every repair, and the sum of their
            // overlapping halo gathers can exceed one global gather, so
            // gather volume is not monotone in the churn region on a
            // 16-shard plan (the fingerprint and splice assertions above
            // still pin its correctness).
            let (first, last) = (&rows[0], rows.last().unwrap());
            if !matches!(kind, IncTopology::Hng { .. }) {
                let factor = if matches!(kind, IncTopology::Knn { .. }) {
                    1.0
                } else {
                    3.0
                };
                assert!(
                    first.mean_gathered * factor < last.mean_gathered,
                    "{kind:?}: gathered {} vs {} — repair is not locality-proportional",
                    first.mean_gathered,
                    last.mean_gathered
                );
            }
            let json = serde_json::to_string_pretty(&rows).unwrap();
            assert!(json.contains("\"target_dirty_shards\""));
        }
    }

    #[test]
    fn renewal_rows_cover_every_policy_and_renewal_buys_rounds() {
        let rows = renewal_rows(0xBEEF);
        let by = |p: &str| {
            rows.iter()
                .find(|r| r.policy == p)
                .unwrap_or_else(|| panic!("missing renewal row for policy {p:?}"))
        };
        assert_eq!(
            rows.iter().map(|r| r.policy.as_str()).collect::<Vec<_>>(),
            RENEWAL_POLICIES.to_vec(),
        );
        let none = by("none");
        assert!(
            none.partitioned,
            "the drain-only row must partition inside the horizon or every \
             comparison is censored"
        );
        for p in ["mobile-charger", "solar"] {
            let row = by(p);
            assert!(
                row.lifetime_rounds > none.lifetime_rounds,
                "{p}: {} rounds does not exceed the drain-only {}",
                row.lifetime_rounds,
                none.lifetime_rounds
            );
            assert!(row.recharged_total > 0.0);
        }
        assert_eq!(by("sink-rotation").recharged_total, 0.0);
        assert_eq!(none.recharged_total, 0.0);
        let json = serde_json::to_string_pretty(&rows).unwrap();
        assert!(json.contains("\"lifetime_rounds\""));
    }
}
