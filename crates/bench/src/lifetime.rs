//! The `wsn-scenarios bench-lifetime` emitter: incremental-vs-rebuild
//! repair economics of the churn engine, recorded as `BENCH_lifetime.json`.
//!
//! For each plain topology × deployment size the harness runs the *same*
//! lifetime simulation twice — once with incremental shard repair, once
//! rebuilding the topology cold every epoch — under 10% per-epoch clustered
//! churn (sector blackouts; see `wsn_simnet::churn::ChurnModel` for why
//! clustering is the realistic regime). It records the wall-clock spent in
//! the repair step of each mode, their ratio (`speedup`), and two
//! edge-identity witnesses:
//!
//! * the per-epoch CSR fingerprints of both runs must agree exactly
//!   (`edge_identical`), and
//! * at the smallest size each topology additionally re-runs with the
//!   engine's verify path on, asserting byte-identity of the incremental
//!   CSR against a cold monolithic rebuild after *every* epoch
//!   (`verified_cold`).
//!
//! Timed repair runs keep verification off — a bench that times its own
//! assertions measures nothing.

use std::time::Instant;

use serde::Serialize;
use wsn_geom::hash::derive_seed2;
use wsn_geom::Aabb;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointSet};
use wsn_rgg::IncTopology;
use wsn_simnet::churn::{
    simulate_lifetime_plain, ChurnConfig, ChurnModel, LifetimeReport, RepairMode,
};

/// Per-epoch expected kill fraction of the bench churn (the acceptance
/// regime: 10% per-epoch churn).
const CHURN_FRACTION: f64 = 0.10;

/// Blast radius of the clustered outages, in UDG radii.
const BLAST_RADIUS: f64 = 5.0;

/// Epochs simulated per row.
const EPOCHS: usize = 5;

/// Packets per epoch — kept small so repair, not routing, dominates the
/// timed loop.
const TRAFFIC: usize = 8;

/// Repair granularity (halo tiles per shard side) of the incremental mode.
const REPAIR_TILES: usize = 4;

/// One topology × size measurement.
#[derive(Clone, Debug, Serialize)]
pub struct LifetimeBenchRow {
    pub topology: String,
    /// Expected node count (Poisson intensity × window area).
    pub n_target: u64,
    /// Realised node count.
    pub nodes: u64,
    pub lambda: f64,
    pub side: f64,
    pub epochs: u64,
    pub churn_fraction: f64,
    pub blast_radius: f64,
    pub repair_tiles: usize,
    /// Total wall-clock of the incremental repair steps, seconds.
    pub incremental_repair_secs: f64,
    /// Total wall-clock of the rebuild-per-epoch steps, seconds.
    pub rebuild_secs: f64,
    /// `rebuild_secs / incremental_repair_secs`.
    pub speedup: f64,
    /// Per-epoch CSR fingerprints of the two modes agree exactly.
    pub edge_identical: bool,
    /// This row also ran the engine's byte-identity verification against a
    /// cold monolithic rebuild each epoch.
    pub verified_cold: bool,
    /// Mean dirty / re-derived shards per epoch of the incremental run.
    pub mean_dirty_shards: f64,
    pub mean_rederived_shards: f64,
    /// Survivors and deaths over the run (identical across modes).
    pub final_alive: u64,
    pub deaths_total: u64,
    pub delivered_total: u64,
}

/// The whole `BENCH_lifetime.json` document.
#[derive(Clone, Debug, Serialize)]
pub struct LifetimeBenchReport {
    pub schema: &'static str,
    pub quick: bool,
    pub seed: u64,
    /// Effective rayon worker count.
    pub threads: usize,
    pub rows: Vec<LifetimeBenchRow>,
}

/// The benchmarked topologies (UDG and RNG carry the acceptance claim;
/// the rest record the trajectory of the whole family).
fn kinds() -> Vec<IncTopology> {
    vec![
        IncTopology::Udg { radius: 1.0 },
        IncTopology::Rng { radius: 1.0 },
        IncTopology::Gabriel { radius: 1.0 },
        IncTopology::Yao {
            radius: 1.0,
            cones: 6,
        },
        IncTopology::Knn { k: 8 },
    ]
}

fn config(verify: bool, repair: RepairMode) -> ChurnConfig {
    let mut cfg = ChurnConfig::new(EPOCHS, 1e12, TRAFFIC, CHURN_FRACTION, 0.0);
    cfg.churn_model = ChurnModel::Clustered {
        radius: BLAST_RADIUS,
    };
    cfg.repair_tiles = REPAIR_TILES;
    cfg.repair = repair;
    cfg.verify = verify;
    cfg
}

fn repair_secs(report: &LifetimeReport) -> f64 {
    report.epochs.iter().map(|e| e.repair_secs).sum()
}

fn bench_row(kind: IncTopology, n: u64, seed: u64, verify_pass: bool) -> LifetimeBenchRow {
    let lambda = 10.0;
    let side = ((n as f64) / lambda).sqrt();
    let points: PointSet =
        sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
    let alive = vec![true; points.len()];

    // Timed runs: verification off.
    let t = Instant::now();
    let inc = simulate_lifetime_plain(
        &points,
        &alive,
        kind,
        &config(false, RepairMode::Incremental),
        seed,
    );
    let inc_total = t.elapsed().as_secs_f64();
    let reb = simulate_lifetime_plain(
        &points,
        &alive,
        kind,
        &config(false, RepairMode::Rebuild),
        seed,
    );

    // Edge identity across modes: the whole per-epoch fingerprint walk.
    let edge_identical = inc.epochs.len() == reb.epochs.len()
        && inc
            .epochs
            .iter()
            .zip(&reb.epochs)
            .all(|(a, b)| a.graph_hash == b.graph_hash && a.alive == b.alive);
    assert!(
        edge_identical,
        "{}: incremental and rebuild runs diverged",
        kind.label()
    );

    // Byte-identity pass (engine asserts vs a cold monolithic rebuild
    // after every epoch) — run untimed at the smallest size.
    if verify_pass {
        let verified = simulate_lifetime_plain(
            &points,
            &alive,
            kind,
            &config(true, RepairMode::Incremental),
            seed,
        );
        assert_eq!(verified.final_graph_hash, inc.final_graph_hash);
    }

    let inc_secs = repair_secs(&inc);
    let reb_secs = repair_secs(&reb);
    let epochs = inc.epochs.len().max(1) as f64;
    eprintln!(
        "bench-lifetime: {} n={} inc {:.3}s reb {:.3}s speedup {:.2}x (sim total {:.3}s)",
        kind.label(),
        points.len(),
        inc_secs,
        reb_secs,
        reb_secs / inc_secs.max(1e-12),
        inc_total
    );
    LifetimeBenchRow {
        topology: kind.label(),
        n_target: n,
        nodes: points.len() as u64,
        lambda,
        side,
        epochs: inc.epochs.len() as u64,
        churn_fraction: CHURN_FRACTION,
        blast_radius: BLAST_RADIUS,
        repair_tiles: REPAIR_TILES,
        incremental_repair_secs: inc_secs,
        rebuild_secs: reb_secs,
        speedup: reb_secs / inc_secs.max(1e-12),
        edge_identical,
        verified_cold: verify_pass,
        mean_dirty_shards: inc.epochs.iter().map(|e| e.shards_dirty).sum::<u64>() as f64 / epochs,
        mean_rederived_shards: inc.epochs.iter().map(|e| e.shards_rederived).sum::<u64>() as f64
            / epochs,
        final_alive: inc.final_alive,
        deaths_total: inc.deaths_battery_total + inc.deaths_random_total,
        delivered_total: inc.delivered_total,
    }
}

/// Run the lifetime bench: quick = 10⁴ nodes per topology (CI smoke), full
/// adds the 10⁵ rows the committed baseline records.
pub fn run_lifetime_bench(quick: bool, seed: u64) -> LifetimeBenchReport {
    let sizes: &[u64] = if quick { &[10_000] } else { &[10_000, 100_000] };
    let mut rows = Vec::new();
    for (ki, kind) in kinds().into_iter().enumerate() {
        for (si, &n) in sizes.iter().enumerate() {
            let row_seed = derive_seed2(seed, ki as u64, si as u64);
            rows.push(bench_row(kind, n, row_seed, si == 0));
        }
    }
    LifetimeBenchReport {
        schema: "wsn-bench-lifetime/1",
        quick,
        seed,
        threads: crate::pipeline::effective_threads(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_rows_run_and_serialise() {
        for (i, kind) in [
            IncTopology::Udg { radius: 1.0 },
            IncTopology::Rng { radius: 1.0 },
        ]
        .into_iter()
        .enumerate()
        {
            let row = bench_row(kind, 2_000, 40 + i as u64, true);
            assert!(row.edge_identical && row.verified_cold);
            assert!(row.nodes > 0 && row.deaths_total > 0);
            let json = serde_json::to_string_pretty(&row).unwrap();
            assert!(json.contains("\"speedup\""));
        }
    }
}
