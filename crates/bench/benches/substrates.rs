//! Criterion microbenches for the substrates: Poisson sampling, spatial
//! index queries, and graph algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_geom::{Aabb, Point};
use wsn_pointproc::{rng_from_seed, sample_poisson, sample_poisson_window};
use wsn_spatial::GridIndex;

fn bench_poisson_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_sampler");
    for mean in [2.0, 50.0, 5000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(mean), &mean, |b, &mean| {
            let mut rng = rng_from_seed(1);
            b.iter(|| black_box(sample_poisson(&mut rng, mean)))
        });
    }
    group.finish();
}

fn bench_spatial_queries(c: &mut Criterion) {
    let window = Aabb::square(50.0);
    let pts = sample_poisson_window(&mut rng_from_seed(2), 10.0, &window);
    let idx = GridIndex::build(&pts, 1.0);
    let mut out = Vec::new();
    c.bench_function("grid_in_disk_r1", |b| {
        b.iter(|| {
            idx.in_disk(Point::new(25.0, 25.0), 1.0, &mut out);
            black_box(out.len())
        })
    });
    c.bench_function("grid_knn_16", |b| {
        b.iter(|| black_box(idx.knn(Point::new(25.0, 25.0), 16, None)))
    });
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let window = Aabb::square(40.0);
    let pts = sample_poisson_window(&mut rng_from_seed(3), 5.0, &window);
    let g = wsn_rgg::build_udg(&pts, 1.0);
    c.bench_function("udg_bfs_full", |b| {
        b.iter(|| black_box(wsn_graph::bfs::distances(&g, 0)))
    });
    c.bench_function("udg_dijkstra_full", |b| {
        b.iter(|| {
            black_box(wsn_graph::dijkstra::distances(&g, 0, |u, v| {
                pts.get(u).dist(pts.get(v))
            }))
        })
    });
    c.bench_function("udg_components", |b| {
        b.iter(|| black_box(wsn_graph::components::connected_components(&g)))
    });
}

criterion_group!(
    benches,
    bench_poisson_sampler,
    bench_spatial_queries,
    bench_graph_algorithms
);
criterion_main!(benches);
