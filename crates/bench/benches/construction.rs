//! Criterion microbenches: building the SENS topologies and their base
//! graphs at realistic densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_core::nn::build_nn_sens;
use wsn_core::params::{NnSensParams, UdgSensParams};
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointSet};
use wsn_rgg::{build_knn, build_udg};

fn deployment(side: f64, lambda: f64) -> PointSet {
    let window = wsn_geom::Aabb::square(side);
    sample_poisson_window(&mut rng_from_seed(42), lambda, &window)
}

fn bench_udg_construction(c: &mut Criterion) {
    let params = UdgSensParams::strict_default();
    let mut group = c.benchmark_group("udg_sens_build");
    for side in [12.0, 24.0] {
        let pts = deployment(side, 25.0);
        group.bench_with_input(
            BenchmarkId::new("build_udg_sens", pts.len()),
            &pts,
            |b, pts| {
                b.iter(|| {
                    let grid = TileGrid::fit(side, params.tile_side);
                    black_box(build_udg_sens(pts, params, grid).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("build_udg_base", pts.len()),
            &pts,
            |b, pts| b.iter(|| black_box(build_udg(pts, 1.0))),
        );
    }
    group.finish();
}

fn bench_nn_construction(c: &mut Criterion) {
    let params = NnSensParams { a: 1.2, k: 400 };
    let mut group = c.benchmark_group("nn_sens_build");
    group.sample_size(10);
    let grid_dim = 3usize;
    let side = params.tile_side() * grid_dim as f64;
    let pts = deployment(side, 1.0);
    let base = build_knn(&pts, params.k);
    group.bench_function(BenchmarkId::new("build_knn_base", pts.len()), |b| {
        b.iter(|| black_box(build_knn(&pts, params.k)))
    });
    group.bench_function(BenchmarkId::new("build_nn_sens", pts.len()), |b| {
        b.iter(|| {
            let grid = TileGrid::new(params.tile_side(), grid_dim, grid_dim);
            black_box(build_nn_sens(&pts, &base, params, grid).unwrap())
        })
    });
    group.finish();
}

fn bench_tile_classification(c: &mut Criterion) {
    let params = UdgSensParams::strict_default();
    let geom = wsn_core::udg::UdgTileGeometry::new(params).unwrap();
    let pts = deployment(1.2, 300.0);
    c.bench_function("udg_classify_300pts", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for p in pts.iter() {
                acc += black_box(geom.classify(p - wsn_geom::Point::new(0.6, 0.6))) as u32;
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_udg_construction,
    bench_nn_construction,
    bench_tile_classification
);
criterion_main!(benches);
