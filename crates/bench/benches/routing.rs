//! Criterion microbenches: lattice routing (Fig. 9) and chemical distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wsn_perc::chemical::chemical_distance;
use wsn_perc::sample::bernoulli_lattice;
use wsn_perc::{route_xy, Lattice};
use wsn_pointproc::rng_from_seed;

fn supercritical(l: usize, p: f64) -> Lattice {
    bernoulli_lattice(&mut rng_from_seed(7), l, l, p)
}

fn corner_pair(lat: &Lattice) -> Option<(wsn_perc::Site, wsn_perc::Site)> {
    let clusters = wsn_perc::cluster::label_clusters(lat);
    let members: Vec<wsn_perc::Site> = lat
        .sites()
        .filter(|&s| clusters.in_largest(lat, s))
        .collect();
    Some((*members.first()?, *members.last()?))
}

fn bench_route_xy(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_xy");
    for (l, p) in [(64usize, 0.75), (128, 0.75), (128, 0.65)] {
        let lat = supercritical(l, p);
        let Some((a, b)) = corner_pair(&lat) else {
            continue;
        };
        group.bench_with_input(
            BenchmarkId::new(format!("L{l}_p{p}"), l),
            &lat,
            |bench, lat| bench.iter(|| black_box(route_xy(lat, a, b))),
        );
    }
    group.finish();
}

fn bench_chemical_distance(c: &mut Criterion) {
    let lat = supercritical(128, 0.7);
    let (a, b) = corner_pair(&lat).unwrap();
    c.bench_function("chemical_distance_128", |bench| {
        bench.iter(|| black_box(chemical_distance(&lat, a, b)))
    });
}

fn bench_cluster_labeling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_labeling");
    for l in [64usize, 256] {
        let lat = supercritical(l, 0.6);
        group.bench_with_input(BenchmarkId::from_parameter(l), &lat, |b, lat| {
            b.iter(|| black_box(wsn_perc::cluster::label_clusters(lat)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_route_xy,
    bench_chemical_distance,
    bench_cluster_labeling
);
criterion_main!(benches);
