//! One replication of one scenario cell → named metric channels.
//!
//! A *channel* is a `(name, value)` pair; the runner aggregates channels of
//! the same name across replications. Everything in this module is a pure
//! function of `(spec, rep_seed)`: all randomness flows through seeds
//! derived from `rep_seed` with fixed stream ids, so a replication computes
//! the same values no matter which worker thread runs it.

use rand::RngExt;
use wsn_geom::hash::derive_seed;
use wsn_geom::Aabb;
use wsn_graph::stats::degree_stats;
use wsn_graph::Csr;
use wsn_pointproc::matern::sample_matern_ii;
use wsn_pointproc::{rng_from_seed, sample_poisson_window, PointOrder, PointSet};
use wsn_rgg::ordered::build_knn_on_order;
use wsn_rgg::{
    build_gabriel, build_gabriel_ordered, build_hng, build_hng_ordered, build_knn,
    build_knn_ordered, build_rng, build_rng_ordered, build_udg, build_udg_ordered, build_yao,
    build_yao_ordered, HngParams,
};
use wsn_simnet::churn::{
    simulate_lifetime_plain, simulate_lifetime_sens, ChurnConfig, ChurnModel, LifetimeReport,
    RenewalPolicy, RoutePolicy, SensKind,
};
use wsn_simnet::energy::{path_energy, EnergyModel};
use wsn_simnet::fault::random_failures;
use wsn_simnet::{distributed_build_udg, route_packet_with_path};

use wsn_core::coverage::{ell_for_target, empty_box_curve};
use wsn_core::nn::{build_nn_sens, build_nn_sens_ordered};
use wsn_core::params::{NnSensParams, UdgSensParams};
use wsn_core::stretch::{measure_sens_stretch, sample_id_pairs, sample_rep_pairs};
use wsn_core::subgraph::SensNetwork;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::{build_udg_sens, build_udg_sens_ordered};

use crate::spec::{DeploymentSpec, RenewalSpec, RouteSpec, ScenarioSpec, TopologySpec};

/// Seed streams inside one replication (fixed so adding a metric never
/// shifts the randomness of another).
mod stream {
    pub const DEPLOY: u64 = 1;
    pub const FAULT: u64 = 2;
    pub const STRETCH: u64 = 3;
    pub const COVERAGE: u64 = 4;
    pub const POWER: u64 = 5;
    pub const ROUTING: u64 = 6;
    pub const CHURN: u64 = 7;
    pub const HNG: u64 = 8;
}

/// The channels of one replication, in emission order.
pub type Channels = Vec<(String, f64)>;

/// The built topology of a replication.
enum Built {
    Sens(SensNetwork),
    Plain(Csr),
}

impl Built {
    fn graph(&self) -> &Csr {
        match self {
            Built::Sens(net) => &net.graph,
            Built::Plain(g) => g,
        }
    }
}

fn push(ch: &mut Channels, name: &str, value: f64) {
    // Non-finite values have no golden-stable JSON meaning (the shim writes
    // `null`); dropping them keeps aggregates well-defined and the absence
    // itself shows up as a lower `n` in the aggregate.
    if value.is_finite() {
        ch.push((name.to_string(), value));
    }
}

/// Invert the Matérn-II retention formula so the axis value is the
/// *retained* intensity (comparable with a Poisson axis value).
fn matern_parent_intensity(lambda_retained: f64, hard_core: f64) -> f64 {
    let pi_r2 = std::f64::consts::PI * hard_core * hard_core;
    if pi_r2 == 0.0 {
        return lambda_retained;
    }
    let retention_arg = 1.0 - lambda_retained * pi_r2;
    assert!(
        retention_arg > 0.0,
        "retained intensity {lambda_retained} unreachable with hard core {hard_core}"
    );
    -retention_arg.ln() / pi_r2
}

fn sample_deployment(spec: &ScenarioSpec, window: &Aabb, seed: u64) -> PointSet {
    let mut rng = rng_from_seed(seed);
    match spec.deployment {
        DeploymentSpec::Poisson { lambda } => sample_poisson_window(&mut rng, lambda, window),
        DeploymentSpec::Matern { lambda, hard_core } => {
            let parent = matern_parent_intensity(lambda, hard_core);
            sample_matern_ii(&mut rng, parent, hard_core, window)
        }
    }
}

/// Run one replication of `spec` with the given derived seed and return its
/// metric channels.
pub fn run_replication(spec: &ScenarioSpec, rep_seed: u64) -> Channels {
    let mut ch = Channels::new();

    // ---- deployment window ------------------------------------------
    let grid = spec
        .topology
        .tile_side()
        .map(|tile| TileGrid::fit(spec.side, tile));
    let window = grid
        .as_ref()
        .map(|g| g.covered_area())
        .unwrap_or_else(|| Aabb::square(spec.side));

    let deployed = sample_deployment(spec, &window, derive_seed(rep_seed, stream::DEPLOY));
    push(&mut ch, "nodes.deployed", deployed.len() as f64);

    // ---- mid-construction faults ------------------------------------
    let points = match spec.fault {
        Some(f) => {
            let (survivors, _) =
                random_failures(&deployed, f.p_fail, derive_seed(rep_seed, stream::FAULT));
            survivors
        }
        None => deployed,
    };
    push(&mut ch, "nodes.surviving", points.len() as f64);

    // ---- serve workload (replaces the static suite) -------------------
    if let Some(serve) = &spec.serve {
        run_serve_workload(&mut ch, spec, serve, &points, rep_seed);
        return ch;
    }

    // ---- lifetime workload (replaces the static suite) ---------------
    if let Some(churn) = &spec.churn {
        run_lifetime(&mut ch, spec, churn, &points, grid, rep_seed);
        return ch;
    }

    // ---- topology construction --------------------------------------
    // The sharded pipeline is edge-identical to the monolithic builders,
    // so `spec.exec` can never change a metric value — only how fast (and
    // in how many parallel shards) the graph appears. Parallel runs go
    // through the Morton-ordered entry points: the sharded builders walk a
    // spatially sorted copy and emissions are remapped back to deployment
    // ids, byte-identically (the permutation-invariance suite is the pin).
    let udg_params = UdgSensParams::strict_default();
    let shard_tiles = spec.exec.shard_tiles;
    let parallel = spec.exec.parallel;
    let built = match spec.topology {
        TopologySpec::UdgSens => {
            let g = grid.clone().expect("SENS grid");
            let net = if parallel {
                build_udg_sens_ordered(&points, &PointOrder::morton(&points), udg_params, g)
            } else {
                build_udg_sens(&points, udg_params, g)
            };
            Built::Sens(net.expect("strict default params are valid"))
        }
        TopologySpec::NnSens { a, k } => {
            let params = NnSensParams { a, k };
            let g = grid.clone().expect("SENS grid");
            let net = if parallel {
                let order = PointOrder::morton(&points);
                let base = build_knn_on_order(&order, k, shard_tiles);
                build_nn_sens_ordered(&points, &order, &base, params, g)
            } else {
                let base = build_knn(&points, k);
                build_nn_sens(&points, &base, params, g)
            };
            Built::Sens(net.expect("NN-SENS params validated by preset"))
        }
        TopologySpec::Udg { radius } => Built::Plain(if parallel {
            build_udg_ordered(&points, radius, shard_tiles)
        } else {
            build_udg(&points, radius)
        }),
        TopologySpec::Knn { k } => Built::Plain(if parallel {
            build_knn_ordered(&points, k, shard_tiles)
        } else {
            build_knn(&points, k)
        }),
        TopologySpec::Gabriel { radius } => Built::Plain(if parallel {
            build_gabriel_ordered(&points, radius, shard_tiles)
        } else {
            build_gabriel(&points, radius)
        }),
        TopologySpec::Rng { radius } => Built::Plain(if parallel {
            build_rng_ordered(&points, radius, shard_tiles)
        } else {
            build_rng(&points, radius)
        }),
        TopologySpec::Yao { radius, cones } => Built::Plain(if parallel {
            build_yao_ordered(&points, radius, cones, shard_tiles)
        } else {
            build_yao(&points, radius, cones)
        }),
        TopologySpec::Hng { p, links } => {
            let hseed = derive_seed(rep_seed, stream::HNG);
            Built::Plain(if parallel {
                build_hng_ordered(&points, HngParams::new(p, links), hseed, shard_tiles)
            } else {
                build_hng(&points, HngParams::new(p, links), hseed)
            })
        }
    };

    // ---- metric: degree (P1) ----------------------------------------
    if spec.metrics.degree {
        let s = match &built {
            Built::Sens(net) => net.degree_stats(),
            Built::Plain(g) => degree_stats(g),
        };
        push(&mut ch, "degree.nodes", s.n as f64);
        push(&mut ch, "degree.edges", s.m as f64);
        push(&mut ch, "degree.mean", s.mean);
        push(&mut ch, "degree.max", s.max as f64);
    }

    // ---- metric: SENS summary ---------------------------------------
    if spec.metrics.sens_summary {
        if let Built::Sens(net) = &built {
            let s = net.summary();
            push(&mut ch, "sens.tiles_total", s.tiles_total as f64);
            push(&mut ch, "sens.tiles_good", s.tiles_good as f64);
            push(&mut ch, "sens.good_fraction", net.lattice.open_fraction());
            push(&mut ch, "sens.elected", s.elected as f64);
            push(&mut ch, "sens.core_size", s.core_size as f64);
            push(&mut ch, "sens.edges", s.edges as f64);
            push(&mut ch, "sens.max_degree", s.max_degree as f64);
            push(&mut ch, "sens.missing_links", s.missing_links as f64);
        }
    }

    // ---- metric: stretch (P2) ---------------------------------------
    if let Some(st) = &spec.metrics.stretch {
        let seed = derive_seed(rep_seed, stream::STRETCH);
        let samples = match &built {
            Built::Sens(net) => {
                let pairs = sample_rep_pairs(net, st.pairs, seed);
                measure_sens_stretch(net, &points, &pairs)
            }
            Built::Plain(g) => {
                let pairs = sample_node_pairs(points.len(), st.pairs, seed);
                wsn_graph::stretch::measure_pairs(g, |u| points.get(u), &pairs)
            }
        };
        let finite: Vec<f64> = samples
            .iter()
            .filter(|s| s.graph_dist.is_finite())
            .map(|s| s.stretch())
            .collect();
        push(&mut ch, "stretch.pairs", samples.len() as f64);
        if !samples.is_empty() {
            push(
                &mut ch,
                "stretch.connected_fraction",
                finite.len() as f64 / samples.len() as f64,
            );
        }
        if !finite.is_empty() {
            push(
                &mut ch,
                "stretch.mean",
                finite.iter().sum::<f64>() / finite.len() as f64,
            );
            push(
                &mut ch,
                "stretch.max",
                finite.iter().cloned().fold(0.0, f64::max),
            );
            push(
                &mut ch,
                "stretch.tail_prob",
                finite.iter().filter(|&&s| s > st.alpha).count() as f64 / finite.len() as f64,
            );
        }
    }

    // ---- metric: coverage (P3) --------------------------------------
    if let Some(cov) = &spec.metrics.coverage {
        if let Built::Sens(net) = &built {
            let seed = derive_seed(rep_seed, stream::COVERAGE);
            let curve = empty_box_curve(net, &points, &cov.ells, cov.samples, seed);
            for c in &curve {
                push(
                    &mut ch,
                    &format!("coverage.p_empty[ell={}]", c.ell),
                    c.p_empty,
                );
            }
            for &n_target in &cov.logn_targets {
                if let Some(ell) = ell_for_target(net, &points, n_target, cov.samples, seed) {
                    push(&mut ch, &format!("coverage.ell_star[n={n_target}]"), ell);
                    push(
                        &mut ch,
                        &format!("coverage.ell_star_per_logn[n={n_target}]"),
                        ell / n_target.ln(),
                    );
                }
            }
        }
    }

    // ---- metric: power stretch --------------------------------------
    if let Some(pw) = &spec.metrics.power {
        let seed = derive_seed(rep_seed, stream::POWER);
        let base = build_udg(&points, 1.0);
        let pairs = match &built {
            Built::Sens(net) => sample_rep_pairs(net, pw.pairs, seed),
            Built::Plain(_) => sample_node_pairs(points.len(), pw.pairs, seed),
        };
        for &beta in &pw.betas {
            let c = wsn_core::power::compare_power(&base, built.graph(), &points, &pairs, beta);
            let tag = format!("[beta={beta}]");
            push(
                &mut ch,
                &format!("power.base_pairs{tag}"),
                c.base_pairs as f64,
            );
            push(
                &mut ch,
                &format!("power.sub_pairs{tag}"),
                c.sub_pairs as f64,
            );
            push(&mut ch, &format!("power.mean_stretch{tag}"), c.mean_stretch);
            push(&mut ch, &format!("power.max_stretch{tag}"), c.max_stretch);
            push(
                &mut ch,
                &format!("power.edges_per_node{tag}"),
                c.edges_per_node,
            );
        }
    }

    // ---- metric: routing (Fig. 9) -----------------------------------
    if let Some(rt) = &spec.metrics.routing {
        if let Built::Sens(net) = &built {
            run_routing(&mut ch, net, &points, rt.routes, rt.energy, rep_seed);
        }
    }

    // ---- metric: construction cost (P4 / Fig. 7) --------------------
    if spec.metrics.construction && matches!(spec.topology, TopologySpec::UdgSens) {
        let build = distributed_build_udg(&points, udg_params, grid.clone().expect("grid"))
            .expect("strict default params are valid");
        push(&mut ch, "construction.rounds", build.rounds as f64);
        push(&mut ch, "construction.msgs_total", build.stats.sent as f64);
        push(
            &mut ch,
            "construction.msgs_per_node",
            build.stats.mean_per_node(),
        );
        push(
            &mut ch,
            "construction.max_msgs_per_node",
            build.stats.max_per_node() as f64,
        );
    }

    // ---- metric: claim-path audit (Claims 2.1 / 2.3) ----------------
    if spec.metrics.claim_paths {
        if let Built::Sens(net) = &built {
            run_claim_audit(&mut ch, net, &points, &spec.topology);
        }
    }

    ch
}

/// Censored lifetime in rounds: first-partition epoch, or the full
/// simulated horizon when the network never partitioned.
fn lifetime_rounds(report: &LifetimeReport) -> f64 {
    report
        .rounds_to_first_partition
        .map_or(report.epochs.len() as f64, |e| e as f64)
}

/// Run the churn-driven lifetime workload of a cell and emit its channel
/// family (`lifetime.*`). The deployment's highest-id `reserve_frac`
/// fraction forms the join reserve; everything else starts alive. When the
/// spec's renewal or route axis departs from the drain-only hop-count
/// defaults, a baseline arm is simulated on the *same* deployment and seed
/// and the comparison channels (`lifetime.baseline_*`, plus the renewal
/// diagnostics) are appended after the established family — existing
/// goldens see no new bytes.
fn run_lifetime(
    ch: &mut Channels,
    spec: &ScenarioSpec,
    churn: &crate::spec::ChurnSpec,
    points: &PointSet,
    grid: Option<TileGrid>,
    rep_seed: u64,
) {
    let n = points.len();
    let reserve = (churn.reserve_frac * n as f64).round() as usize;
    let deployed = n.saturating_sub(reserve);
    let alive: Vec<bool> = (0..n).map(|i| i < deployed).collect();

    let mut cfg = ChurnConfig::new(
        churn.epochs,
        churn.battery,
        churn.traffic,
        churn.p_fail,
        churn.join_rate,
    );
    cfg.idle_cost = churn.idle_cost;
    if let Some(radius) = churn.blast_radius {
        cfg.churn_model = ChurnModel::Clustered { radius };
    }
    cfg.renewal = match churn.renewal {
        RenewalSpec::None => RenewalPolicy::None,
        RenewalSpec::MobileCharger {
            travel_budget,
            min_charge,
            max_charge,
        } => RenewalPolicy::MobileCharger {
            travel_budget,
            min_charge,
            max_charge,
        },
        RenewalSpec::Solar { rate, max_charge } => RenewalPolicy::Solar { rate, max_charge },
        RenewalSpec::SinkRotation => RenewalPolicy::SinkRotation,
    };
    cfg.route = match churn.route {
        RouteSpec::HopCount => RoutePolicy::HopCount,
        RouteSpec::MinEnergy => RoutePolicy::MinEnergy,
        RouteSpec::MaxMinResidual => RoutePolicy::MaxMinResidual,
    };
    let seed = derive_seed(rep_seed, stream::CHURN);

    let simulate = |cfg: &ChurnConfig| -> LifetimeReport {
        match spec.topology {
            TopologySpec::UdgSens => simulate_lifetime_sens(
                points,
                &alive,
                SensKind::Udg(UdgSensParams::strict_default()),
                grid.clone().expect("SENS grid"),
                cfg,
                seed,
            ),
            TopologySpec::NnSens { a, k } => simulate_lifetime_sens(
                points,
                &alive,
                SensKind::Nn(NnSensParams { a, k }),
                grid.clone().expect("SENS grid"),
                cfg,
                seed,
            ),
            _ => {
                let kind = plain_kind(spec.topology, rep_seed).expect("plain topology");
                simulate_lifetime_plain(points, &alive, kind, cfg, seed)
            }
        }
    };

    let report = simulate(&cfg);

    push(ch, "lifetime.initial_alive", deployed as f64);
    push(ch, "lifetime.epochs", report.epochs.len() as f64);
    push(ch, "lifetime.final_alive", report.final_alive as f64);
    push(ch, "lifetime.joins", report.joins_total as f64);
    push(
        ch,
        "lifetime.deaths_battery",
        report.deaths_battery_total as f64,
    );
    push(
        ch,
        "lifetime.deaths_random",
        report.deaths_random_total as f64,
    );
    push(ch, "lifetime.offered", report.offered_total as f64);
    if report.offered_total > 0 {
        push(
            ch,
            "lifetime.delivered_fraction",
            report.delivered_total as f64 / report.offered_total as f64,
        );
    }
    push(ch, "lifetime.energy_total", report.energy_total);
    if report.delivered_total > 0 {
        push(
            ch,
            "lifetime.energy_per_delivered",
            report.energy_total / report.delivered_total as f64,
        );
    }
    if let Some(last) = report.epochs.last() {
        push(ch, "lifetime.final_giant_fraction", last.giant_fraction);
        push(ch, "lifetime.final_coverage", last.coverage);
        push(ch, "lifetime.final_battery_residual", last.battery_residual);
    }
    if let Some(e) = report.rounds_to_first_partition {
        push(ch, "lifetime.rounds_to_first_partition", e as f64);
    }
    if let Some(e) = report.rounds_to_coverage_loss {
        push(ch, "lifetime.rounds_to_coverage_loss", e as f64);
    }
    // Exactly representable 32-bit slice of the final CSR fingerprint: the
    // strongest topology pin a golden can carry as a float channel.
    push(
        ch,
        "lifetime.graph_hash32",
        (report.final_graph_hash & 0xFFFF_FFFF) as f64,
    );
    push(
        ch,
        "lifetime.shards_rederived",
        report
            .epochs
            .iter()
            .map(|e| e.shards_rederived)
            .sum::<u64>() as f64,
    );

    // Renewal / load-balance comparison family — emitted only when the
    // spec departs from the drain-only hop-count defaults, so every
    // pre-existing lifetime golden keeps its exact byte stream.
    if churn.renewal == RenewalSpec::None && churn.route == RouteSpec::HopCount {
        return;
    }
    let mut base_cfg = cfg;
    base_cfg.renewal = RenewalPolicy::None;
    base_cfg.route = RoutePolicy::HopCount;
    let baseline = simulate(&base_cfg);
    push(ch, "lifetime.recharged_total", report.recharged_total);
    if let Some(last) = report.epochs.last() {
        push(ch, "lifetime.final_battery_variance", last.battery_variance);
    }
    push(ch, "lifetime.lifetime_rounds", lifetime_rounds(&report));
    push(
        ch,
        "lifetime.baseline_lifetime_rounds",
        lifetime_rounds(&baseline),
    );
    if let Some(last) = baseline.epochs.last() {
        push(
            ch,
            "lifetime.baseline_final_battery_variance",
            last.battery_variance,
        );
    }
}

/// The incremental-engine topology of a plain (non-SENS) cell, if any.
/// HNG rolls its level hierarchy from a replication-derived seed, so the
/// mapping needs `rep_seed` too.
fn plain_kind(topology: TopologySpec, rep_seed: u64) -> Option<wsn_rgg::IncTopology> {
    match topology {
        TopologySpec::Udg { radius } => Some(wsn_rgg::IncTopology::Udg { radius }),
        TopologySpec::Knn { k } => Some(wsn_rgg::IncTopology::Knn { k }),
        TopologySpec::Gabriel { radius } => Some(wsn_rgg::IncTopology::Gabriel { radius }),
        TopologySpec::Rng { radius } => Some(wsn_rgg::IncTopology::Rng { radius }),
        TopologySpec::Yao { radius, cones } => Some(wsn_rgg::IncTopology::Yao { radius, cones }),
        TopologySpec::Hng { p, links } => Some(wsn_rgg::IncTopology::Hng {
            p,
            links,
            seed: derive_seed(rep_seed, stream::HNG),
        }),
        TopologySpec::UdgSens | TopologySpec::NnSens { .. } => None,
    }
}

/// Run the always-on serve workload of a cell and emit its channel family
/// (`serve.*`). Only *schedule-deterministic* values become channels —
/// wall-clock quantities (qps, latency percentiles) belong to the bench,
/// never to goldens. Reader-thread count comes from `RAYON_NUM_THREADS`
/// (the same knob the golden workflow sweeps): serve answers are
/// byte-identical at any thread count, so the sweep pins exactly that
/// invariance through the golden channels.
fn run_serve_workload(
    ch: &mut Channels,
    spec: &ScenarioSpec,
    serve: &crate::spec::ServeSpec,
    points: &PointSet,
    rep_seed: u64,
) {
    let kind = plain_kind(spec.topology, rep_seed)
        .expect("serve workload requires a plain topology (SENS repairs are global rebuilds)");
    let n = points.len();
    let reserve = (serve.churn.reserve_frac * n as f64).round() as usize;
    let deployed = n.saturating_sub(reserve);
    let alive: Vec<bool> = (0..n).map(|i| i < deployed).collect();

    let mut churn_cfg = ChurnConfig::new(
        serve.churn.epochs,
        serve.churn.battery,
        0, // serve reads never debit batteries
        serve.churn.p_fail,
        serve.churn.join_rate,
    );
    churn_cfg.idle_cost = serve.churn.idle_cost;
    if let Some(radius) = serve.churn.blast_radius {
        churn_cfg.churn_model = ChurnModel::Clustered { radius };
    }
    let readers = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(2);
    let mut cfg =
        wsn_simnet::ServeConfig::new(churn_cfg, readers, serve.clients, serve.queries_per_client);
    cfg.route_radius = serve.route_radius;
    cfg.coverage_radius = serve.coverage_radius;
    cfg.cache_capacity = serve.cache_capacity;
    cfg.seed = derive_seed(rep_seed, stream::CHURN);

    let report = wsn_simnet::run_serve(points, &alive, kind, &cfg);

    push(ch, "serve.initial_alive", deployed as f64);
    push(ch, "serve.epochs", report.epochs as f64);
    push(ch, "serve.clients", report.clients as f64);
    push(ch, "serve.queries", report.queries as f64);
    push(ch, "serve.errors", report.errors as f64);
    push(ch, "serve.cache_lookups", report.cache_lookups as f64);
    push(ch, "serve.cache_hits", report.cache_hits as f64);
    if report.cache_lookups > 0 {
        push(
            ch,
            "serve.cache_hit_fraction",
            report.cache_hits as f64 / report.cache_lookups as f64,
        );
    }
    push(ch, "serve.deaths", report.deaths_total as f64);
    push(ch, "serve.joins", report.joins_total as f64);
    push(ch, "serve.final_alive", report.final_alive as f64);
    push(
        ch,
        "serve.snapshots_published",
        report.snapshots_published as f64,
    );
    push(
        ch,
        "serve.snapshots_retired",
        report.snapshots_retired as f64,
    );
    push(
        ch,
        "serve.max_live_snapshots",
        report.max_live_snapshots as f64,
    );
    // Exactly representable 32-bit slices: the strongest pins a golden can
    // carry as float channels — the final topology fingerprint (shared
    // with the batch engine's `lifetime.graph_hash32`) and the folded
    // query-answer digest (pins every route/k-NN/coverage/membership
    // answer and the cache promotion rule at every thread count).
    push(
        ch,
        "serve.graph_hash32",
        (report.epoch_fingerprints.last().copied().unwrap_or(0) & 0xFFFF_FFFF) as f64,
    );
    push(
        ch,
        "serve.answer_digest32",
        (report.answer_digest & 0xFFFF_FFFF) as f64,
    );
}

/// Uniform ordered pairs of distinct node ids (the plain-topology analogue
/// of [`sample_rep_pairs`]; same shared sampler, pool = every node).
fn sample_node_pairs(n: usize, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let ids: Vec<u32> = (0..n as u32).collect();
    sample_id_pairs(&ids, count, seed)
}

fn run_routing(
    ch: &mut Channels,
    net: &SensNetwork,
    points: &PointSet,
    routes: usize,
    energy: bool,
    rep_seed: u64,
) {
    let cores: Vec<wsn_perc::Site> = net
        .lattice
        .sites()
        .filter(|&s| {
            net.lattice.is_open(s) && net.rep_of(s).map(|r| net.is_member(r)).unwrap_or(false)
        })
        .collect();
    if cores.len() < 2 {
        return;
    }
    let model = EnergyModel::free_space();
    let mut rng = rng_from_seed(derive_seed(rep_seed, stream::ROUTING));
    let mut n = 0u64;
    let mut delivered = 0u64;
    let (mut sum_overhead, mut sum_repairs, mut sum_energy) = (0.0, 0.0, 0.0);
    let mut energy_paths = 0u64;
    for _ in 0..routes {
        let a = cores[rng.random_range(0..cores.len())];
        let b = cores[rng.random_range(0..cores.len())];
        if wsn_perc::Lattice::dist_l1(a, b) < 2 {
            continue;
        }
        let (r, path) = route_packet_with_path(net, a, b);
        n += 1;
        delivered += r.delivered as u64;
        sum_overhead += r.overhead_ratio();
        sum_repairs += r.repairs as f64;
        if energy {
            if let Some(path) = path {
                sum_energy += path_energy(points, &path, &model);
                energy_paths += 1;
            }
        }
    }
    if n == 0 {
        return;
    }
    push(ch, "routing.routes", n as f64);
    push(
        ch,
        "routing.delivered_fraction",
        delivered as f64 / n as f64,
    );
    push(ch, "routing.mean_msgs_per_step", sum_overhead / n as f64);
    push(ch, "routing.mean_repairs", sum_repairs / n as f64);
    if energy_paths > 0 {
        push(
            ch,
            "routing.mean_energy_per_packet",
            sum_energy / energy_paths as f64,
        );
    }
}

/// Claim 2.1 (UDG-SENS: 3-edge relay paths, edge length ≤ radius) or
/// Claim 2.3 (NN-SENS: 5-edge relay paths, all links in `NN(2, k)`) on
/// every adjacent pair of good tiles.
fn run_claim_audit(
    ch: &mut Channels,
    net: &SensNetwork,
    points: &PointSet,
    topology: &TopologySpec,
) {
    // Max path *nodes*: rep–relay–relay–rep (UDG) or rep–x–y–y'–x'–rep (NN).
    let max_nodes = if matches!(topology, TopologySpec::UdgSens) {
        4
    } else {
        6
    };
    let mut checked = 0usize;
    let mut ok_paths = 0usize;
    let mut max_edge: f64 = 0.0;
    let mut stretch_samples = 0usize;
    let mut sum_c = 0.0;
    let mut max_c: f64 = 0.0;
    for s in net.lattice.sites() {
        if !net.lattice.is_open(s) {
            continue;
        }
        for nb in [(s.0 + 1, s.1), (s.0, s.1 + 1)] {
            if !net.lattice.in_bounds(nb) || !net.lattice.is_open(nb) {
                continue;
            }
            checked += 1;
            let Some(path) = net.adjacent_rep_path(s, nb) else {
                continue;
            };
            if path.len() <= max_nodes {
                ok_paths += 1;
            }
            let mut plen = 0.0;
            for w in path.windows(2) {
                let d = points.get(w[0]).dist(points.get(w[1]));
                max_edge = max_edge.max(d);
                plen += d;
            }
            let euclid = points.get(path[0]).dist(points.get(*path.last().unwrap()));
            if euclid > 0.0 {
                let c = plen / euclid;
                stretch_samples += 1;
                sum_c += c;
                max_c = max_c.max(c);
            }
        }
    }
    push(ch, "claim.pairs_checked", checked as f64);
    push(ch, "claim.missing_links", net.missing_links as f64);
    if checked > 0 {
        push(ch, "claim.ok_fraction", ok_paths as f64 / checked as f64);
        push(ch, "claim.max_edge_len", max_edge);
        push(ch, "claim.max_stretch", max_c);
    }
    // Mean over the pairs that actually yielded a path with positive
    // endpoint separation — `checked` would deflate the mean whenever a
    // pair has no relay path (possible when missing_links > 0).
    if stretch_samples > 0 {
        push(ch, "claim.mean_stretch", sum_c / stretch_samples as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExecSpec, FaultSpec, MetricSuite, StretchSpec};

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            side: 8.0,
            deployment: DeploymentSpec::Poisson { lambda: 25.0 },
            topology: TopologySpec::UdgSens,
            fault: None,
            metrics: MetricSuite {
                degree: true,
                sens_summary: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 1,
        }
    }

    #[test]
    fn replication_is_a_pure_function_of_its_seed() {
        let spec = base_spec();
        let a = run_replication(&spec, 42);
        let b = run_replication(&spec, 42);
        assert_eq!(a, b);
        let c = run_replication(&spec, 43);
        assert_ne!(a, c, "different seeds should give different samples");
    }

    #[test]
    fn degree_channels_respect_p1() {
        let spec = base_spec();
        let ch = run_replication(&spec, 7);
        let get = |name: &str| ch.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert!(get("degree.max") <= 4.0);
        assert_eq!(get("sens.missing_links"), 0.0);
        assert!(get("nodes.deployed") > 0.0);
    }

    #[test]
    fn faults_reduce_survivors() {
        let mut spec = base_spec();
        spec.fault = Some(FaultSpec { p_fail: 0.5 });
        let ch = run_replication(&spec, 11);
        let get = |name: &str| ch.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert!(get("nodes.surviving") < get("nodes.deployed"));
        // P1 must survive the faults.
        assert!(get("degree.max") <= 4.0);
    }

    #[test]
    fn plain_topology_stretch_uses_node_pairs() {
        let mut spec = base_spec();
        spec.topology = TopologySpec::Gabriel { radius: 1.0 };
        spec.metrics = MetricSuite {
            degree: true,
            stretch: Some(StretchSpec {
                pairs: 16,
                alpha: 2.5,
            }),
            ..MetricSuite::default()
        };
        let ch = run_replication(&spec, 3);
        assert!(ch.iter().any(|(n, _)| n == "stretch.mean"));
        // Gabriel keeps the UDG connected within components: stretch ≥ 1.
        let mean = ch
            .iter()
            .find(|(n, _)| n == "stretch.mean")
            .map(|(_, v)| *v)
            .unwrap();
        assert!(mean >= 1.0);
    }

    #[test]
    fn parallel_exec_changes_no_channel_byte() {
        for topology in [
            TopologySpec::UdgSens,
            TopologySpec::Udg { radius: 1.0 },
            TopologySpec::Knn { k: 5 },
            TopologySpec::Gabriel { radius: 1.0 },
            TopologySpec::Rng { radius: 1.0 },
            TopologySpec::Yao {
                radius: 1.0,
                cones: 6,
            },
            TopologySpec::Hng { p: 0.5, links: 1 },
        ] {
            let mut spec = base_spec();
            spec.topology = topology;
            spec.metrics = MetricSuite {
                degree: true,
                sens_summary: true,
                stretch: Some(StretchSpec {
                    pairs: 12,
                    alpha: 2.5,
                }),
                ..MetricSuite::default()
            };
            let mono = run_replication(&spec, 31);
            for shard_tiles in [1usize, 4, usize::MAX] {
                spec.exec = ExecSpec {
                    parallel: true,
                    shard_tiles,
                };
                assert_eq!(
                    run_replication(&spec, 31),
                    mono,
                    "{:?} shard_tiles={shard_tiles}",
                    spec.topology
                );
            }
        }
    }

    #[test]
    fn matern_parent_intensity_inverts_retention() {
        let hard_core = 0.1;
        let pi_r2 = std::f64::consts::PI * hard_core * hard_core;
        let parent = matern_parent_intensity(20.0, hard_core);
        let retained = (1.0 - (-parent * pi_r2).exp()) / pi_r2;
        assert!((retained - 20.0).abs() < 1e-9, "retained {retained}");
    }
}
