//! Substrate experiments: scenarios with no sensor deployment.
//!
//! The percolation checks (p_c, chemical distance, routing ablation) and
//! the λ_s / k_s threshold calculations operate on lattices or single
//! tiles, not on deployed networks, so they bypass the matrix runner and
//! produce their own typed payloads — funneled into the same [`Report`]
//! envelope (`substrate` field) and pinned by the same golden files.
//!
//! [`Report`]: crate::report::Report

use rand::RngExt;
use serde::Serialize;
use std::collections::VecDeque;
use wsn_geom::hash::derive_seed;
use wsn_perc::chemical::{chemical_distance, sample_ratios};
use wsn_perc::cluster::label_clusters;
use wsn_perc::critical::{estimate_pc, sweep};
use wsn_perc::sample::bernoulli_lattice;
use wsn_perc::{route_xy, Lattice, Site};
use wsn_pointproc::rng_from_seed;

use wsn_core::optimize::{lambda_s_analytic, optimize_udg_geometry};
use wsn_core::params::UdgSensParams;
use wsn_core::threshold::{
    k_s_for_scale, lambda_s_udg, nn_tile_samples, p_good_nn_from_samples, p_good_udg,
    p_good_udg_analytic, GOODNESS_TARGET,
};

use crate::runner::Profile;

// ---------------------------------------------------------------------
// EXP-PC — site-percolation substrate: θ(p), crossing probability, p_c.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Serialize)]
pub struct PercolationPoint {
    pub p: f64,
    pub theta: f64,
    pub crossing: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct PercolationReport {
    pub l_size: usize,
    pub reps: usize,
    pub points: Vec<PercolationPoint>,
    /// Crossing-probability bisection estimate; paper bracket
    /// [0.592, 0.593], literature 0.592746.
    pub pc_estimate: f64,
}

pub fn run_percolation(profile: Profile, seed: u64) -> PercolationReport {
    let l_size = profile.pick(128, 32);
    let reps = profile.pick(200, 40);
    let ps: Vec<f64> = (0..=12).map(|i| 0.53 + 0.01 * i as f64).collect();
    let points = sweep(&ps, l_size, reps, seed)
        .into_iter()
        .map(|pt| PercolationPoint {
            p: pt.p,
            theta: pt.theta,
            crossing: pt.crossing,
        })
        .collect();
    let pc_estimate = estimate_pc(l_size, reps, profile.pick(14, 10), seed);
    PercolationReport {
        l_size,
        reps,
        points,
        pc_estimate,
    }
}

// ---------------------------------------------------------------------
// EXP-AP — chemical distance concentration (Antal–Pisztora, Lemma 1.1).
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Serialize)]
pub struct ChemicalRow {
    pub p: f64,
    pub samples: usize,
    pub mean_ratio: f64,
    pub p95_ratio: f64,
    pub max_ratio: f64,
    pub tail_prob: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct ChemicalReport {
    pub l_size: usize,
    pub min_l1: u32,
    pub rows: Vec<ChemicalRow>,
}

pub fn run_chemical(profile: Profile, seed: u64) -> ChemicalReport {
    let l_size = profile.pick(96, 40);
    let reps = profile.pick(60, 8);
    let pairs_per_rep = profile.pick(40, 20);
    let min_l1 = 8;
    let mut rows = Vec::new();
    for p in [0.65, 0.75, 0.85, 0.95] {
        let mut samples = sample_ratios(p, l_size, reps, pairs_per_rep, seed);
        // Long-range pairs only: the theorem is asymptotic in the distance.
        samples.retain(|s| s.l1 >= min_l1);
        let mut ratios: Vec<f64> = samples.iter().map(|s| s.ratio()).collect();
        ratios.sort_by(f64::total_cmp);
        let n = ratios.len();
        if n == 0 {
            continue;
        }
        rows.push(ChemicalRow {
            p,
            samples: n,
            mean_ratio: ratios.iter().sum::<f64>() / n as f64,
            p95_ratio: ratios[(n as f64 * 0.95) as usize],
            max_ratio: *ratios.last().unwrap(),
            tail_prob: ratios.iter().filter(|&&r| r > 1.5).count() as f64 / n as f64,
        });
    }
    ChemicalReport {
        l_size,
        min_l1,
        rows,
    }
}

// ---------------------------------------------------------------------
// EXP-ABL-R — routing ablation: Fig. 9 x–y + repair vs full flooding.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    pub l_size: usize,
    pub pairs: usize,
    pub mean_chemical_dist: f64,
    pub mean_fig9_probes: f64,
    pub mean_flood_probes: f64,
    pub fig9_per_dist: f64,
    pub flood_per_dist: f64,
}

#[derive(Clone, Debug, Serialize)]
pub struct AblationReport {
    pub p: f64,
    pub rows: Vec<AblationRow>,
}

/// Distributed flood: BFS from `src` until `dst` is dequeued; every
/// expanded site is one probe.
fn flood_probes(lat: &Lattice, src: Site, dst: Site) -> Option<u64> {
    let mut seen = vec![false; lat.len()];
    let mut queue = VecDeque::new();
    seen[lat.id(src) as usize] = true;
    queue.push_back(src);
    let mut probes = 0u64;
    while let Some(s) = queue.pop_front() {
        probes += 1;
        if s == dst {
            return Some(probes);
        }
        for nb in lat.neighbors(s) {
            if lat.is_open(nb) && !seen[lat.id(nb) as usize] {
                seen[lat.id(nb) as usize] = true;
                queue.push_back(nb);
            }
        }
    }
    None
}

pub fn run_ablation(profile: Profile, seed: u64) -> AblationReport {
    let p = 0.72;
    let pairs_per_size = profile.pick(300, 30);
    let sizes: &[usize] = profile.pick(&[32, 64, 128, 256][..], &[24, 48][..]);
    let mut rows = Vec::new();
    for &l in sizes {
        let lat = bernoulli_lattice(&mut rng_from_seed(derive_seed(seed, l as u64)), l, l, p);
        let clusters = label_clusters(&lat);
        let members: Vec<Site> = lat
            .sites()
            .filter(|&s| clusters.in_largest(&lat, s))
            .collect();
        if members.len() < 2 {
            continue;
        }
        let mut rng = rng_from_seed(derive_seed(seed ^ 0xAB1, l as u64));
        let mut n = 0usize;
        let (mut sum_d, mut sum_fig9, mut sum_flood) = (0u64, 0u64, 0u64);
        for _ in 0..pairs_per_size {
            let a = members[rng.random_range(0..members.len())];
            let b = members[rng.random_range(0..members.len())];
            if Lattice::dist_l1(a, b) < (l / 4) as u32 {
                continue;
            }
            let r = route_xy(&lat, a, b);
            debug_assert!(r.delivered, "same-cluster pair must deliver");
            let fl = flood_probes(&lat, a, b).expect("same cluster");
            let d = chemical_distance(&lat, a, b).expect("same cluster") as u64;
            n += 1;
            sum_d += d;
            sum_fig9 += r.probes as u64;
            sum_flood += fl;
        }
        if n == 0 {
            continue;
        }
        let (d, f9, fl) = (
            sum_d as f64 / n as f64,
            sum_fig9 as f64 / n as f64,
            sum_flood as f64 / n as f64,
        );
        rows.push(AblationRow {
            l_size: l,
            pairs: n,
            mean_chemical_dist: d,
            mean_fig9_probes: f9,
            mean_flood_probes: fl,
            fig9_per_dist: f9 / d,
            flood_per_dist: fl / d,
        });
    }
    AblationReport { p, rows }
}

// ---------------------------------------------------------------------
// EXP-T22 — UDG-SENS goodness threshold λ_s.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Serialize)]
pub struct UdgGoodnessRow {
    pub config: String,
    pub lambda: f64,
    pub p_good_mc: f64,
    pub p_good_analytic: Option<f64>,
}

#[derive(Clone, Debug, Serialize)]
pub struct UdgLambdaRow {
    pub config: String,
    pub lambda_s_measured: f64,
    pub lambda_s_analytic: Option<f64>,
}

#[derive(Clone, Debug, Serialize)]
pub struct UdgThresholdReport {
    pub reps: usize,
    pub goodness_target: f64,
    pub sweep: Vec<UdgGoodnessRow>,
    pub lambda_s: Vec<UdgLambdaRow>,
}

pub fn run_udg_threshold(profile: Profile, seed: u64) -> UdgThresholdReport {
    let reps = profile.pick(20_000, 800);
    let configs: Vec<(&str, UdgSensParams)> = vec![
        ("strict-default", UdgSensParams::strict_default()),
        (
            "strict-optimized",
            optimize_udg_geometry(profile.pick(24, 8)).params,
        ),
        ("paper-geometry", UdgSensParams::paper()),
    ];
    let lambdas: Vec<f64> = profile.pick(
        vec![1.0, 1.568, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 32.0],
        vec![1.0, 1.568, 4.0, 12.0, 24.0],
    );
    let mut sweep_rows = Vec::new();
    let mut lambda_rows = Vec::new();
    for (name, params) in &configs {
        for &l in &lambdas {
            sweep_rows.push(UdgGoodnessRow {
                config: name.to_string(),
                lambda: l,
                p_good_mc: p_good_udg(*params, l, reps, seed),
                p_good_analytic: p_good_udg_analytic(*params, l),
            });
        }
        lambda_rows.push(UdgLambdaRow {
            config: name.to_string(),
            lambda_s_measured: lambda_s_udg(
                *params,
                GOODNESS_TARGET,
                reps / 4,
                profile.pick(18, 12),
                seed,
            ),
            lambda_s_analytic: lambda_s_analytic(*params, GOODNESS_TARGET),
        });
    }
    UdgThresholdReport {
        reps,
        goodness_target: GOODNESS_TARGET,
        sweep: sweep_rows,
        lambda_s: lambda_rows,
    }
}

// ---------------------------------------------------------------------
// EXP-T24 — NN-SENS critical neighbour count k_s.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Serialize)]
pub struct NnScaleRow {
    pub a: f64,
    pub p_regions_occupied: f64,
    pub k_s: Option<usize>,
    pub p_good_at_k_s: Option<f64>,
}

#[derive(Clone, Debug, Serialize)]
pub struct NnThresholdReport {
    pub reps: usize,
    pub goodness_target: f64,
    pub rows: Vec<NnScaleRow>,
    pub best_a: Option<f64>,
    pub best_k_s: Option<usize>,
}

pub fn run_nn_threshold(profile: Profile, seed: u64) -> NnThresholdReport {
    let reps = profile.pick(4000, 400);
    let scales: Vec<f64> = profile.pick(
        (0..14).map(|i| 0.5 + 0.1 * i as f64).collect(),
        (0..7).map(|i| 0.6 + 0.1 * i as f64).collect(),
    );
    let mut rows = Vec::new();
    let mut best: Option<(f64, usize)> = None;
    for &a in &scales {
        let samples = nn_tile_samples(a, reps, seed);
        let p_regions =
            samples.iter().filter(|s| s.regions_ok).count() as f64 / samples.len() as f64;
        let ks = k_s_for_scale(a, GOODNESS_TARGET, reps, seed);
        rows.push(NnScaleRow {
            a,
            p_regions_occupied: p_regions,
            k_s: ks,
            p_good_at_k_s: ks.map(|k| p_good_nn_from_samples(&samples, k)),
        });
        if let Some(k) = ks {
            if best.is_none_or(|(_, bk)| k < bk) {
                best = Some((a, k));
            }
        }
    }
    NnThresholdReport {
        reps,
        goodness_target: GOODNESS_TARGET,
        rows,
        best_a: best.map(|(a, _)| a),
        best_k_s: best.map(|(_, k)| k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percolation_quick_lands_near_the_literature_pc() {
        let r = run_percolation(Profile::Quick, 9);
        assert_eq!(r.points.len(), 13);
        // Finite-size estimate: generous band around 0.5927.
        assert!(
            (r.pc_estimate - 0.5927).abs() < 0.05,
            "pc {}",
            r.pc_estimate
        );
    }

    #[test]
    fn chemical_ratios_are_at_least_one() {
        let r = run_chemical(Profile::Quick, 4);
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert!(
                row.mean_ratio >= 1.0,
                "ratio {} at p {}",
                row.mean_ratio,
                row.p
            );
            assert!(row.max_ratio >= row.p95_ratio);
        }
    }

    #[test]
    fn ablation_flooding_costs_more_than_fig9() {
        let r = run_ablation(Profile::Quick, 12);
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            assert!(
                row.mean_flood_probes > row.mean_fig9_probes,
                "flooding must visit more sites (L = {})",
                row.l_size
            );
        }
    }

    #[test]
    fn substrate_reports_serialize() {
        let r = run_ablation(Profile::Quick, 12);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("fig9_per_dist"));
    }
}
