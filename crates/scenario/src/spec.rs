//! Declarative scenario descriptions.
//!
//! A scenario is data, not code: the runner interprets these specs, so a
//! new experiment is a new value (usually a new preset), not a new binary.

use wsn_core::params::{NnSensParams, UdgSensParams};

/// How sensors are deployed in the window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeploymentSpec {
    /// Homogeneous Poisson process of intensity `lambda`.
    Poisson { lambda: f64 },
    /// Matérn type-II hard-core process with *retained* intensity `lambda`
    /// and hard-core radius `hard_core`; the parent intensity is recovered
    /// by inverting the retention formula, so densities are comparable with
    /// the Poisson axis value.
    Matern { lambda: f64, hard_core: f64 },
}

impl DeploymentSpec {
    /// Human-readable label used in reports (stable: goldens pin it).
    pub fn label(&self) -> String {
        match *self {
            DeploymentSpec::Poisson { lambda } => format!("poisson(lambda={lambda})"),
            DeploymentSpec::Matern { lambda, hard_core } => {
                format!("matern2(lambda={lambda},r={hard_core})")
            }
        }
    }
}

/// Which topology is constructed over the deployment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TopologySpec {
    /// The paper's UDG-SENS construction (strict default geometry).
    UdgSens,
    /// The paper's NN-SENS construction with tile scale `a` and neighbour
    /// count `k`.
    NnSens { a: f64, k: usize },
    /// The base unit-disk graph.
    Udg { radius: f64 },
    /// The undirected k-nearest-neighbour graph `NN(2, k)`.
    Knn { k: usize },
    /// Gabriel graph restricted to UDG edges.
    Gabriel { radius: f64 },
    /// Relative neighbourhood graph restricted to UDG edges.
    Rng { radius: f64 },
    /// Yao graph with `cones` cones restricted to UDG edges.
    Yao { radius: f64, cones: usize },
    /// Hierarchical neighbor graph (Bagchi–Madan–Premi): promotion
    /// probability `p`, `links` uplinks per level. Connected by
    /// construction at any density — the third SENS-class topology.
    Hng { p: f64, links: usize },
}

impl TopologySpec {
    /// Human-readable label used in reports (stable: goldens pin it).
    pub fn label(&self) -> String {
        match *self {
            TopologySpec::UdgSens => "udg-sens".into(),
            TopologySpec::NnSens { a, k } => format!("nn-sens(a={a},k={k})"),
            TopologySpec::Udg { radius } => format!("udg(r={radius})"),
            TopologySpec::Knn { k } => format!("knn(k={k})"),
            TopologySpec::Gabriel { radius } => format!("gabriel(r={radius})"),
            TopologySpec::Rng { radius } => format!("rng(r={radius})"),
            TopologySpec::Yao { radius, cones } => format!("yao(r={radius},c={cones})"),
            TopologySpec::Hng { p, links } => format!("hng(p={p},m={links})"),
        }
    }

    /// The SENS constructions need a tile grid; baselines only a window.
    pub fn is_sens(&self) -> bool {
        matches!(self, TopologySpec::UdgSens | TopologySpec::NnSens { .. })
    }

    /// Tile side of the SENS grid for this topology, if any.
    pub fn tile_side(&self) -> Option<f64> {
        match *self {
            TopologySpec::UdgSens => Some(UdgSensParams::strict_default().tile_side),
            TopologySpec::NnSens { a, k } => Some(NnSensParams { a, k }.tile_side()),
            _ => None,
        }
    }
}

/// How the topology is constructed: monolithically (the reference
/// builders) or through the tile-sharded parallel pipeline.
///
/// The pipeline is proven edge-identical to the monolithic builders
/// (`tests/sharded_vs_monolithic.rs`), so this knob changes wall-clock and
/// memory shape, **never** a single metric byte — which is why it is not
/// part of the cell label and not a matrix axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecSpec {
    /// Use the sharded rayon-parallel pipeline.
    pub parallel: bool,
    /// Shard side in topology tiles (query radius for the plain graphs,
    /// the k-NN halo for `Knn`; SENS constructions shard by their own
    /// tiles). `usize::MAX` means one whole-window shard.
    pub shard_tiles: usize,
}

impl ExecSpec {
    /// The reference single-shard execution (the default).
    pub const fn monolithic() -> Self {
        ExecSpec {
            parallel: false,
            shard_tiles: 16,
        }
    }

    /// The sharded pipeline with the default shard size.
    pub const fn sharded() -> Self {
        ExecSpec {
            parallel: true,
            shard_tiles: 16,
        }
    }
}

impl Default for ExecSpec {
    fn default() -> Self {
        ExecSpec::monolithic()
    }
}

/// Mid-construction fault injection: each node dies independently with
/// probability `p_fail` after deployment but before the (re)build epoch —
/// the construction must cope with the surviving density.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    pub p_fail: f64,
}

impl FaultSpec {
    pub fn label(&self) -> String {
        format!("fail(p={})", self.p_fail)
    }
}

/// Per-epoch energy renewal axis of a lifetime workload — maps one-to-one
/// onto `wsn_simnet::RenewalPolicy` (the runner does the translation).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RenewalSpec {
    /// Batteries only drain (the established default).
    #[default]
    None,
    /// Wireless charging vehicle with a per-epoch travel budget and
    /// QCAL-style max/min charge bands.
    MobileCharger {
        travel_budget: f64,
        min_charge: f64,
        max_charge: f64,
    },
    /// Per-epoch harvesting trickle clamped to a ceiling.
    Solar { rate: f64, max_charge: f64 },
    /// LEACH-style per-epoch sink rotation (no energy added; the hot
    /// relay neighbourhood moves instead).
    SinkRotation,
}

impl RenewalSpec {
    /// Human-readable label used in reports and bench rows (stable:
    /// goldens and the renewal gate pin it).
    pub fn label(&self) -> String {
        match *self {
            RenewalSpec::None => "none".into(),
            RenewalSpec::MobileCharger {
                travel_budget,
                min_charge,
                max_charge,
            } => format!("charger(b={travel_budget},min={min_charge},max={max_charge})"),
            RenewalSpec::Solar { rate, max_charge } => {
                format!("solar(rate={rate},max={max_charge})")
            }
            RenewalSpec::SinkRotation => "sink-rotation".into(),
        }
    }
}

/// Path selection for the plain-topology lifetime traffic loop — maps
/// one-to-one onto `wsn_simnet::RoutePolicy`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum RouteSpec {
    /// Fewest hops (the established default).
    #[default]
    HopCount,
    /// Minimum total radio energy under the cell's energy model.
    MinEnergy,
    /// Maximise the minimum residual battery along the path (the
    /// load-balancing variant).
    MaxMinResidual,
}

impl RouteSpec {
    /// Stable label (bench rows pin it).
    pub fn label(&self) -> &'static str {
        match self {
            RouteSpec::HopCount => "hop-count",
            RouteSpec::MinEnergy => "min-energy",
            RouteSpec::MaxMinResidual => "max-min-residual",
        }
    }
}

/// Churn-driven lifetime simulation (the dynamic-network workload).
///
/// When present, the replication runs `wsn_simnet::churn` instead of the
/// static metric suite: the deployment is split into an initially-alive
/// population plus a reserve pool (`reserve_frac` of the nodes, taken from
/// the highest ids), then simulated for `epochs` rounds of traffic, battery
/// drain, failures, joins and in-place topology repair. Like [`ExecSpec`]
/// this is not a matrix axis and not part of the cell label — a lifetime
/// preset is a different *workload*, not a different cell of the same one.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Epochs simulated.
    pub epochs: usize,
    /// Initial battery per node (fresh reserve nodes get the same).
    pub battery: f64,
    /// Per-epoch idle drain per alive node.
    pub idle_cost: f64,
    /// Packets routed per epoch.
    pub traffic: usize,
    /// Per-epoch random-failure probability.
    pub p_fail: f64,
    /// `Some(radius)` switches failures to clustered sector blackouts of
    /// that radius (expected kill fraction stays `p_fail`).
    pub blast_radius: Option<f64>,
    /// Reserve nodes admitted per death.
    pub join_rate: f64,
    /// Fraction of the deployment held back as the join reserve.
    pub reserve_frac: f64,
    /// Per-epoch energy renewal ([`RenewalSpec::None`] = drain-only).
    /// When this or `route` departs from the defaults the runner also
    /// simulates a drain-only hop-count baseline arm and emits the
    /// `lifetime.*` comparison channels.
    pub renewal: RenewalSpec,
    /// Path selection for the traffic loop ([`RouteSpec::HopCount`] is
    /// the established default; SENS cells always route Fig.-9 style).
    pub route: RouteSpec,
}

/// Always-on topology service workload (the serve-mode read path).
///
/// When present, the replication runs `wsn_simnet::serve` instead of the
/// static metric suite: the deployment churns under the cell's
/// [`ChurnSpec`]-shaped schedule while reader threads answer route / k-NN
/// / coverage / membership queries against epoch-pinned snapshots. Like
/// [`ChurnSpec`] this is a *workload*, not a matrix axis. Reader-thread
/// count is deliberately **not** part of the spec: serve answers are
/// byte-identical at any thread count (the concurrency suite pins this),
/// so the runner picks threads freely without touching golden bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSpec {
    /// Churn schedule the writer drives (traffic is always 0 in serve
    /// mode: reads never debit batteries).
    pub churn: ChurnSpec,
    /// Query clients (each with its own route cache and digest).
    pub clients: usize,
    /// Queries per client per epoch.
    pub queries_per_client: usize,
    /// Route destinations are sampled within this radius of the source.
    pub route_radius: f64,
    /// Coverage / k-NN probe radius.
    pub coverage_radius: f64,
    /// Per-client LRU route-cache capacity.
    pub cache_capacity: usize,
}

/// Euclidean-stretch sampling (property P2).
#[derive(Clone, Debug, PartialEq)]
pub struct StretchSpec {
    /// Ordered node pairs sampled per replication.
    pub pairs: usize,
    /// Tail threshold α for `P[stretch > α]`.
    pub alpha: f64,
}

/// Empty-box coverage estimation (property P3 / Theorem 3.3).
#[derive(Clone, Debug, PartialEq)]
pub struct CoverageSpec {
    /// Box sides ℓ to probe.
    pub ells: Vec<f64>,
    /// Boxes dropped per ℓ.
    pub samples: usize,
    /// Corollary 3.4 targets: report the smallest ℓ with
    /// `P[B(ℓ) empty] < 1/n` for each `n`.
    pub logn_targets: Vec<f64>,
}

/// Power-stretch comparison against the base UDG optimum.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerSpec {
    /// Path-loss exponents β to evaluate.
    pub betas: Vec<f64>,
    /// Node pairs sampled per replication.
    pub pairs: usize,
}

/// Fig. 9 routing with message-level accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingSpec {
    /// Packets routed per replication.
    pub routes: usize,
    /// Also account radio energy (free-space model) per delivered packet.
    pub energy: bool,
}

/// Which metrics a scenario computes. Every field is optional so a preset
/// pays only for what it pins.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSuite {
    /// Degree statistics of the built graph (property P1).
    pub degree: bool,
    /// SENS summary counters: good-tile fraction, elected, core size,
    /// missing links (SENS topologies only).
    pub sens_summary: bool,
    /// Euclidean stretch over sampled pairs (property P2).
    pub stretch: Option<StretchSpec>,
    /// Empty-box coverage curve (property P3).
    pub coverage: Option<CoverageSpec>,
    /// Power stretch vs the base UDG (the power-efficiency headline).
    pub power: Option<PowerSpec>,
    /// Fig. 9 routing overhead and delivery.
    pub routing: Option<RoutingSpec>,
    /// Fig. 7 distributed-construction cost: rounds and per-node messages
    /// (property P4; UDG-SENS only).
    pub construction: bool,
    /// Claim 2.1 / 2.3 relay-path audit on adjacent good tiles.
    pub claim_paths: bool,
}

/// One fully-specified scenario cell.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Window side (SENS grids are fitted to it; baselines use it exactly).
    pub side: f64,
    pub deployment: DeploymentSpec,
    pub topology: TopologySpec,
    pub fault: Option<FaultSpec>,
    pub metrics: MetricSuite,
    /// Construction execution mode (not an axis; see [`ExecSpec`]).
    pub exec: ExecSpec,
    /// Lifetime workload (not an axis; replaces the static metric suite
    /// when present — see [`ChurnSpec`]).
    pub churn: Option<ChurnSpec>,
    /// Serve workload (not an axis; replaces the static metric suite when
    /// present — see [`ServeSpec`]; takes precedence over `churn`).
    pub serve: Option<ServeSpec>,
    /// Independent replications (each with its own derived seed).
    pub replications: usize,
}

impl ScenarioSpec {
    /// Stable cell label: `side=…/deployment/topology/fault`.
    pub fn label(&self) -> String {
        let fault = self
            .fault
            .map(|f| f.label())
            .unwrap_or_else(|| "none".into());
        format!(
            "side={}/{}/{}/{}",
            self.side,
            self.deployment.label(),
            self.topology.label(),
            fault
        )
    }
}

/// A cross product of axis values sharing one metric suite.
///
/// `expand` enumerates cells in a fixed, documented order (side-major, then
/// deployment, topology, fault), which the runner's seed derivation and the
/// golden files both rely on.
#[derive(Clone, Debug)]
pub struct ScenarioMatrix {
    pub sides: Vec<f64>,
    pub deployments: Vec<DeploymentSpec>,
    pub topologies: Vec<TopologySpec>,
    /// Fault axis; use `vec![None]` for no fault modelling.
    pub faults: Vec<Option<FaultSpec>>,
    pub metrics: MetricSuite,
    /// Construction execution mode shared by every cell (not an axis).
    pub exec: ExecSpec,
    /// Lifetime workload shared by every cell (not an axis).
    pub churn: Option<ChurnSpec>,
    /// Serve workload shared by every cell (not an axis).
    pub serve: Option<ServeSpec>,
    pub replications: usize,
}

impl ScenarioMatrix {
    /// All cells of the matrix, in deterministic order.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::with_capacity(
            self.sides.len() * self.deployments.len() * self.topologies.len() * self.faults.len(),
        );
        for &side in &self.sides {
            for &deployment in &self.deployments {
                for &topology in &self.topologies {
                    for &fault in &self.faults {
                        out.push(ScenarioSpec {
                            side,
                            deployment,
                            topology,
                            fault,
                            metrics: self.metrics.clone(),
                            exec: self.exec,
                            churn: self.churn,
                            serve: self.serve,
                            replications: self.replications,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_order_is_side_major() {
        let m = ScenarioMatrix {
            sides: vec![8.0, 10.0],
            deployments: vec![DeploymentSpec::Poisson { lambda: 20.0 }],
            topologies: vec![TopologySpec::UdgSens, TopologySpec::Udg { radius: 1.0 }],
            faults: vec![None, Some(FaultSpec { p_fail: 0.2 })],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        };
        let cells = m.expand();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].side, 8.0);
        assert_eq!(cells[0].topology, TopologySpec::UdgSens);
        assert_eq!(cells[0].fault, None);
        assert_eq!(cells[1].fault, Some(FaultSpec { p_fail: 0.2 }));
        assert_eq!(cells[2].topology, TopologySpec::Udg { radius: 1.0 });
        assert_eq!(cells[4].side, 10.0);
    }

    #[test]
    fn labels_are_stable() {
        let s = ScenarioSpec {
            side: 12.0,
            deployment: DeploymentSpec::Matern {
                lambda: 20.0,
                hard_core: 0.1,
            },
            topology: TopologySpec::Yao {
                radius: 1.0,
                cones: 6,
            },
            fault: Some(FaultSpec { p_fail: 0.25 }),
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 1,
        };
        assert_eq!(
            s.label(),
            "side=12/matern2(lambda=20,r=0.1)/yao(r=1,c=6)/fail(p=0.25)"
        );
    }

    #[test]
    fn sens_topologies_have_tile_sides() {
        assert!(TopologySpec::UdgSens.tile_side().is_some());
        assert!(TopologySpec::NnSens { a: 1.2, k: 400 }
            .tile_side()
            .is_some());
        assert!(TopologySpec::Gabriel { radius: 1.0 }.tile_side().is_none());
    }
}
