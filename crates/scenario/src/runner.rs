//! The batched, deterministic scenario runner.
//!
//! All `(cell, replication)` jobs of a matrix are flattened into one list
//! and fanned out over the rayon shim. Each job's RNG seed is
//! `derive_seed2(base_seed, cell_index, replication_index)` — a pure
//! function of the job's position — and job outputs are collected in input
//! order, so the aggregated report is bit-identical at any thread count.

use rayon::prelude::*;
use serde::value::Value;
use serde::Serialize;
use wsn_geom::hash::derive_seed2;

use crate::metrics::{run_replication, Channels};
use crate::spec::{ScenarioMatrix, ScenarioSpec};

/// Replication scale of a run.
///
/// Presets size their matrices from this; the golden files pin the
/// [`Profile::Quick`] numbers, [`Profile::Full`] is for humans reproducing
/// paper tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    Quick,
    Full,
}

impl Profile {
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// Pick between a full and a quick value.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        match self {
            Profile::Full => full,
            Profile::Quick => quick,
        }
    }
}

/// Aggregate of one metric channel across replications.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct Agg {
    /// Replications that emitted the channel (a metric can be absent, e.g.
    /// when a replication had an empty core).
    pub n: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

impl Agg {
    fn of(values: &[f64]) -> Agg {
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Agg { n, mean, min, max }
    }
}

/// Ordered channel-name → [`Agg`] map (order = first emission across the
/// replications, so reports are stable and diffable).
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelAggregates(pub Vec<(String, Agg)>);

impl ChannelAggregates {
    /// Look up one aggregated channel by name.
    pub fn get(&self, name: &str) -> Option<&Agg> {
        self.0.iter().find(|(n, _)| n == name).map(|(_, a)| a)
    }

    fn from_replications(reps: &[Channels]) -> Self {
        // One pass over all channels, grouping values by name in
        // first-emission order. Channel counts are small (tens), so a
        // linear name lookup beats a map without hurting.
        let mut grouped: Vec<(String, Vec<f64>)> = Vec::new();
        for rep in reps {
            for (name, value) in rep {
                match grouped.iter_mut().find(|(n, _)| n == name) {
                    Some((_, values)) => values.push(*value),
                    None => grouped.push((name.clone(), vec![*value])),
                }
            }
        }
        ChannelAggregates(
            grouped
                .into_iter()
                .map(|(name, values)| (name, Agg::of(&values)))
                .collect(),
        )
    }
}

impl Serialize for ChannelAggregates {
    fn to_value(&self) -> Value {
        Value::Object(
            self.0
                .iter()
                .map(|(name, agg)| (name.clone(), agg.to_value()))
                .collect(),
        )
    }
}

/// One scenario cell's aggregated outcome.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioResult {
    pub label: String,
    pub side: f64,
    pub deployment: String,
    pub topology: String,
    pub fault: String,
    pub replications: usize,
    pub metrics: ChannelAggregates,
}

/// Run a list of scenario cells (all replications of all cells in one
/// parallel fan-out) and aggregate per cell.
pub fn run_specs(specs: &[ScenarioSpec], base_seed: u64) -> Vec<ScenarioResult> {
    let jobs: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(cell, s)| (0..s.replications as u64).map(move |rep| (cell, rep)))
        .collect();
    let outputs: Vec<Channels> = jobs
        .into_par_iter()
        .map(|(cell, rep)| run_replication(&specs[cell], derive_seed2(base_seed, cell as u64, rep)))
        .collect();

    let mut results = Vec::with_capacity(specs.len());
    let mut cursor = 0usize;
    for spec in specs {
        let reps = &outputs[cursor..cursor + spec.replications];
        cursor += spec.replications;
        results.push(ScenarioResult {
            label: spec.label(),
            side: spec.side,
            deployment: spec.deployment.label(),
            topology: spec.topology.label(),
            fault: spec
                .fault
                .map(|f| f.label())
                .unwrap_or_else(|| "none".into()),
            replications: spec.replications,
            metrics: ChannelAggregates::from_replications(reps),
        });
    }
    results
}

/// Expand and run a whole matrix.
pub fn run_matrix(matrix: &ScenarioMatrix, base_seed: u64) -> Vec<ScenarioResult> {
    run_specs(&matrix.expand(), base_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DeploymentSpec, ExecSpec, MetricSuite, TopologySpec};

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix {
            sides: vec![6.0],
            deployments: vec![DeploymentSpec::Poisson { lambda: 22.0 }],
            topologies: vec![TopologySpec::UdgSens, TopologySpec::Udg { radius: 1.0 }],
            faults: vec![None],
            metrics: MetricSuite {
                degree: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 3,
        }
    }

    /// Two runs of the same matrix are identical. (Thread-count invariance
    /// proper — varying `RAYON_NUM_THREADS` — is pinned by the
    /// `scenarios_golden` integration suite, whose tests are serialised:
    /// mutating the environment here would race with sibling unit tests
    /// reading it on their own fan-outs.)
    #[test]
    fn results_are_schedule_independent() {
        let m = tiny_matrix();
        let a = run_matrix(&m, 99);
        let b = run_matrix(&m, 99);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn aggregates_count_every_replication() {
        let results = run_matrix(&tiny_matrix(), 5);
        assert_eq!(results.len(), 2);
        for r in &results {
            let deployed = r.metrics.get("nodes.deployed").unwrap();
            assert_eq!(deployed.n, 3);
            assert!(deployed.min <= deployed.mean && deployed.mean <= deployed.max);
            assert!(r.metrics.get("degree.max").unwrap().max <= 4.0 || r.topology != "udg-sens");
        }
    }

    #[test]
    fn seed_changes_the_numbers() {
        let m = tiny_matrix();
        let a = run_matrix(&m, 1);
        let b = run_matrix(&m, 2);
        assert_ne!(
            a[0].metrics.get("nodes.deployed").unwrap().mean,
            b[0].metrics.get("nodes.deployed").unwrap().mean
        );
    }

    #[test]
    fn agg_of_basic_stats() {
        let a = Agg::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a.n, 3);
        assert_eq!(a.mean, 2.0);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
    }
}
