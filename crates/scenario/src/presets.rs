//! The named experiment catalogue.
//!
//! Every retired `exp_*` binary maps to one preset here (see `replaces`);
//! the `wsn-scenarios` driver runs them by name and the golden suite pins
//! their quick profiles. Presets are plain functions of
//! `(profile, seed)` → [`Report`], so adding a scenario is a data edit.

use serde::Serialize;

use crate::report::Report;
use crate::runner::{run_matrix, Profile};
use crate::spec::{
    ChurnSpec, CoverageSpec, DeploymentSpec, ExecSpec, FaultSpec, MetricSuite, PowerSpec,
    RenewalSpec, RouteSpec, RoutingSpec, ScenarioMatrix, ServeSpec, StretchSpec, TopologySpec,
};
use crate::substrate;

/// A named experiment preset.
#[derive(Clone, Copy, Debug)]
pub struct Preset {
    pub name: &'static str,
    pub title: &'static str,
    /// The `exp_*` binaries this preset replaced (empty for new workloads).
    pub replaces: &'static [&'static str],
}

/// The full catalogue, in canonical order.
pub const PRESETS: &[Preset] = &[
    Preset {
        name: "sparsity",
        title: "P1: SENS max degree <= 4 vs UDG and baseline spanners across densities",
        replaces: &["exp_sparsity"],
    },
    Preset {
        name: "stretch",
        title: "P2 / Thm 3.2: constant stretch with an exponentially small tail",
        replaces: &["exp_stretch"],
    },
    Preset {
        name: "coverage",
        title: "P3 / Thm 3.3: empty-box probability decays exponentially in ell",
        replaces: &["exp_coverage"],
    },
    Preset {
        name: "coverage-logn",
        title: "Cor 3.4: box side for P[empty] < 1/n grows like log n",
        replaces: &["exp_coverage_logn"],
    },
    Preset {
        name: "power",
        title: "Power stretch vs the UDG optimum at a fraction of the edges",
        replaces: &["exp_power"],
    },
    Preset {
        name: "matern",
        title: "Robustness: UDG-SENS on Matern-II hard-core vs Poisson deployments",
        replaces: &["exp_matern"],
    },
    Preset {
        name: "claim-udg",
        title: "Claim 2.1: 3-edge relay paths between adjacent good tiles (UDG-SENS)",
        replaces: &["exp_claim_udg"],
    },
    Preset {
        name: "claim-nn",
        title: "Claim 2.3: 5-edge relay paths with all links in NN(2,k) (NN-SENS)",
        replaces: &["exp_claim_nn"],
    },
    Preset {
        name: "routing",
        title: "Fig. 9: routing overhead per lattice step is O(1), full core delivery",
        replaces: &["exp_routing"],
    },
    Preset {
        name: "construct-cost",
        title: "P4 / Fig. 7: distributed construction rounds and per-node messages",
        replaces: &["exp_construct_cost"],
    },
    Preset {
        name: "fault-resilience",
        title: "Fault axis: mid-construction failures vs P1 audit and delivery",
        replaces: &[],
    },
    Preset {
        name: "lifetime-sens-vs-udg",
        title: "Lifetime: battery-driven epochs, UDG-SENS vs raw UDG until partition",
        replaces: &[],
    },
    Preset {
        name: "lifetime-join-churn",
        title: "Lifetime: clustered blackouts + join reserve, incremental repair across baselines",
        replaces: &[],
    },
    Preset {
        name: "lifetime-blackout-locality",
        title: "Lifetime: tight sector blackouts, locality-proportional repair trajectories",
        replaces: &[],
    },
    Preset {
        name: "lifetime-renewal",
        title: "Lifetime: mobile-charger energy renewal vs the drain-only baseline",
        replaces: &[],
    },
    Preset {
        name: "lifetime-load-balance",
        title: "Lifetime: max-min-residual load balancing vs hop-count, both sides pinned",
        replaces: &[],
    },
    Preset {
        name: "serve-snapshot",
        title: "Serve: epoch-snapshot reads over clustered churn, answer digests pinned",
        replaces: &[],
    },
    Preset {
        name: "hng-vs-sens",
        title: "HNG vs SENS: connected-by-construction hierarchy across sparse and dense regimes",
        replaces: &[],
    },
    Preset {
        name: "percolation-pc",
        title: "Substrate: site-percolation theta(p), crossing probability, p_c",
        replaces: &["exp_pc"],
    },
    Preset {
        name: "chemical",
        title: "Substrate: chemical distance concentrates at a constant multiple of L1",
        replaces: &["exp_chemical"],
    },
    Preset {
        name: "ablation-routing",
        title: "Ablation: Fig. 9 x-y + repair vs flooding on supercritical lattices",
        replaces: &["exp_ablation_routing"],
    },
    Preset {
        name: "udg-threshold",
        title: "Thm 2.2: supercritical density lambda_s of UDG-SENS",
        replaces: &["exp_udg_threshold"],
    },
    Preset {
        name: "nn-threshold",
        title: "Thm 2.4: critical neighbour count k_s of NN-SENS",
        replaces: &["exp_nn_threshold"],
    },
];

/// All presets in canonical order.
pub fn all_presets() -> &'static [Preset] {
    PRESETS
}

/// Look a preset up by name.
pub fn find_preset(name: &str) -> Option<&'static Preset> {
    PRESETS.iter().find(|p| p.name == name)
}

fn poisson(lambdas: &[f64]) -> Vec<DeploymentSpec> {
    lambdas
        .iter()
        .map(|&lambda| DeploymentSpec::Poisson { lambda })
        .collect()
}

fn matrix_for(preset: &Preset, profile: Profile) -> Option<ScenarioMatrix> {
    let m = match preset.name {
        "sparsity" => ScenarioMatrix {
            sides: vec![profile.pick(30.0, 8.0)],
            deployments: poisson(&[20.0, 30.0, 45.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Gabriel { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
                TopologySpec::Yao {
                    radius: 1.0,
                    cones: 6,
                },
                TopologySpec::UdgSens,
            ],
            faults: vec![None],
            metrics: MetricSuite {
                degree: true,
                sens_summary: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "stretch" => ScenarioMatrix {
            sides: vec![profile.pick(60.0, 14.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                stretch: Some(StretchSpec {
                    pairs: profile.pick(4000, 300),
                    alpha: 2.5,
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "coverage" => ScenarioMatrix {
            sides: vec![profile.pick(40.0, 12.0)],
            deployments: poisson(&[20.0, 30.0, 45.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                coverage: Some(CoverageSpec {
                    ells: profile.pick(
                        (1..=10).map(|i| 0.25 * i as f64).collect(),
                        vec![0.5, 1.0, 1.5, 2.0],
                    ),
                    samples: profile.pick(20_000, 1500),
                    logn_targets: Vec::new(),
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "coverage-logn" => ScenarioMatrix {
            sides: vec![profile.pick(36.0, 12.0)],
            deployments: poisson(&[30.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                coverage: Some(CoverageSpec {
                    ells: Vec::new(),
                    samples: profile.pick(20_000, 1500),
                    logn_targets: profile
                        .pick(vec![10.0, 30.0, 100.0, 300.0, 1000.0], vec![10.0, 100.0]),
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "power" => ScenarioMatrix {
            sides: vec![profile.pick(24.0, 8.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![
                TopologySpec::Gabriel { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
                TopologySpec::Yao {
                    radius: 1.0,
                    cones: 6,
                },
                TopologySpec::UdgSens,
            ],
            faults: vec![None],
            metrics: MetricSuite {
                degree: true,
                power: Some(PowerSpec {
                    betas: profile.pick(vec![2.0, 3.0, 4.0, 5.0], vec![2.0, 4.0]),
                    pairs: profile.pick(300, 24),
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "matern" => ScenarioMatrix {
            sides: vec![profile.pick(30.0, 10.0)],
            deployments: vec![
                DeploymentSpec::Poisson { lambda: 20.0 },
                DeploymentSpec::Matern {
                    lambda: 20.0,
                    hard_core: 0.1,
                },
                DeploymentSpec::Poisson { lambda: 30.0 },
                DeploymentSpec::Matern {
                    lambda: 30.0,
                    hard_core: 0.1,
                },
            ],
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                degree: true,
                sens_summary: true,
                coverage: Some(CoverageSpec {
                    ells: vec![1.0],
                    samples: profile.pick(10_000, 1000),
                    logn_targets: Vec::new(),
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "claim-udg" => ScenarioMatrix {
            sides: vec![profile.pick(40.0, 10.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                claim_paths: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: profile.pick(8, 3),
        },
        "claim-nn" => ScenarioMatrix {
            // NN-SENS at unit density: the window is a whole number of
            // 10a-side tiles (a = 1.2 ⇒ tile side 12).
            sides: vec![profile.pick(48.0, 24.0)],
            deployments: poisson(&[1.0]),
            topologies: vec![TopologySpec::NnSens { a: 1.2, k: 400 }],
            faults: vec![None],
            metrics: MetricSuite {
                sens_summary: true,
                claim_paths: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: profile.pick(6, 2),
        },
        "routing" => ScenarioMatrix {
            sides: vec![profile.pick(70.0, 16.0)],
            // λ = 22 keeps a visible fraction of bad tiles so repairs
            // actually happen.
            deployments: poisson(&[22.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                routing: Some(RoutingSpec {
                    routes: profile.pick(3000, 200),
                    energy: true,
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        "construct-cost" => ScenarioMatrix {
            sides: profile.pick(vec![10.0, 15.0, 20.0, 30.0, 40.0], vec![8.0, 12.0]),
            deployments: poisson(&[30.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![None],
            metrics: MetricSuite {
                construction: true,
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: profile.pick(2, 1),
        },
        "fault-resilience" => ScenarioMatrix {
            sides: vec![profile.pick(18.0, 10.0)],
            deployments: poisson(&[40.0]),
            topologies: vec![TopologySpec::UdgSens],
            faults: vec![
                None,
                Some(FaultSpec { p_fail: 0.2 }),
                Some(FaultSpec { p_fail: 0.5 }),
            ],
            metrics: MetricSuite {
                degree: true,
                sens_summary: true,
                routing: Some(RoutingSpec {
                    routes: profile.pick(400, 60),
                    energy: false,
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        // The network lives while batteries do: idle + relay drain kills
        // nodes mid-run, and the report pins how the SENS core's delivery
        // and coverage degrade against the raw UDG on the same deployment.
        "lifetime-sens-vs-udg" => ScenarioMatrix {
            sides: vec![profile.pick(20.0, 8.0)],
            deployments: poisson(&[30.0]),
            topologies: vec![TopologySpec::UdgSens, TopologySpec::Udg { radius: 1.0 }],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: Some(ChurnSpec {
                epochs: profile.pick(20, 6),
                battery: 4000.0,
                idle_cost: 650.0,
                traffic: profile.pick(200, 40),
                p_fail: 0.05,
                blast_radius: None,
                join_rate: 0.0,
                reserve_frac: 0.0,
                renewal: RenewalSpec::None,
                route: RouteSpec::HopCount,
            }),
            serve: None,
            replications: 2,
        },
        // Clustered sector blackouts with a join reserve: every epoch ~15%
        // of the population dies in seeded disk outages and is replaced
        // one-for-one from the reserve, exercising the incremental repair
        // machinery (deaths *and* joins) across the baseline spanners.
        "lifetime-join-churn" => ScenarioMatrix {
            sides: vec![profile.pick(16.0, 8.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
                TopologySpec::Knn { k: 5 },
                TopologySpec::Gabriel { radius: 1.0 },
            ],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: Some(ChurnSpec {
                epochs: profile.pick(12, 5),
                battery: 1e8,
                idle_cost: 0.0,
                traffic: profile.pick(150, 30),
                p_fail: 0.15,
                blast_radius: Some(1.5),
                join_rate: 1.0,
                reserve_frac: 0.25,
                renewal: RenewalSpec::None,
                route: RouteSpec::HopCount,
            }),
            serve: None,
            replications: 2,
        },
        // Tight blackouts on a wide window: each epoch kills only a few
        // small disks, so repair must stay proportional to the churned
        // region. The golden pins the localized dirty-extent gather's
        // exact topology walk (graph_hash32) and its per-epoch re-derive
        // counts (shards_rederived) across thread counts {1, 4, 8}.
        "lifetime-blackout-locality" => ScenarioMatrix {
            sides: vec![profile.pick(24.0, 12.0)],
            deployments: poisson(&[20.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
                TopologySpec::Yao {
                    radius: 1.0,
                    cones: 6,
                },
            ],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: Some(ChurnSpec {
                epochs: profile.pick(10, 4),
                battery: 1e8,
                idle_cost: 0.0,
                traffic: profile.pick(120, 25),
                p_fail: 0.04,
                blast_radius: Some(1.0),
                join_rate: 1.0,
                reserve_frac: 0.15,
                renewal: RenewalSpec::None,
                route: RouteSpec::HopCount,
            }),
            serve: None,
            replications: 2,
        },
        // Energy renewal: the same battery-driven drain as the SENS-vs-UDG
        // lifetime run, but a wireless charging vehicle tops up the
        // lowest-battery nodes each epoch under a travel budget. The runner
        // simulates the drain-only baseline on the same deployment and
        // seed, so the golden pins both trajectories and their gap
        // (`lifetime.lifetime_rounds` vs `lifetime.baseline_*`).
        "lifetime-renewal" => ScenarioMatrix {
            sides: vec![profile.pick(16.0, 8.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
            ],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: Some(ChurnSpec {
                epochs: profile.pick(24, 14),
                battery: 3200.0,
                idle_cost: 450.0,
                traffic: profile.pick(120, 30),
                p_fail: 0.0,
                blast_radius: None,
                join_rate: 0.0,
                reserve_frac: 0.0,
                renewal: RenewalSpec::MobileCharger {
                    travel_budget: 64.0,
                    min_charge: 1600.0,
                    max_charge: 3200.0,
                },
                route: RouteSpec::HopCount,
            }),
            serve: None,
            replications: 2,
        },
        // Load balancing without adding energy: traffic steers around
        // nearly-depleted relays (widest-path on residual battery). The
        // runner's hop-count baseline arm makes the trade-off a pinned
        // observable: residual spread flattens (`final_battery_variance`
        // below the baseline's) while the longer widest paths spend more
        // total energy under uniform random traffic, so the lifetime
        // comparison runs the other way — both sides of the Raicu-style
        // even-drain argument, byte-pinned on the same deployment.
        "lifetime-load-balance" => ScenarioMatrix {
            sides: vec![profile.pick(14.0, 8.0)],
            deployments: poisson(&[25.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Gabriel { radius: 1.0 },
            ],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: Some(ChurnSpec {
                epochs: profile.pick(20, 12),
                battery: 2800.0,
                idle_cost: 120.0,
                traffic: profile.pick(220, 60),
                p_fail: 0.0,
                blast_radius: None,
                join_rate: 0.0,
                reserve_frac: 0.0,
                renewal: RenewalSpec::None,
                route: RouteSpec::MaxMinResidual,
            }),
            serve: None,
            replications: 2,
        },
        // The always-on topology service: a clustered-blackout schedule
        // with joins runs under concurrent reader threads; the golden pins
        // the per-client answer digests (routes incl. cache promotions,
        // k-NN, coverage, membership) and the final topology fingerprint,
        // at every RAYON_NUM_THREADS the workflow sweeps.
        "serve-snapshot" => ScenarioMatrix {
            sides: vec![profile.pick(16.0, 8.0)],
            deployments: poisson(&[20.0]),
            topologies: vec![
                TopologySpec::Udg { radius: 1.0 },
                TopologySpec::Rng { radius: 1.0 },
                TopologySpec::Knn { k: 5 },
            ],
            faults: vec![None],
            metrics: MetricSuite::default(),
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: Some(ServeSpec {
                churn: ChurnSpec {
                    epochs: profile.pick(8, 4),
                    battery: 1e8,
                    idle_cost: 0.0,
                    traffic: 0,
                    p_fail: 0.10,
                    blast_radius: Some(1.2),
                    join_rate: 1.0,
                    reserve_frac: 0.2,
                    renewal: RenewalSpec::None,
                    route: RouteSpec::HopCount,
                },
                clients: profile.pick(8, 4),
                queries_per_client: profile.pick(24, 10),
                route_radius: 3.0,
                coverage_radius: 1.0,
                cache_capacity: 32,
            }),
            replications: 2,
        },
        // The third SENS-class topology raced against both paper
        // constructions on the same deployments. The density axis is the
        // point: λ = 1 is NN-SENS territory (UDG-SENS subcritical there)
        // and λ = 20 is UDG-SENS territory — HNG stays connected by
        // construction at both, which the stretch connected_fraction and
        // power channels make directly comparable. The side is a whole
        // number of NN-SENS tiles (10a = 12), as in `claim-nn`.
        "hng-vs-sens" => ScenarioMatrix {
            sides: vec![profile.pick(36.0, 24.0)],
            deployments: poisson(&[1.0, 20.0]),
            topologies: vec![
                TopologySpec::Hng { p: 0.5, links: 1 },
                TopologySpec::UdgSens,
                TopologySpec::NnSens { a: 1.2, k: 400 },
            ],
            faults: vec![None],
            metrics: MetricSuite {
                degree: true,
                sens_summary: true,
                stretch: Some(StretchSpec {
                    pairs: profile.pick(2000, 200),
                    alpha: 2.5,
                }),
                power: Some(PowerSpec {
                    betas: profile.pick(vec![2.0, 4.0], vec![2.0]),
                    pairs: profile.pick(300, 24),
                }),
                ..MetricSuite::default()
            },
            exec: ExecSpec::monolithic(),
            churn: None,
            serve: None,
            replications: 2,
        },
        _ => return None,
    };
    Some(m)
}

/// Presets implemented as substrate experiments (no deployment matrix).
fn is_substrate(name: &str) -> bool {
    matches!(
        name,
        "percolation-pc" | "chemical" | "ablation-routing" | "udg-threshold" | "nn-threshold"
    )
}

fn substrate_for(preset: &Preset, profile: Profile, seed: u64) -> Option<serde::value::Value> {
    if !is_substrate(preset.name) {
        return None;
    }
    let v = match preset.name {
        "percolation-pc" => substrate::run_percolation(profile, seed).to_value(),
        "chemical" => substrate::run_chemical(profile, seed).to_value(),
        "ablation-routing" => substrate::run_ablation(profile, seed).to_value(),
        "udg-threshold" => substrate::run_udg_threshold(profile, seed).to_value(),
        "nn-threshold" => substrate::run_nn_threshold(profile, seed).to_value(),
        _ => unreachable!("is_substrate and this match must agree"),
    };
    Some(v)
}

/// Run a preset by name. Returns `None` for an unknown name.
pub fn run_preset(name: &str, profile: Profile, seed: u64) -> Option<Report> {
    let preset = find_preset(name)?;
    let scenarios = matrix_for(preset, profile)
        .map(|m| run_matrix(&m, seed))
        .unwrap_or_default();
    let substrate = substrate_for(preset, profile, seed);
    debug_assert!(
        !scenarios.is_empty() || substrate.is_some(),
        "preset {name} produced nothing"
    );
    Some(Report {
        name: preset.name.to_string(),
        title: preset.title.to_string(),
        replaces: preset.replaces.iter().map(|s| s.to_string()).collect(),
        profile: profile.name().to_string(),
        seed,
        scenarios,
        substrate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_covers_all_fifteen_exp_binaries() {
        let replaced: Vec<&str> = PRESETS.iter().flat_map(|p| p.replaces).copied().collect();
        let expected = [
            "exp_ablation_routing",
            "exp_chemical",
            "exp_claim_nn",
            "exp_claim_udg",
            "exp_construct_cost",
            "exp_coverage",
            "exp_coverage_logn",
            "exp_matern",
            "exp_nn_threshold",
            "exp_pc",
            "exp_power",
            "exp_routing",
            "exp_sparsity",
            "exp_stretch",
            "exp_udg_threshold",
        ];
        for e in expected {
            assert!(replaced.contains(&e), "no preset replaces {e}");
        }
        assert_eq!(replaced.len(), expected.len());
    }

    #[test]
    fn every_preset_resolves_to_a_matrix_or_substrate() {
        for p in PRESETS {
            assert!(
                matrix_for(p, Profile::Quick).is_some() != is_substrate(p.name),
                "preset {} must be exactly one of matrix / substrate",
                p.name
            );
        }
    }

    #[test]
    fn names_are_unique() {
        for (i, a) in PRESETS.iter().enumerate() {
            for b in &PRESETS[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(run_preset("no-such-preset", Profile::Quick, 1).is_none());
    }

    #[test]
    fn sparsity_quick_pins_p1() {
        let report = run_preset("sparsity", Profile::Quick, 0xC0FFEE).unwrap();
        // 3 densities × 5 topologies.
        assert_eq!(report.scenarios.len(), 15);
        for cell in &report.scenarios {
            if cell.topology == "udg-sens" {
                let max_deg = cell.metrics.get("degree.max").unwrap();
                assert!(max_deg.max <= 4.0, "P1 violated in {}", cell.label);
            }
        }
    }
}
