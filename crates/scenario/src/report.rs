//! The canonical JSON report envelope.
//!
//! One report per preset run. Serialisation is *canonical*: field order is
//! declaration order (the serde shim's `Value` object preserves insertion
//! order), floats render via Rust's shortest round-trip formatting, and the
//! document ends with exactly one newline — so golden comparison is plain
//! byte equality.

use serde::value::Value;
use serde::Serialize;

use crate::runner::ScenarioResult;

/// A complete preset run: matrix scenarios and/or a substrate experiment.
#[derive(Clone, Debug)]
pub struct Report {
    /// Preset name (also the golden file stem).
    pub name: String,
    /// One-line description of what the preset pins.
    pub title: String,
    /// The `exp_*` binaries this preset replaced.
    pub replaces: Vec<String>,
    /// Profile the run used (`quick` or `full`).
    pub profile: String,
    /// Base seed of the run.
    pub seed: u64,
    /// Aggregated matrix cells (empty for pure substrate presets).
    pub scenarios: Vec<ScenarioResult>,
    /// Substrate experiment payload (percolation / threshold runs).
    pub substrate: Option<Value>,
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), self.name.to_value()),
            ("title".to_string(), self.title.to_value()),
            ("replaces".to_string(), self.replaces.to_value()),
            ("profile".to_string(), self.profile.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("scenarios".to_string(), self.scenarios.to_value()),
        ];
        if let Some(sub) = &self.substrate {
            fields.push(("substrate".to_string(), sub.clone()));
        }
        Value::Object(fields)
    }
}

impl Report {
    /// Canonical pretty JSON: byte-stable for identical runs, terminated by
    /// one newline.
    pub fn canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialisation is total");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Agg, ChannelAggregates};

    fn sample() -> Report {
        Report {
            name: "demo".into(),
            title: "demo preset".into(),
            replaces: vec!["exp_demo".into()],
            profile: "quick".into(),
            seed: 7,
            scenarios: vec![ScenarioResult {
                label: "cell".into(),
                side: 8.0,
                deployment: "poisson(lambda=20)".into(),
                topology: "udg-sens".into(),
                fault: "none".into(),
                replications: 2,
                metrics: ChannelAggregates(vec![(
                    "degree.max".into(),
                    Agg {
                        n: 2,
                        mean: 3.5,
                        min: 3.0,
                        max: 4.0,
                    },
                )]),
            }],
            substrate: None,
        }
    }

    #[test]
    fn canonical_json_is_stable_and_newline_terminated() {
        let r = sample();
        let a = r.canonical_json();
        let b = r.canonical_json();
        assert_eq!(a, b);
        assert!(a.ends_with('\n') && !a.ends_with("\n\n"));
        assert!(a.starts_with("{\n  \"name\": \"demo\""));
    }

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let json = sample().canonical_json();
        let v: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v["scenarios"][0]["metrics"]["degree.max"]["n"].as_u64(),
            Some(2)
        );
        assert_eq!(v["seed"].as_u64(), Some(7));
    }
}
