//! Golden-file comparison and regeneration.
//!
//! One implementation shared by the `wsn-scenarios` driver (`check` /
//! `bless`) and the `scenarios_golden` integration suite, so the byte
//! contract and the diff rendering cannot drift between CI's two paths.

use std::io;
use std::path::{Path, PathBuf};

use crate::report::Report;

/// Outcome of comparing one report against its golden file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Byte-identical.
    Match,
    /// Exists but differs; `detail` holds a one-line size summary plus the
    /// first differing line.
    Diff { detail: String },
    /// Golden file absent or unreadable.
    Missing { detail: String },
}

impl GoldenOutcome {
    pub fn is_match(&self) -> bool {
        matches!(self, GoldenOutcome::Match)
    }
}

/// Where the golden file of a preset lives.
pub fn golden_path(dir: &Path, preset_name: &str) -> PathBuf {
    dir.join(format!("{preset_name}.json"))
}

/// Byte-compare a report's canonical JSON against its golden file.
pub fn check(dir: &Path, report: &Report) -> GoldenOutcome {
    let json = report.canonical_json();
    let path = golden_path(dir, &report.name);
    match std::fs::read_to_string(&path) {
        Ok(golden) if golden == json => GoldenOutcome::Match,
        Ok(golden) => GoldenOutcome::Diff {
            detail: format!(
                "{} vs {} bytes; first differing line:\n{}",
                golden.len(),
                json.len(),
                first_diff(&golden, &json)
            ),
        },
        Err(e) => GoldenOutcome::Missing {
            detail: format!("cannot read {}: {e}", path.display()),
        },
    }
}

/// (Re)write a report's golden file; returns the path written.
pub fn bless(dir: &Path, report: &Report) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = golden_path(dir, &report.name);
    std::fs::write(&path, report.canonical_json())?;
    Ok(path)
}

/// First differing line, with context, for actionable failure output.
fn first_diff(golden: &str, got: &str) -> String {
    for (i, (g, n)) in golden.lines().zip(got.lines()).enumerate() {
        if g != n {
            return format!("  line {}:\n  - {g}\n  + {n}", i + 1);
        }
    }
    "  (one document is a prefix of the other)".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(name: &str) -> Report {
        Report {
            name: name.into(),
            title: "t".into(),
            replaces: Vec::new(),
            profile: "quick".into(),
            seed: 1,
            scenarios: Vec::new(),
            substrate: None,
        }
    }

    #[test]
    fn bless_then_check_round_trips() {
        // Per-process dir: concurrent test runs must not race on the path.
        let dir = std::env::temp_dir().join(format!("wsn-golden-roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = tiny_report("demo");
        assert!(matches!(
            check(&dir, &report),
            GoldenOutcome::Missing { .. }
        ));
        let path = bless(&dir, &report).unwrap();
        assert_eq!(path, golden_path(&dir, "demo"));
        assert!(check(&dir, &report).is_match());
        // A different report against the same golden diffs with context.
        let mut other = tiny_report("demo");
        other.seed = 2;
        match check(&dir, &other) {
            GoldenOutcome::Diff { detail } => {
                assert!(detail.contains("first differing line"), "{detail}")
            }
            o => panic!("expected diff, got {o:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_diff_reports_the_line() {
        let d = first_diff("a\nb\nc", "a\nX\nc");
        assert!(d.contains("line 2"));
        assert!(d.contains("- b") && d.contains("+ X"));
        assert!(first_diff("a\nb", "a\nb\nc").contains("prefix"));
    }
}
