//! # wsn-scenario
//!
//! The unified scenario harness: every paper claim that used to live in a
//! hand-rolled `exp_*` binary is expressed here as a **named preset** over a
//! declarative scenario matrix, run by one deterministic batched runner, and
//! serialised as a canonical JSON report that a golden-file regression suite
//! pins in CI.
//!
//! ## The model
//!
//! A [`spec::ScenarioSpec`] is one cell of a scenario matrix:
//!
//! * a **deployment** model ([`spec::DeploymentSpec`]) — Poisson or
//!   Matérn-II hard-core, from `wsn-pointproc`;
//! * a **topology** construction ([`spec::TopologySpec`]) — UDG-SENS,
//!   NN-SENS, or one of the baselines (UDG, k-NN, Gabriel, RNG, Yao) from
//!   `wsn-core` / `wsn-rgg`;
//! * an optional **fault** model ([`spec::FaultSpec`]) — i.i.d. node
//!   failures injected mid-construction, from `wsn-simnet`;
//! * a **metric suite** ([`spec::MetricSuite`]) — degree statistics,
//!   stretch, coverage, power cost, routing overhead + radio energy,
//!   construction-message locality, and the paper's claim-path audits.
//!
//! A [`spec::ScenarioMatrix`] is the cross product of axis values, and
//! [`runner::run_matrix`] fans the `cells × replications` grid out over the
//! workspace's rayon shim. Every replication derives its RNG seed as a pure
//! function of `(base seed, cell index, replication index)` via
//! [`wsn_geom::hash::derive_seed2`], and results are collected in input
//! order, so a report is **bit-identical regardless of thread count**
//! (`RAYON_NUM_THREADS=1` and `=64` produce the same bytes).
//!
//! Experiments that have no deployment at all — the percolation substrate
//! checks and the λ_s / k_s threshold calculations — live in [`substrate`]
//! and funnel into the same report envelope.
//!
//! ## Presets and goldens
//!
//! [`presets::all_presets`] names the full experiment catalogue (one preset
//! per retired `exp_*` binary); `cargo run -p wsn-bench --bin wsn-scenarios`
//! is the driver. The quick profile of every preset is pinned by
//! `tests/scenarios_golden.rs` against `tests/golden/*.json` — see
//! `tests/README.md` for the golden workflow.

pub mod golden;
pub mod metrics;
pub mod presets;
pub mod report;
pub mod runner;
pub mod spec;
pub mod substrate;

pub use golden::GoldenOutcome;
pub use presets::{all_presets, find_preset, run_preset, Preset};
pub use report::Report;
pub use runner::{run_matrix, Profile};
pub use spec::{
    ChurnSpec, DeploymentSpec, ExecSpec, FaultSpec, MetricSuite, ScenarioMatrix, ScenarioSpec,
    TopologySpec,
};
