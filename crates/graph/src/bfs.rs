//! Breadth-first search: hop distances and shortest hop paths.

use crate::view::GraphView;
use crate::UNREACHABLE;
use std::collections::VecDeque;

/// Hop distance from `src` to every node (`UNREACHABLE` when disconnected).
pub fn distances<G: GraphView + ?Sized>(g: &G, src: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Hop distance from `src` to `dst` only (early exit), or `None`.
pub fn distance_to<G: GraphView + ?Sized>(g: &G, src: u32, dst: u32) -> Option<u32> {
    if src == dst {
        return Some(0);
    }
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                if v == dst {
                    return Some(du + 1);
                }
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    None
}

/// Shortest hop path `src → dst` inclusive, or `None` when disconnected.
pub fn path<G: GraphView + ?Sized>(g: &G, src: u32, dst: u32) -> Option<Vec<u32>> {
    if src == dst {
        return Some(vec![src]);
    }
    let mut parent = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    parent[src as usize] = src;
    queue.push_back(src);
    'outer: while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if parent[v as usize] == UNREACHABLE {
                parent[v as usize] = u;
                if v == dst {
                    break 'outer;
                }
                queue.push_back(v);
            }
        }
    }
    if parent[dst as usize] == UNREACHABLE {
        return None;
    }
    let mut p = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        p.push(cur);
    }
    p.reverse();
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::csr::Csr;

    fn cycle(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for i in 0..n as u32 {
            el.add(i, ((i + 1) as usize % n) as u32);
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn distances_on_cycle() {
        let g = cycle(6);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_nodes() {
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        let g = Csr::from_edge_list(el);
        let d = distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(distance_to(&g, 0, 3), None);
        assert_eq!(path(&g, 0, 3), None);
    }

    #[test]
    fn distance_to_matches_full_bfs() {
        let g = cycle(9);
        let d = distances(&g, 2);
        for v in 0..9u32 {
            assert_eq!(distance_to(&g, 2, v), Some(d[v as usize]));
        }
    }

    #[test]
    fn path_is_shortest_and_valid() {
        let g = cycle(8);
        let p = path(&g, 0, 3).unwrap();
        assert_eq!(p.len() as u32 - 1, distance_to(&g, 0, 3).unwrap());
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 3);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "invalid step {w:?}");
        }
    }

    #[test]
    fn trivial_source_equals_target() {
        let g = cycle(4);
        assert_eq!(distance_to(&g, 1, 1), Some(0));
        assert_eq!(path(&g, 1, 1), Some(vec![1]));
    }
}
