//! Connected components.

use crate::unionfind::UnionFind;
use crate::view::GraphView;

/// Component labelling of every node. Labels are arbitrary but stable for a
/// given graph; `count` is the number of components (isolated nodes count).
#[derive(Clone, Debug)]
pub struct Components {
    pub label: Vec<u32>,
    pub count: usize,
}

impl Components {
    /// Ids of nodes in the largest component (ties broken toward the
    /// smallest root id). Empty for the empty graph.
    pub fn largest(&self) -> Vec<u32> {
        if self.label.is_empty() {
            return Vec::new();
        }
        let mut sizes = std::collections::HashMap::new();
        for &l in &self.label {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let best = sizes
            .iter()
            .max_by_key(|&(l, s)| (*s, std::cmp::Reverse(*l)))
            .map(|(&l, _)| l)
            .unwrap();
        (0..self.label.len() as u32)
            .filter(|&u| self.label[u as usize] == best)
            .collect()
    }

    /// Membership mask of the largest component.
    pub fn largest_mask(&self) -> Vec<bool> {
        let ids = self.largest();
        let mut mask = vec![false; self.label.len()];
        for u in ids {
            mask[u as usize] = true;
        }
        mask
    }

    #[inline]
    pub fn same(&self, u: u32, v: u32) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }
}

/// Compute components via union–find (O(m α(n))).
pub fn connected_components<G: GraphView + ?Sized>(g: &G) -> Components {
    let mut uf = UnionFind::new(g.n());
    for u in 0..g.n() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                uf.union(u, v);
            }
        }
    }
    let label: Vec<u32> = (0..g.n() as u32).map(|u| uf.find(u)).collect();
    Components {
        count: uf.component_count(),
        label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::builder::EdgeList;
    use crate::csr::Csr;

    fn two_cliques() -> Csr {
        // {0,1,2} triangle, {3,4} edge, 5 isolated.
        let mut el = EdgeList::new(6);
        el.add(0, 1);
        el.add(1, 2);
        el.add(0, 2);
        el.add(3, 4);
        Csr::from_edge_list(el)
    }

    #[test]
    fn counts_components_including_isolated() {
        let c = connected_components(&two_cliques());
        assert_eq!(c.count, 3);
        assert!(c.same(0, 2));
        assert!(c.same(3, 4));
        assert!(!c.same(0, 3));
        assert!(!c.same(5, 0));
    }

    #[test]
    fn largest_component_is_the_triangle() {
        let c = connected_components(&two_cliques());
        assert_eq!(c.largest(), vec![0, 1, 2]);
        let mask = c.largest_mask();
        assert_eq!(mask, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn labels_agree_with_bfs_reachability() {
        let g = two_cliques();
        let c = connected_components(&g);
        for u in 0..g.n() as u32 {
            let d = bfs::distances(&g, u);
            for v in 0..g.n() as u32 {
                assert_eq!(c.same(u, v), d[v as usize] != crate::UNREACHABLE);
            }
        }
    }

    #[test]
    fn empty_graph_edge_cases() {
        let c = connected_components(&Csr::empty(0));
        assert_eq!(c.count, 0);
        assert!(c.largest().is_empty());
        let c1 = connected_components(&Csr::empty(4));
        assert_eq!(c1.count, 4);
        assert_eq!(c1.largest().len(), 1); // any singleton
    }
}
