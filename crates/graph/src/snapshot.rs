//! Epoch-versioned snapshot publication (RCU-style) for the serve path.
//!
//! The always-on topology service repairs the graph once per churn epoch
//! and must keep *reads* running while the splice is in flight. The classic
//! answer is read-copy-update: the writer builds the next epoch's snapshot
//! off to the side and publishes it by swapping a pointer; readers *pin* an
//! epoch guard and keep reading the version they pinned, untouched, until
//! they drop the guard. A superseded snapshot retires (its storage is
//! freed) exactly when the last guard on it drops.
//!
//! This module is deliberately generic over the snapshot payload `T` so the
//! accounting invariants can be property-tested on tiny payloads while the
//! serve loop publishes full `ChunkedCsr` + alive-state captures:
//!
//! * [`EpochPublisher`] — the single writer. [`EpochPublisher::publish`]
//!   installs a new `(epoch, T)` pair; epochs must be strictly increasing.
//! * [`EpochHandle`] — a cloneable read-side handle. [`EpochHandle::pin`]
//!   returns a guard on the latest published snapshot without blocking;
//!   [`EpochHandle::wait_for`] parks until a target epoch (or later) is
//!   published, which the serve loop uses as its epoch barrier.
//! * [`EpochGuard`] — derefs to `T`. While any guard on an epoch is alive,
//!   that epoch's payload is immutable and will not be freed.
//!
//! Accounting is exposed through [`SnapshotStats`]: `published` counts
//! `publish` calls, `retired` counts payloads actually dropped, and
//! `live_pins` counts outstanding guards. The structural invariants —
//! checked by the property tests in `tests/serve_concurrency.rs` — are
//!
//! * `retired <= published` always (nothing retires twice, nothing retires
//!   before it was published);
//! * while the publisher is alive, the current snapshot is not retired, so
//!   `published - retired >= 1` after the first publish;
//! * at full quiescence (publisher dropped, all guards dropped)
//!   `retired == published`: no snapshot leaks.

use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Publish/retire/pin counters shared by one publisher and its handles.
#[derive(Debug, Default)]
struct Counters {
    published: AtomicU64,
    retired: AtomicU64,
    pins: AtomicU64,
}

/// A point-in-time view of the snapshot accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Number of successful [`EpochPublisher::publish`] calls.
    pub published: u64,
    /// Number of snapshot payloads whose storage has been freed.
    pub retired: u64,
    /// Number of [`EpochGuard`]s currently alive.
    pub live_pins: u64,
}

impl SnapshotStats {
    /// Snapshots still resident in memory (current + pinned history).
    pub fn live_snapshots(&self) -> u64 {
        self.published - self.retired
    }
}

/// One published snapshot: the payload plus retire bookkeeping.
///
/// The `Drop` impl is the retirement event: it fires when the last `Arc`
/// (publisher's current slot or a reader guard) goes away.
struct Slot<T> {
    epoch: u64,
    value: T,
    counters: Arc<Counters>,
}

impl<T> Drop for Slot<T> {
    fn drop(&mut self) {
        self.counters.retired.fetch_add(1, Ordering::SeqCst);
    }
}

struct State<T> {
    current: Option<Arc<Slot<T>>>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    counters: Arc<Counters>,
}

/// Write side of the epoch-snapshot structure. Dropping the publisher
/// closes the channel: waiting readers wake with `None` and the final
/// snapshot retires once its last guard drops.
pub struct EpochPublisher<T> {
    shared: Arc<Shared<T>>,
}

/// Cloneable read side; see module docs.
pub struct EpochHandle<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for EpochHandle<T> {
    fn clone(&self) -> Self {
        EpochHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A pinned snapshot. Derefs to the payload; the payload outlives the
/// guard's lifetime no matter how many newer epochs are published.
pub struct EpochGuard<T> {
    slot: Arc<Slot<T>>,
}

impl<T> EpochPublisher<T> {
    /// Create a publisher with nothing published yet.
    pub fn new() -> Self {
        EpochPublisher {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    current: None,
                    closed: false,
                }),
                cond: Condvar::new(),
                counters: Arc::new(Counters::default()),
            }),
        }
    }

    /// A new read-side handle on this publisher.
    pub fn handle(&self) -> EpochHandle<T> {
        EpochHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Install `(epoch, value)` as the current snapshot and wake every
    /// reader parked in [`EpochHandle::wait_for`]. The superseded snapshot
    /// retires as soon as its last guard drops (immediately, if none).
    ///
    /// # Panics
    /// If `epoch` is not strictly greater than the last published epoch —
    /// the serve loop's monotone-epoch contract.
    pub fn publish(&self, epoch: u64, value: T) {
        let slot = Arc::new(Slot {
            epoch,
            value,
            counters: Arc::clone(&self.shared.counters),
        });
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cur) = &st.current {
            assert!(
                epoch > cur.epoch,
                "epoch snapshots must be published in strictly increasing \
                 order (got {epoch} after {})",
                cur.epoch
            );
        }
        self.shared
            .counters
            .published
            .fetch_add(1, Ordering::SeqCst);
        st.current = Some(slot);
        drop(st);
        self.shared.cond.notify_all();
    }

    /// Current accounting; see [`SnapshotStats`].
    pub fn stats(&self) -> SnapshotStats {
        stats_of(&self.shared.counters)
    }
}

impl<T> Default for EpochPublisher<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for EpochPublisher<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        // Release the publisher's reference to the final snapshot so it can
        // retire; readers holding guards keep it alive until they finish.
        st.current = None;
        drop(st);
        self.shared.cond.notify_all();
    }
}

impl<T> EpochHandle<T> {
    /// Pin the latest published snapshot without blocking. `None` when
    /// nothing has been published yet or the publisher has shut down.
    pub fn pin(&self) -> Option<EpochGuard<T>> {
        let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.current.as_ref().map(|slot| self.guard(Arc::clone(slot)))
    }

    /// Block until a snapshot with epoch `>= epoch` is published, then pin
    /// it. Returns `None` if the publisher shuts down first.
    pub fn wait_for(&self, epoch: u64) -> Option<EpochGuard<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &st.current {
                Some(slot) if slot.epoch >= epoch => {
                    let slot = Arc::clone(slot);
                    return Some(self.guard(slot));
                }
                _ if st.closed => return None,
                _ => st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    /// Epoch of the current snapshot, if any.
    pub fn latest_epoch(&self) -> Option<u64> {
        let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.current.as_ref().map(|slot| slot.epoch)
    }

    /// Current accounting; see [`SnapshotStats`].
    pub fn stats(&self) -> SnapshotStats {
        stats_of(&self.shared.counters)
    }

    fn guard(&self, slot: Arc<Slot<T>>) -> EpochGuard<T> {
        self.shared.counters.pins.fetch_add(1, Ordering::SeqCst);
        EpochGuard { slot }
    }
}

impl<T> EpochGuard<T> {
    /// The epoch this guard pinned.
    pub fn epoch(&self) -> u64 {
        self.slot.epoch
    }
}

impl<T> Deref for EpochGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.slot.value
    }
}

impl<T> Drop for EpochGuard<T> {
    fn drop(&mut self) {
        self.slot.counters.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

fn stats_of(counters: &Counters) -> SnapshotStats {
    SnapshotStats {
        published: counters.published.load(Ordering::SeqCst),
        retired: counters.retired.load(Ordering::SeqCst),
        live_pins: counters.pins.load(Ordering::SeqCst),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_before_publish_is_none() {
        let pb: EpochPublisher<u32> = EpochPublisher::new();
        let h = pb.handle();
        assert!(h.pin().is_none());
        assert_eq!(h.latest_epoch(), None);
        assert_eq!(
            pb.stats(),
            SnapshotStats {
                published: 0,
                retired: 0,
                live_pins: 0
            }
        );
    }

    #[test]
    fn guard_keeps_superseded_snapshot_alive() {
        let pb = EpochPublisher::new();
        let h = pb.handle();
        pb.publish(1, "one".to_string());
        let g1 = h.pin().unwrap();
        assert_eq!(g1.epoch(), 1);
        assert_eq!(&*g1, "one");

        pb.publish(2, "two".to_string());
        // g1 still reads epoch 1, byte-for-byte.
        assert_eq!(&*g1, "one");
        let s = pb.stats();
        assert_eq!(s.published, 2);
        assert_eq!(s.retired, 0, "pinned epoch 1 must not retire");
        assert_eq!(s.live_pins, 1);

        drop(g1);
        let s = pb.stats();
        assert_eq!(s.retired, 1, "epoch 1 retires once its last guard drops");
        assert_eq!(s.live_pins, 0);
        assert_eq!(h.pin().unwrap().epoch(), 2);
    }

    #[test]
    fn unpinned_snapshot_retires_on_publish() {
        let pb = EpochPublisher::new();
        pb.publish(1, vec![1u8; 16]);
        pb.publish(2, vec![2u8; 16]);
        let s = pb.stats();
        assert_eq!((s.published, s.retired), (2, 1));
    }

    #[test]
    fn quiescence_retires_everything() {
        let pb = EpochPublisher::new();
        let h = pb.handle();
        for e in 1..=5u64 {
            pb.publish(e, e);
        }
        let g = h.pin().unwrap();
        drop(pb); // close: current slot released
        assert_eq!(g.epoch(), 5);
        assert_eq!(*g, 5);
        drop(g);
        let s = h.stats();
        assert_eq!(s.published, 5);
        assert_eq!(s.retired, 5, "no snapshot may leak at quiescence");
        assert_eq!(s.live_pins, 0);
    }

    #[test]
    fn wait_for_blocks_until_epoch_arrives() {
        let pb = EpochPublisher::new();
        let h = pb.handle();
        pb.publish(1, 10u32);
        let waiter = std::thread::spawn({
            let h = h.clone();
            move || h.wait_for(3).map(|g| (g.epoch(), *g))
        });
        pb.publish(2, 20);
        pb.publish(3, 30);
        assert_eq!(waiter.join().unwrap(), Some((3, 30)));
    }

    #[test]
    fn wait_for_returns_none_on_shutdown() {
        let pb: EpochPublisher<u32> = EpochPublisher::new();
        let h = pb.handle();
        let waiter = std::thread::spawn(move || h.wait_for(1).is_none());
        drop(pb);
        assert!(waiter.join().unwrap());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_publish_panics() {
        let pb = EpochPublisher::new();
        pb.publish(2, ());
        pb.publish(2, ());
    }

    #[test]
    fn concurrent_pin_publish_sees_whole_snapshots() {
        // Readers hammering pin() while the writer publishes must only ever
        // observe internally consistent (epoch, payload) pairs.
        let pb = EpochPublisher::new();
        pb.publish(1, (1u64, 1u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = pb.handle();
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        if let Some(g) = h.pin() {
                            let (a, b) = *g;
                            assert_eq!(a, b, "torn snapshot: {a} != {b}");
                            assert_eq!(a, g.epoch());
                        }
                    }
                })
            })
            .collect();
        for e in 2..=50u64 {
            pb.publish(e, (e, e));
        }
        for t in handles {
            t.join().unwrap();
        }
        let s = pb.stats();
        assert_eq!(s.published, 50);
        assert_eq!(s.live_pins, 0);
        assert_eq!(s.retired, 49, "only the current snapshot stays live");
    }
}
