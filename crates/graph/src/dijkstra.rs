//! Weighted shortest paths.
//!
//! Edge weights come from a caller-supplied function — the stretch and
//! power-efficiency experiments use Euclidean length `d(u, v)` and its powers
//! `d(u, v)^β` (the paper's power model, after Li–Wan–Wang), so weights are
//! never materialised.

use crate::view::GraphView;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wsn_geom::OrdF64;

/// Weighted distance from `src` to all nodes (`f64::INFINITY` when
/// unreachable). `weight(u, v)` must be ≥ 0 and symmetric.
pub fn distances<G, W>(g: &G, src: u32, weight: W) -> Vec<f64>
where
    G: GraphView + ?Sized,
    W: Fn(u32, u32) -> f64,
{
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for &v in g.neighbors(u) {
            let w = weight(u, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    dist
}

/// Weighted distance `src → dst` with early exit, or `None`.
pub fn distance_to<G, W>(g: &G, src: u32, dst: u32, weight: W) -> Option<f64>
where
    G: GraphView + ?Sized,
    W: Fn(u32, u32) -> f64,
{
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if u == dst {
            return Some(d);
        }
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + weight(u, v);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    None
}

/// Weighted shortest path `src → dst` inclusive, or `None`.
pub fn path<G, W>(g: &G, src: u32, dst: u32, weight: W) -> Option<Vec<u32>>
where
    G: GraphView + ?Sized,
    W: Fn(u32, u32) -> f64,
{
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut parent = vec![u32::MAX; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    parent[src as usize] = src;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if u == dst {
            break;
        }
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + weight(u, v);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    if parent[dst as usize] == u32::MAX {
        return None;
    }
    let mut p = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        p.push(cur);
    }
    p.reverse();
    Some(p)
}

/// Widest (bottleneck) path `src → dst` inclusive, or `None`: maximises
/// the minimum `node_width` over every node of the path (src and dst
/// included). The battery-aware lifetime routing uses node residual charge
/// as the width, so traffic steers around nearly-depleted relays.
///
/// Deterministic: the max-heap order and the strict-improvement rule make
/// the chosen path a pure function of the graph and the width values.
pub fn widest_path<G, W>(g: &G, src: u32, dst: u32, node_width: W) -> Option<Vec<u32>>
where
    G: GraphView + ?Sized,
    W: Fn(u32) -> f64,
{
    let mut best = vec![f64::NEG_INFINITY; g.n()];
    let mut parent = vec![u32::MAX; g.n()];
    let mut heap: BinaryHeap<(OrdF64, Reverse<u32>)> = BinaryHeap::new();
    best[src as usize] = node_width(src);
    parent[src as usize] = src;
    heap.push((OrdF64(best[src as usize]), Reverse(src)));
    while let Some((OrdF64(b), Reverse(u))) = heap.pop() {
        if u == dst {
            break;
        }
        if b < best[u as usize] {
            continue; // stale entry
        }
        for &v in g.neighbors(u) {
            let nb = b.min(node_width(v));
            if nb > best[v as usize] {
                best[v as usize] = nb;
                parent[v as usize] = u;
                heap.push((OrdF64(nb), Reverse(v)));
            }
        }
    }
    if parent[dst as usize] == u32::MAX {
        return None;
    }
    let mut p = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        p.push(cur);
    }
    p.reverse();
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::csr::Csr;
    use crate::{bfs, UNREACHABLE};

    /// Weighted grid-ish test graph:
    ///
    /// 0 --1.0-- 1 --1.0-- 2
    ///  \                 /
    ///   ----- 2.5 ------
    fn triangle() -> Csr {
        let mut el = EdgeList::new(3);
        el.add(0, 1);
        el.add(1, 2);
        el.add(0, 2);
        Csr::from_edge_list(el)
    }

    fn tri_weight(u: u32, v: u32) -> f64 {
        match (u.min(v), u.max(v)) {
            (0, 1) | (1, 2) => 1.0,
            (0, 2) => 2.5,
            _ => unreachable!(),
        }
    }

    #[test]
    fn prefers_lighter_two_hop_route() {
        let g = triangle();
        let d = distances(&g, 0, tri_weight);
        assert_eq!(d[2], 2.0);
        assert_eq!(distance_to(&g, 0, 2, tri_weight), Some(2.0));
        assert_eq!(path(&g, 0, 2, tri_weight), Some(vec![0, 1, 2]));
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        // Random-ish sparse graph.
        let mut el = EdgeList::new(12);
        for i in 0..11u32 {
            el.add(i, i + 1);
        }
        el.add(0, 6);
        el.add(3, 9);
        let g = Csr::from_edge_list(el);
        let dw = distances(&g, 0, |_, _| 1.0);
        let db = bfs::distances(&g, 0);
        for v in 0..12 {
            if db[v] == UNREACHABLE {
                assert!(dw[v].is_infinite());
            } else {
                assert_eq!(dw[v] as u32, db[v]);
            }
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        let g = Csr::from_edge_list(el);
        assert_eq!(distance_to(&g, 0, 3, |_, _| 1.0), None);
        assert_eq!(path(&g, 0, 3, |_, _| 1.0), None);
        let d = distances(&g, 0, |_, _| 1.0);
        assert!(d[3].is_infinite());
    }

    #[test]
    fn widest_path_avoids_the_narrow_relay() {
        // 0—1—3 and 0—2—3: relay 1 is nearly depleted, relay 2 is full.
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        el.add(1, 3);
        el.add(0, 2);
        el.add(2, 3);
        let g = Csr::from_edge_list(el);
        let width = |u: u32| [100.0, 1.0, 80.0, 100.0][u as usize];
        assert_eq!(widest_path(&g, 0, 3, width), Some(vec![0, 2, 3]));
        // With both relays equal, the tie breaks to the smaller id.
        let flat = |_: u32| 5.0;
        assert_eq!(widest_path(&g, 0, 3, flat), Some(vec![0, 1, 3]));
        // Unreachable is None.
        let mut el2 = EdgeList::new(3);
        el2.add(0, 1);
        let g2 = Csr::from_edge_list(el2);
        assert_eq!(widest_path(&g2, 0, 2, flat), None);
    }

    #[test]
    fn path_weights_sum_to_distance() {
        let g = triangle();
        let p = path(&g, 0, 2, tri_weight).unwrap();
        let total: f64 = p.windows(2).map(|w| tri_weight(w[0], w[1])).sum();
        assert_eq!(Some(total), distance_to(&g, 0, 2, tri_weight));
    }
}
