//! Weighted shortest paths.
//!
//! Edge weights come from a caller-supplied function — the stretch and
//! power-efficiency experiments use Euclidean length `d(u, v)` and its powers
//! `d(u, v)^β` (the paper's power model, after Li–Wan–Wang), so weights are
//! never materialised.

use crate::csr::Csr;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wsn_geom::OrdF64;

/// Weighted distance from `src` to all nodes (`f64::INFINITY` when
/// unreachable). `weight(u, v)` must be ≥ 0 and symmetric.
pub fn distances<W: Fn(u32, u32) -> f64>(g: &Csr, src: u32, weight: W) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for &v in g.neighbors(u) {
            let w = weight(u, v);
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    dist
}

/// Weighted distance `src → dst` with early exit, or `None`.
pub fn distance_to<W: Fn(u32, u32) -> f64>(g: &Csr, src: u32, dst: u32, weight: W) -> Option<f64> {
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if u == dst {
            return Some(d);
        }
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + weight(u, v);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    None
}

/// Weighted shortest path `src → dst` inclusive, or `None`.
pub fn path<W: Fn(u32, u32) -> f64>(g: &Csr, src: u32, dst: u32, weight: W) -> Option<Vec<u32>> {
    let mut dist = vec![f64::INFINITY; g.n()];
    let mut parent = vec![u32::MAX; g.n()];
    let mut heap: BinaryHeap<Reverse<(OrdF64, u32)>> = BinaryHeap::new();
    dist[src as usize] = 0.0;
    parent[src as usize] = src;
    heap.push(Reverse((OrdF64(0.0), src)));
    while let Some(Reverse((OrdF64(d), u))) = heap.pop() {
        if u == dst {
            break;
        }
        if d > dist[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            let nd = d + weight(u, v);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                parent[v as usize] = u;
                heap.push(Reverse((OrdF64(nd), v)));
            }
        }
    }
    if parent[dst as usize] == u32::MAX {
        return None;
    }
    let mut p = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parent[cur as usize];
        p.push(cur);
    }
    p.reverse();
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;
    use crate::{bfs, UNREACHABLE};

    /// Weighted grid-ish test graph:
    ///
    /// 0 --1.0-- 1 --1.0-- 2
    ///  \                 /
    ///   ----- 2.5 ------
    fn triangle() -> Csr {
        let mut el = EdgeList::new(3);
        el.add(0, 1);
        el.add(1, 2);
        el.add(0, 2);
        Csr::from_edge_list(el)
    }

    fn tri_weight(u: u32, v: u32) -> f64 {
        match (u.min(v), u.max(v)) {
            (0, 1) | (1, 2) => 1.0,
            (0, 2) => 2.5,
            _ => unreachable!(),
        }
    }

    #[test]
    fn prefers_lighter_two_hop_route() {
        let g = triangle();
        let d = distances(&g, 0, tri_weight);
        assert_eq!(d[2], 2.0);
        assert_eq!(distance_to(&g, 0, 2, tri_weight), Some(2.0));
        assert_eq!(path(&g, 0, 2, tri_weight), Some(vec![0, 1, 2]));
    }

    #[test]
    fn unit_weights_reduce_to_bfs() {
        // Random-ish sparse graph.
        let mut el = EdgeList::new(12);
        for i in 0..11u32 {
            el.add(i, i + 1);
        }
        el.add(0, 6);
        el.add(3, 9);
        let g = Csr::from_edge_list(el);
        let dw = distances(&g, 0, |_, _| 1.0);
        let db = bfs::distances(&g, 0);
        for v in 0..12 {
            if db[v] == UNREACHABLE {
                assert!(dw[v].is_infinite());
            } else {
                assert_eq!(dw[v] as u32, db[v]);
            }
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        let g = Csr::from_edge_list(el);
        assert_eq!(distance_to(&g, 0, 3, |_, _| 1.0), None);
        assert_eq!(path(&g, 0, 3, |_, _| 1.0), None);
        let d = distances(&g, 0, |_, _| 1.0);
        assert!(d[3].is_infinite());
    }

    #[test]
    fn path_weights_sum_to_distance() {
        let g = triangle();
        let p = path(&g, 0, 2, tri_weight).unwrap();
        let total: f64 = p.windows(2).map(|w| tri_weight(w[0], w[1])).sum();
        assert_eq!(Some(total), distance_to(&g, 0, 2, tri_weight));
    }
}
