//! Chunked CSR: per-shard adjacency sub-arrays with slack, spliced in
//! place.
//!
//! The monolithic [`Csr`] packs every neighbour list into one flat arena,
//! so replacing *one* shard's edges means rebuilding the whole structure —
//! O(n + m) per churned epoch no matter how local the churn was. That
//! rebuild is exactly the splice floor the lifetime bench's locality sweep
//! hits once repair *derivation* became locality-proportional.
//!
//! [`ChunkedCsr`] removes the floor. Nodes are grouped by **chunk** (the
//! caller's repair shard): each chunk owns a contiguous region of the
//! arena holding its nodes' neighbour lists back to back, padded with
//! slack so a chunk's edge count can drift without moving its neighbours.
//! [`ChunkedCsr::splice`] takes the churned shards' old and new edge
//! emissions as a delta, cancels the unchanged majority, and rewrites only
//! the chunks whose adjacency actually changed — O(dirty emissions), not
//! O(m).
//!
//! Two representation details make the splice exact for every topology:
//!
//! * **Emission multiplicities.** The k-NN and Yao builders emit one
//!   canonical edge from *both* endpoints, possibly from different shards.
//!   Each arena entry therefore carries the count of emissions backing it:
//!   a dirty shard withdrawing its emission of `(u, v)` decrements the
//!   count, and the edge survives while a clean shard still backs it. The
//!   deduplicating global sort of `ShardedEdgeStore::to_csr` becomes a
//!   per-chunk counting merge.
//! * **Delta addressing by endpoint, not by emitter.** A dirty shard's
//!   re-derivation can change lists of nodes owned by *clean* shards (the
//!   far endpoint of a cross-shard edge). The delta is expanded into
//!   directed half-edges and routed to each endpoint's chunk, so exactly
//!   the affected chunks rewrite — whether or not churn marked them dirty.
//!
//! ## Slack policy
//!
//! Regions are sized in [`SLACK_PAGE`]-entry pages: a chunk of `len` live
//! entries gets `len + max(len/8, SLACK_PAGE)` rounded up to a page
//! multiple. A splice that outgrows its region relocates the chunk to the
//! arena tail with fresh slack (the old region becomes dead space); when
//! dead space exceeds half the arena, one O(arena) compaction rebuilds it
//! densely. Both paths are semantically invisible — equality and
//! fingerprints read per-node neighbour slices, never the layout.

use crate::csr::Csr;

/// Arena slack granularity, in half-edge entries.
pub const SLACK_PAGE: u32 = 64;

/// Region capacity for a chunk holding `len` live entries: at least one
/// slack page, proportionally more for large chunks, page-aligned.
#[inline]
fn cap_for(len: u32) -> u32 {
    let slack = (len / 8).max(SLACK_PAGE);
    (len + slack).next_multiple_of(SLACK_PAGE)
}

/// What one [`ChunkedCsr::splice`] call did (all costs O(dirty)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpliceStats {
    /// Chunks whose region was rewritten (0 when the delta cancelled).
    pub chunks_touched: usize,
    /// Chunks that outgrew their slack and moved to the arena tail.
    pub relocations: usize,
    /// Whole-arena compactions (0 or 1 per splice).
    pub compactions: usize,
    /// Coalesced non-zero half-edge delta entries applied.
    pub delta_halfedges: usize,
}

/// One chunk's merged region, computed read-only by `merge_chunk` (possibly
/// on a worker thread) and written back serially by `apply_chunk`.
struct ChunkRewrite {
    chunk: usize,
    targets: Vec<u32>,
    mult: Vec<u8>,
    /// `(node, offset-into-targets)` in chunk node order.
    node_starts: Vec<(u32, u32)>,
}

/// An undirected graph in chunked CSR form: per-node sorted neighbour
/// slices, grouped into per-chunk arena regions with slack so
/// [`Self::splice`] can rewrite one chunk without touching the rest.
///
/// Equality (against itself or a dense [`Csr`]) and
/// [`crate::fingerprint`] are *semantic*: two layouts that differ only in
/// slack or relocation history compare equal.
#[derive(Clone, Debug)]
pub struct ChunkedCsr {
    /// Node → owning chunk.
    chunk_of: Vec<u32>,
    /// Chunk → its nodes, ascending (CSR layout over chunks).
    chunk_nodes_off: Vec<u32>,
    chunk_nodes: Vec<u32>,
    /// Per-node slice into the arena.
    start: Vec<u32>,
    deg: Vec<u32>,
    /// Per-chunk arena region.
    region_start: Vec<u32>,
    region_cap: Vec<u32>,
    region_len: Vec<u32>,
    /// The arena: neighbour ids plus per-entry emission multiplicities.
    targets: Vec<u32>,
    mult: Vec<u8>,
    /// Entries abandoned by relocations (reclaimed by compaction).
    dead: usize,
    /// Live half-edge entries (sum of degrees) — `m` is half of this.
    live: usize,
}

impl ChunkedCsr {
    /// Build from canonical `(min, max)` edge emissions; `chunk_of[u]` is
    /// node `u`'s owning chunk. An edge emitted from both endpoints (k-NN,
    /// Yao) may appear twice — multiplicities absorb the duplicate.
    pub fn build(
        n_chunks: usize,
        chunk_of: &[u32],
        emissions: impl Iterator<Item = (u32, u32)>,
    ) -> Self {
        let n = chunk_of.len();
        assert!(n_chunks >= 1, "need at least one chunk");
        assert!(
            chunk_of.iter().all(|&c| (c as usize) < n_chunks),
            "chunk id out of range"
        );

        // Chunk membership lists (counting sort keeps ids ascending).
        let mut chunk_nodes_off = vec![0u32; n_chunks + 1];
        for &c in chunk_of {
            chunk_nodes_off[c as usize + 1] += 1;
        }
        for c in 0..n_chunks {
            chunk_nodes_off[c + 1] += chunk_nodes_off[c];
        }
        let mut cursor: Vec<u32> = chunk_nodes_off[..n_chunks].to_vec();
        let mut chunk_nodes = vec![0u32; n];
        for (u, &c) in chunk_of.iter().enumerate() {
            chunk_nodes[cursor[c as usize] as usize] = u as u32;
            cursor[c as usize] += 1;
        }

        // Expand to directed half-edges, fold duplicates into counts.
        let mut half: Vec<(u32, u32)> = Vec::new();
        for (a, b) in emissions {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "emission out of range"
            );
            assert_ne!(a, b, "self loop");
            half.push((a, b));
            half.push((b, a));
        }
        half.sort_unstable();
        let mut e_off = vec![0usize; n + 1];
        let mut e_v: Vec<u32> = Vec::with_capacity(half.len());
        let mut e_mult: Vec<u8> = Vec::with_capacity(half.len());
        let mut i = 0;
        while i < half.len() {
            let (u, v) = half[i];
            let mut c = 1usize;
            while i + c < half.len() && half[i + c] == (u, v) {
                c += 1;
            }
            i += c;
            e_off[u as usize + 1] += 1;
            e_v.push(v);
            e_mult.push(u8::try_from(c).expect("emission multiplicity fits u8"));
        }
        for u in 0..n {
            e_off[u + 1] += e_off[u];
        }

        // Lay the chunks out with slack.
        let mut start = vec![0u32; n];
        let mut deg = vec![0u32; n];
        let mut region_start = vec![0u32; n_chunks];
        let mut region_cap = vec![0u32; n_chunks];
        let mut region_len = vec![0u32; n_chunks];
        let mut targets: Vec<u32> = Vec::new();
        let mut mult: Vec<u8> = Vec::new();
        for c in 0..n_chunks {
            let nodes = &chunk_nodes[chunk_nodes_off[c] as usize..chunk_nodes_off[c + 1] as usize];
            let len: usize = nodes
                .iter()
                .map(|&u| e_off[u as usize + 1] - e_off[u as usize])
                .sum();
            let cap = cap_for(u32::try_from(len).expect("chunk length fits u32")) as usize;
            let base = targets.len();
            region_start[c] = u32::try_from(base).expect("arena offset fits u32");
            region_len[c] = len as u32;
            region_cap[c] = cap as u32;
            targets.resize(base + cap, 0);
            mult.resize(base + cap, 0);
            let mut cur = base;
            for &u in nodes {
                let (a, b) = (e_off[u as usize], e_off[u as usize + 1]);
                start[u as usize] = cur as u32;
                deg[u as usize] = (b - a) as u32;
                targets[cur..cur + (b - a)].copy_from_slice(&e_v[a..b]);
                mult[cur..cur + (b - a)].copy_from_slice(&e_mult[a..b]);
                cur += b - a;
            }
        }

        ChunkedCsr {
            chunk_of: chunk_of.to_vec(),
            chunk_nodes_off,
            chunk_nodes,
            start,
            deg,
            region_start,
            region_cap,
            region_len,
            targets,
            mult,
            dead: 0,
            live: e_v.len(),
        }
    }

    /// An edgeless graph on `n` nodes in a single chunk.
    pub fn empty(n: usize) -> Self {
        Self::build(1, &vec![0u32; n], std::iter::empty())
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.chunk_of.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.live / 2
    }

    /// Number of chunks.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.region_start.len()
    }

    /// Neighbours of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let s = self.start[u as usize] as usize;
        &self.targets[s..s + self.deg[u as usize] as usize]
    }

    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.deg[u as usize] as usize
    }

    /// Membership test via binary search (neighbour lists are sorted).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Arena entries abandoned by relocations (observable so tests can pin
    /// the slack/compaction policy).
    #[inline]
    pub fn dead_entries(&self) -> usize {
        self.dead
    }

    /// Total arena entries (live + slack + dead).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.targets.len()
    }

    /// Apply a churn delta: `removed` are the old edge emissions of every
    /// repaired shard (snapshotted before repair), `added` their new ones.
    /// Emissions the repair kept appear in both and cancel; only chunks
    /// with a surviving net change rewrite. Cost is O(delta), not O(m).
    ///
    /// Panics if the delta is inconsistent with the current structure
    /// (removing an emission that was never spliced in) — that means the
    /// caller's per-shard caches diverged from the CSR.
    pub fn splice(&mut self, removed: &[(u32, u32)], added: &[(u32, u32)]) -> SpliceStats {
        // Pre-cancel identical emissions across the two lists as packed
        // u64 keys: a repaired shard re-emits the overwhelming share of
        // its snapshot verbatim, so dropping the matches *before*
        // half-edge expansion keeps the tuple sort below proportional to
        // the true delta, not the dirty shards' whole emission volume.
        let pack = |(a, b): (u32, u32)| ((a as u64) << 32) | b as u64;
        let mut rem: Vec<u64> = removed.iter().map(|&e| pack(e)).collect();
        let mut add: Vec<u64> = added.iter().map(|&e| pack(e)).collect();
        rem.sort_unstable();
        add.sort_unstable();
        // Merge the sorted key streams into net per-emission counts,
        // routing each surviving emission's two half-edges to the
        // endpoints' chunks.
        let mut delta: Vec<(u32, u32, u32, i32)> = Vec::new();
        let (mut ri, mut ai) = (0usize, 0usize);
        while ri < rem.len() || ai < add.len() {
            let key = match (rem.get(ri), add.get(ai)) {
                (Some(&r), Some(&a)) => r.min(a),
                (Some(&r), None) => r,
                (None, Some(&a)) => a,
                (None, None) => unreachable!(),
            };
            let mut net = 0i32;
            while ri < rem.len() && rem[ri] == key {
                net -= 1;
                ri += 1;
            }
            while ai < add.len() && add[ai] == key {
                net += 1;
                ai += 1;
            }
            if net != 0 {
                let (a, b) = ((key >> 32) as u32, key as u32);
                delta.push((self.chunk_of[a as usize], a, b, net));
                delta.push((self.chunk_of[b as usize], b, a, net));
            }
        }
        delta.sort_unstable_by_key(|&(c, u, v, _)| (c, u, v));
        // Half-edges of distinct emissions (u, v) and (v, u) land on the
        // same slot — coalesce them too.
        let mut co: Vec<(u32, u32, u32, i32)> = Vec::with_capacity(delta.len());
        for &(c, u, v, d) in &delta {
            match co.last_mut() {
                Some(last) if last.0 == c && last.1 == u && last.2 == v => last.3 += d,
                _ => co.push((c, u, v, d)),
            }
        }
        co.retain(|e| e.3 != 0);
        let mut stats = SpliceStats {
            delta_halfedges: co.len(),
            ..SpliceStats::default()
        };
        if co.is_empty() {
            return stats;
        }

        // Per-chunk delta runs.
        let mut runs: Vec<&[(u32, u32, u32, i32)]> = Vec::new();
        let mut i = 0usize;
        while i < co.len() {
            let chunk = co[i].0;
            let mut j = i;
            while j < co.len() && co[j].0 == chunk {
                j += 1;
            }
            runs.push(&co[i..j]);
            i = j;
        }
        stats.chunks_touched = runs.len();

        // Merge pass: the two-pointer list merges (the compute) read only
        // shared state, so the touched chunks fan out over the worker pool;
        // the writes back into the arena — in-place copies, tail
        // relocations, region bookkeeping — happen serially below, in chunk
        // order, so relocation layout stays deterministic.
        let rewrites: Vec<ChunkRewrite> = {
            use rayon::prelude::*;
            runs.into_par_iter()
                .map(|drun| self.merge_chunk(drun))
                .collect()
        };
        for rw in rewrites {
            self.apply_chunk(rw, &mut stats);
        }

        // Reclaim relocation debris once it dominates the arena; amortised
        // against the relocations that created it.
        if self.dead > self.targets.len() / 2 {
            self.compact_arena();
            stats.compactions = 1;
        }
        stats
    }

    /// Compute one chunk's rewritten region by merging its current lists
    /// with its (node, nbr)-sorted delta run. Read-only — safe to fan out
    /// across touched chunks; [`Self::apply_chunk`] writes the result back.
    fn merge_chunk(&self, delta: &[(u32, u32, u32, i32)]) -> ChunkRewrite {
        let c = delta[0].0 as usize;
        let mut s_targets: Vec<u32> = Vec::new();
        let mut s_mult: Vec<u8> = Vec::new();
        let mut s_node: Vec<(u32, u32)> = Vec::new();
        let mut di = 0usize;
        for idx in self.chunk_nodes_off[c] as usize..self.chunk_nodes_off[c + 1] as usize {
            let u = self.chunk_nodes[idx];
            let s_start = s_targets.len() as u32;
            let old_s = self.start[u as usize] as usize;
            let old_e = old_s + self.deg[u as usize] as usize;
            let d0 = di;
            while di < delta.len() && delta[di].1 == u {
                di += 1;
            }
            let drun = &delta[d0..di];
            if drun.is_empty() {
                s_targets.extend_from_slice(&self.targets[old_s..old_e]);
                s_mult.extend_from_slice(&self.mult[old_s..old_e]);
            } else {
                // Two-pointer merge of the sorted list with the sorted run.
                let (mut a, mut b) = (old_s, 0usize);
                let push_new = |v: u32, d: i32, t: &mut Vec<u32>, m: &mut Vec<u8>| {
                    assert!(d > 0, "splice removes emission ({u}, {v}) not present");
                    t.push(v);
                    m.push(u8::try_from(d).expect("emission multiplicity fits u8"));
                };
                while a < old_e && b < drun.len() {
                    let (va, vb) = (self.targets[a], drun[b].2);
                    match va.cmp(&vb) {
                        std::cmp::Ordering::Less => {
                            s_targets.push(va);
                            s_mult.push(self.mult[a]);
                            a += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            push_new(vb, drun[b].3, &mut s_targets, &mut s_mult);
                            b += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let m = self.mult[a] as i32 + drun[b].3;
                            assert!(m >= 0, "splice multiplicity of ({u}, {va}) went negative");
                            if m > 0 {
                                s_targets.push(va);
                                s_mult
                                    .push(u8::try_from(m).expect("emission multiplicity fits u8"));
                            }
                            a += 1;
                            b += 1;
                        }
                    }
                }
                for a in a..old_e {
                    s_targets.push(self.targets[a]);
                    s_mult.push(self.mult[a]);
                }
                for &(_, _, v, d) in &drun[b..] {
                    push_new(v, d, &mut s_targets, &mut s_mult);
                }
            }
            s_node.push((u, s_start));
        }
        debug_assert_eq!(di, delta.len(), "delta run references a foreign node");
        ChunkRewrite {
            chunk: c,
            targets: s_targets,
            mult: s_mult,
            node_starts: s_node,
        }
    }

    /// Write one merged chunk back into the arena: in place when the slack
    /// absorbs the drift, relocated to the tail otherwise.
    fn apply_chunk(&mut self, rw: ChunkRewrite, stats: &mut SpliceStats) {
        let ChunkRewrite {
            chunk: c,
            targets: s_targets,
            mult: s_mult,
            node_starts: s_node,
        } = rw;
        let new_len = s_targets.len();
        let old_len = self.region_len[c] as usize;
        if new_len <= self.region_cap[c] as usize {
            // Fits in place (slack absorbed the drift).
            let base = self.region_start[c] as usize;
            self.targets[base..base + new_len].copy_from_slice(&s_targets);
            self.mult[base..base + new_len].copy_from_slice(&s_mult);
        } else {
            // Relocate to the arena tail with fresh slack.
            let cap = cap_for(u32::try_from(new_len).expect("chunk length fits u32")) as usize;
            let base = self.targets.len();
            self.targets.extend_from_slice(&s_targets);
            self.mult.extend_from_slice(&s_mult);
            self.targets.resize(base + cap, 0);
            self.mult.resize(base + cap, 0);
            self.dead += self.region_cap[c] as usize;
            self.region_start[c] = u32::try_from(base).expect("arena offset fits u32");
            self.region_cap[c] = cap as u32;
            stats.relocations += 1;
        }
        self.region_len[c] = new_len as u32;
        let base = self.region_start[c];
        for (k, &(u, s_start)) in s_node.iter().enumerate() {
            let end = s_node.get(k + 1).map(|&(_, e)| e).unwrap_or(new_len as u32);
            self.start[u as usize] = base + s_start;
            self.deg[u as usize] = end - s_start;
        }
        self.live = (self.live + new_len) - old_len;
    }

    /// Rebuild the arena densely in chunk order, dropping dead regions and
    /// resetting every chunk's slack to policy.
    fn compact_arena(&mut self) {
        let n_chunks = self.chunk_count();
        let total: usize = self.region_len.iter().map(|&l| cap_for(l) as usize).sum();
        let mut targets: Vec<u32> = Vec::with_capacity(total);
        let mut mult: Vec<u8> = Vec::with_capacity(total);
        for c in 0..n_chunks {
            let len = self.region_len[c] as usize;
            let old_base = self.region_start[c] as usize;
            let new_base = targets.len();
            targets.extend_from_slice(&self.targets[old_base..old_base + len]);
            mult.extend_from_slice(&self.mult[old_base..old_base + len]);
            let cap = cap_for(len as u32) as usize;
            targets.resize(new_base + cap, 0);
            mult.resize(new_base + cap, 0);
            self.region_start[c] = u32::try_from(new_base).expect("arena offset fits u32");
            self.region_cap[c] = cap as u32;
            let mut cur = new_base as u32;
            for idx in self.chunk_nodes_off[c] as usize..self.chunk_nodes_off[c + 1] as usize {
                let u = self.chunk_nodes[idx] as usize;
                self.start[u] = cur;
                cur += self.deg[u];
            }
        }
        self.targets = targets;
        self.mult = mult;
        self.dead = 0;
    }

    /// Copy out as a dense [`Csr`] (layout-normalising; used by the
    /// differential suites to byte-compare against cold builds).
    pub fn to_dense(&self) -> Csr {
        let n = self.n();
        let mut offsets = vec![0u32; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + self.deg[u];
        }
        let mut targets = Vec::with_capacity(self.live);
        for u in 0..n as u32 {
            targets.extend_from_slice(self.neighbors(u));
        }
        Csr::from_sorted_parts(offsets, targets)
    }
}

/// Semantic equality: same node count, same per-node neighbour lists —
/// slack, relocation history and multiplicity layout are invisible.
impl PartialEq for ChunkedCsr {
    fn eq(&self, other: &Self) -> bool {
        self.n() == other.n()
            && self.live == other.live
            && (0..self.n() as u32).all(|u| self.neighbors(u) == other.neighbors(u))
    }
}

impl PartialEq<Csr> for ChunkedCsr {
    fn eq(&self, other: &Csr) -> bool {
        self.n() == other.n()
            && self.m() == other.m()
            && (0..self.n() as u32).all(|u| self.neighbors(u) == other.neighbors(u))
    }
}

impl PartialEq<ChunkedCsr> for Csr {
    fn eq(&self, other: &ChunkedCsr) -> bool {
        other == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    fn dense(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut el = EdgeList::new(n);
        for &(u, v) in edges {
            el.add(u, v);
        }
        Csr::from_edge_list(el)
    }

    /// Structural invariants every mutation must preserve.
    fn check_invariants(g: &ChunkedCsr) {
        let mut live = 0usize;
        for u in 0..g.n() as u32 {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "node {u} list unsorted");
            for &v in ns {
                assert!(g.has_edge(v, u), "asymmetric edge ({u}, {v})");
            }
            live += ns.len();
        }
        assert_eq!(live, g.m() * 2, "live count drifted");
    }

    #[test]
    fn build_matches_dense_with_duplicate_emissions() {
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (0, 3), (1, 3)];
        // Emit (1, 2) and (0, 3) twice, as a two-sided builder would.
        let emissions = [(0, 1), (1, 2), (2, 3), (1, 2), (0, 3), (1, 3), (0, 3)];
        let g = ChunkedCsr::build(2, &[0, 0, 1, 1], emissions.into_iter());
        let d = dense(4, &edges);
        assert_eq!(g, d);
        assert_eq!(d, g);
        assert_eq!(g.m(), 5);
        assert_eq!(g.to_dense(), d);
        check_invariants(&g);
    }

    #[test]
    fn cancelled_delta_touches_nothing() {
        let emissions = [(0u32, 1u32), (1, 2)];
        let mut g = ChunkedCsr::build(2, &[0, 1, 1], emissions.into_iter());
        let stats = g.splice(&emissions, &emissions);
        assert_eq!(stats.chunks_touched, 0);
        assert_eq!(stats.delta_halfedges, 0);
        assert_eq!(g, dense(3, &emissions));
    }

    #[test]
    fn splice_add_remove_matches_reference() {
        // 3 chunks over 9 nodes; splice across chunk boundaries.
        let chunk_of = [0u32, 0, 0, 1, 1, 1, 2, 2, 2];
        let initial = [(0u32, 1u32), (1, 4), (3, 4), (4, 7), (6, 8)];
        let mut g = ChunkedCsr::build(3, &chunk_of, initial.iter().copied());
        // Remove chunk-crossing (1,4), add (2,6) and (0,8).
        let stats = g.splice(&[(1, 4)], &[(2, 6), (0, 8)]);
        assert!(stats.chunks_touched >= 2);
        let want = dense(9, &[(0, 1), (3, 4), (4, 7), (6, 8), (2, 6), (0, 8)]);
        assert_eq!(g, want);
        assert_eq!(g.to_dense(), want);
        check_invariants(&g);
        // Undo splices back byte-identically.
        g.splice(&[(2, 6), (0, 8)], &[(1, 4)]);
        assert_eq!(g, dense(9, &initial));
        check_invariants(&g);
    }

    #[test]
    fn multiplicity_keeps_edges_backed_by_a_clean_shard() {
        // Edge (1, 2) emitted from both endpoints' chunks (k-NN style).
        let mut g = ChunkedCsr::build(2, &[0, 0, 1], [(1u32, 2u32), (1, 2)].into_iter());
        assert_eq!(g.m(), 1);
        // One side withdraws its emission: the edge must survive.
        g.splice(&[(1, 2)], &[]);
        assert_eq!(g.m(), 1);
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        // The other side withdraws too: now it is gone.
        g.splice(&[(1, 2)], &[]);
        assert_eq!(g.m(), 0);
        assert!(g.neighbors(1).is_empty() && g.neighbors(2).is_empty());
        check_invariants(&g);
    }

    #[test]
    fn slack_exhaustion_relocates_then_compaction_reclaims() {
        // One tiny chunk plus a big stable one; grow the tiny chunk far
        // past its initial slack page.
        let n = 400usize;
        let chunk_of: Vec<u32> = (0..n).map(|u| if u < 4 { 0 } else { 1 }).collect();
        let stable: Vec<(u32, u32)> = (4..n as u32 - 1).map(|u| (u, u + 1)).collect();
        let mut g = ChunkedCsr::build(2, &chunk_of, stable.iter().copied());
        let mut reference: Vec<(u32, u32)> = stable.clone();
        let mut relocations = 0usize;
        let mut compactions = 0usize;
        // Node 0 progressively links to every node of chunk 1: each batch
        // adds entries to chunk 0 (node 0's list) and chunk 1 (back refs).
        for batch in 0..12 {
            let added: Vec<(u32, u32)> = (0..32u32).map(|i| (0u32, 4 + batch * 32 + i)).collect();
            let stats = g.splice(&[], &added);
            relocations += stats.relocations;
            compactions += stats.compactions;
            reference.extend_from_slice(&added);
            assert_eq!(g, dense(n, &reference), "batch {batch} diverged");
            check_invariants(&g);
        }
        assert!(relocations > 0, "growth past a slack page must relocate");
        assert!(compactions > 0, "repeated relocations must compact");
        assert_eq!(g.dead_entries(), 0, "compaction reclaims dead space");
        // Shrink back down: in-place, no relocation churn.
        let back: Vec<(u32, u32)> = reference.iter().copied().filter(|&(u, _)| u == 0).collect();
        let stats = g.splice(&back, &[]);
        assert_eq!(stats.relocations, 0);
        assert_eq!(g, dense(n, &stable));
        check_invariants(&g);
    }

    #[test]
    fn extinction_and_resurrection() {
        let edges = [(0u32, 1u32), (1, 2), (0, 2)];
        let mut g = ChunkedCsr::build(2, &[0, 1, 1], edges.iter().copied());
        g.splice(&edges, &[]);
        assert_eq!(g.m(), 0);
        assert_eq!(g, Csr::empty(3));
        g.splice(&[], &edges);
        assert_eq!(g, dense(3, &edges));
        check_invariants(&g);
    }

    #[test]
    fn empty_graphs() {
        let g = ChunkedCsr::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        let g = ChunkedCsr::empty(5);
        assert_eq!(g.n(), 5);
        assert!(g.neighbors(3).is_empty());
        assert_eq!(g, Csr::empty(5));
    }

    #[test]
    #[should_panic(expected = "not present")]
    fn removing_a_never_spliced_emission_panics() {
        let mut g = ChunkedCsr::build(1, &[0, 0, 0], [(0u32, 1u32)].into_iter());
        g.splice(&[(1, 2)], &[]);
    }

    #[test]
    fn equality_is_layout_independent() {
        // Same graph, different chunking and different splice history.
        let edges = [(0u32, 1u32), (1, 2), (2, 3)];
        let a = ChunkedCsr::build(2, &[0, 0, 1, 1], edges.iter().copied());
        let mut b = ChunkedCsr::build(4, &[0, 1, 2, 3], [(0u32, 1u32)].into_iter());
        b.splice(&[], &[(1, 2), (2, 3)]);
        assert_eq!(a, b);
        assert_eq!(a, dense(4, &edges));
    }
}
