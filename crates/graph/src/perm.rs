//! Arbitrary-permutation relabelling.
//!
//! [`crate::delta::IdRemap`] deliberately accepts only *monotone* maps —
//! the shard-gather case, where relative order is preserved. The ordered
//! construction pipeline needs the general case: builders run in a
//! spatially sorted *rank* space (`wsn_pointproc::order::PointOrder`) and
//! their emissions must be relabelled back to original deployment ids at
//! the emission boundary, through a permutation that is anything but
//! monotone. These helpers are that boundary.
//!
//! Everything here is pure index bookkeeping: relabelling then
//! re-canonicalising through [`Csr::from_canonical_edges`]'s counting sort
//! reproduces the deployment-order graph byte-for-byte, which is what lets
//! the permutation-invariance suite demand identical fingerprints.

use crate::csr::Csr;
use crate::view::GraphView;

/// Invert a permutation: `inv[perm[i]] = i`. Panics (via indexing /
/// debug assertions) unless `perm` is a bijection on `0..len`.
pub fn invert_permutation(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![u32::MAX; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        debug_assert!(
            inv[p as usize] == u32::MAX,
            "id {p} appears twice in the permutation"
        );
        inv[p as usize] = i as u32;
    }
    debug_assert!(inv.iter().all(|&v| v != u32::MAX));
    inv
}

/// Relabel canonical `(u, v)` edges through `map` and re-canonicalise so
/// `small < large` again. Order of the output edge vector is unspecified —
/// feed it to [`Csr::from_canonical_edges`], which sorts per node.
pub fn remap_canonical_edges(edges: &[(u32, u32)], map: &[u32]) -> Vec<(u32, u32)> {
    edges
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (map[u as usize], map[v as usize]);
            if a < b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect()
}

/// Rebuild `g` with every node id pushed through `map` (an arbitrary
/// bijection on `0..g.n()`). The result is in canonical CSR form (sorted
/// neighbor lists), so two graphs equal up to relabelling compare equal —
/// including under [`crate::delta::fingerprint`].
pub fn remap_csr<G: GraphView + ?Sized>(g: &G, map: &[u32]) -> Csr {
    assert_eq!(map.len(), g.n(), "map must cover every node");
    let mut edges = Vec::with_capacity(g.m());
    for u in 0..g.n() as u32 {
        let mu = map[u as usize];
        for &v in g.neighbors(u) {
            if u < v {
                let mv = map[v as usize];
                edges.push(if mu < mv { (mu, mv) } else { (mv, mu) });
            }
        }
    }
    Csr::from_canonical_edges(g.n(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::fingerprint;

    fn sample() -> Csr {
        Csr::from_canonical_edges(5, &[(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn invert_roundtrips() {
        let perm = vec![3u32, 0, 4, 1, 2];
        let inv = invert_permutation(&perm);
        assert_eq!(inv, vec![1, 3, 4, 0, 2]);
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(inv[p as usize], i as u32);
        }
        assert_eq!(invert_permutation(&inv), perm);
    }

    #[test]
    fn remap_by_identity_is_identity() {
        let g = sample();
        let id: Vec<u32> = (0..5).collect();
        let h = remap_csr(&g, &id);
        assert_eq!(g, h);
        assert_eq!(fingerprint(&g), fingerprint(&h));
    }

    #[test]
    fn remap_then_inverse_restores_the_graph() {
        let g = sample();
        let perm = vec![4u32, 2, 0, 3, 1];
        let scrambled = remap_csr(&g, &perm);
        assert_ne!(fingerprint(&g), fingerprint(&scrambled));
        let restored = remap_csr(&scrambled, &invert_permutation(&perm));
        assert_eq!(g, restored);
        assert_eq!(fingerprint(&g), fingerprint(&restored));
    }

    #[test]
    fn remap_preserves_adjacency_semantics() {
        let g = sample();
        let perm = vec![1u32, 3, 0, 4, 2];
        let h = remap_csr(&g, &perm);
        for u in 0..5u32 {
            for &v in g.neighbors(u) {
                let (a, b) = (perm[u as usize], perm[v as usize]);
                assert!(h.neighbors(a).contains(&b), "({u},{v}) → ({a},{b})");
            }
        }
        assert_eq!(g.m(), h.m());
    }

    #[test]
    fn remap_canonical_edges_matches_csr_remap() {
        let g = sample();
        let edges: Vec<(u32, u32)> = g.edges().collect();
        let perm = vec![2u32, 4, 1, 0, 3];
        let remapped = remap_canonical_edges(&edges, &perm);
        assert!(remapped.iter().all(|&(u, v)| u < v));
        let h = Csr::from_canonical_edges(5, &remapped);
        assert_eq!(h, remap_csr(&g, &perm));
    }
}
