//! # wsn-graph
//!
//! Compact graph substrate shared by the percolation lattice, the geometric
//! random graphs and the SENS subgraph constructions.
//!
//! Graphs are stored in CSR (compressed sparse row) form with `u32` node ids
//! — one flat `targets` array plus an `offsets` array — which keeps
//! traversals cache-dense and the memory footprint at 8 bytes per directed
//! edge (perf-book guidance on flat data structures).
//!
//! Modules:
//!
//! * [`csr`] — the [`Csr`] structure and its [`builder::EdgeList`] builder.
//! * [`chunked`] — the [`ChunkedCsr`]: per-shard adjacency chunks with
//!   slack pages, spliced in place in O(dirty) per churned epoch.
//! * [`view`] — the [`GraphView`] trait and [`CsrView`] enum unifying the
//!   dense and chunked representations for read-side consumers.
//! * [`builder`] — edge-list accumulation and deduplication.
//! * [`delta`] — incremental maintenance: per-shard edge caches, vertex
//!   deactivation, monotone relabelling, CSR fingerprints.
//! * [`perm`] — arbitrary-permutation relabelling, the emission boundary of
//!   the Morton-ordered construction pipeline.
//! * [`snapshot`] — epoch-versioned RCU-style snapshot publication: the
//!   serve path's pin/publish/retire structure.
//! * [`unionfind`] — disjoint sets with union by size + path halving.
//! * [`bfs`] — unweighted shortest paths (hop distance).
//! * [`dijkstra`] — weighted shortest paths with a caller-supplied weight
//!   function (Euclidean edge lengths in the stretch experiments).
//! * [`components`] — connected components and the giant component.
//! * [`stats`] — degree statistics (sparsity property P1).
//! * [`stretch`] — hop/Euclidean stretch sampling (stretch property P2).

pub mod bfs;
pub mod builder;
pub mod chunked;
pub mod components;
pub mod csr;
pub mod delta;
pub mod dijkstra;
pub mod perm;
pub mod snapshot;
pub mod stats;
pub mod stretch;
pub mod unionfind;
pub mod view;

pub use builder::EdgeList;
pub use chunked::{ChunkedCsr, SpliceStats};
pub use csr::Csr;
pub use delta::{
    check_monotone, deactivate_vertices, fingerprint, relabel, IdRemap, MonotonicityError,
    ShardedEdgeStore,
};
pub use perm::{invert_permutation, remap_canonical_edges, remap_csr};
pub use snapshot::{EpochGuard, EpochHandle, EpochPublisher, SnapshotStats};
pub use unionfind::UnionFind;
pub use view::{CsrView, GraphView};

/// Sentinel for "unreachable" in hop-distance arrays.
pub const UNREACHABLE: u32 = u32::MAX;
