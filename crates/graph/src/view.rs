//! Read-only graph views: one trait over every CSR representation.
//!
//! The incremental churn engine maintains a [`ChunkedCsr`] (per-shard
//! chunks with slack, spliced in place), while cold builders and the
//! rebuild baseline produce a dense [`Csr`]. Every read-side consumer —
//! BFS routing, connected components, fingerprints, the metric suites —
//! only needs `n`, `degree` and sorted `neighbors`, so they are written
//! against [`GraphView`] and accept either representation unchanged.

use crate::chunked::ChunkedCsr;
use crate::csr::Csr;

/// Read access to an undirected graph with `u32` node ids and sorted
/// adjacency slices.
///
/// The two invariants every implementation upholds (and every generic
/// consumer may rely on): `neighbors(u)` is strictly ascending, and edges
/// are symmetric (`v ∈ neighbors(u)` iff `u ∈ neighbors(v)`).
pub trait GraphView {
    /// Number of nodes.
    fn n(&self) -> usize;

    /// Neighbours of `u`, sorted ascending.
    fn neighbors(&self, u: u32) -> &[u32];

    /// Degree of `u`.
    #[inline]
    fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Number of undirected edges.
    fn m(&self) -> usize {
        (0..self.n() as u32).map(|u| self.degree(u)).sum::<usize>() / 2
    }

    /// Membership test via binary search (neighbour lists are sorted).
    #[inline]
    fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

impl GraphView for Csr {
    #[inline]
    fn n(&self) -> usize {
        Csr::n(self)
    }

    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        Csr::neighbors(self, u)
    }

    #[inline]
    fn m(&self) -> usize {
        Csr::m(self)
    }
}

impl GraphView for ChunkedCsr {
    #[inline]
    fn n(&self) -> usize {
        ChunkedCsr::n(self)
    }

    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        ChunkedCsr::neighbors(self, u)
    }

    #[inline]
    fn m(&self) -> usize {
        ChunkedCsr::m(self)
    }
}

/// A borrowed either-representation view, for code that must return "the
/// current graph" from storage that is dense in one mode and chunked in
/// another (the churn engine's rebuild vs incremental maintenance modes).
#[derive(Clone, Copy, Debug)]
pub enum CsrView<'a> {
    Dense(&'a Csr),
    Chunked(&'a ChunkedCsr),
}

impl GraphView for CsrView<'_> {
    #[inline]
    fn n(&self) -> usize {
        match self {
            CsrView::Dense(g) => g.n(),
            CsrView::Chunked(g) => g.n(),
        }
    }

    #[inline]
    fn neighbors(&self, u: u32) -> &[u32] {
        match self {
            CsrView::Dense(g) => g.neighbors(u),
            CsrView::Chunked(g) => g.neighbors(u),
        }
    }

    #[inline]
    fn m(&self) -> usize {
        match self {
            CsrView::Dense(g) => g.m(),
            CsrView::Chunked(g) => g.m(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    fn path_graph(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for i in 1..n as u32 {
            el.add(i - 1, i);
        }
        Csr::from_edge_list(el)
    }

    fn sum_deg<G: GraphView + ?Sized>(g: &G) -> usize {
        (0..g.n() as u32).map(|u| g.degree(u)).sum()
    }

    #[test]
    fn csr_view_delegates_to_both_representations() {
        let dense = path_graph(5);
        let chunked = ChunkedCsr::build(
            2,
            &[0, 0, 1, 1, 1],
            dense.edges().collect::<Vec<_>>().into_iter(),
        );
        for view in [CsrView::Dense(&dense), CsrView::Chunked(&chunked)] {
            assert_eq!(view.n(), 5);
            assert_eq!(view.m(), 4);
            assert_eq!(view.neighbors(1), &[0, 2]);
            assert!(view.has_edge(2, 3));
            assert!(!view.has_edge(0, 3));
            assert_eq!(sum_deg(&view), 8);
        }
    }
}
