//! Degree statistics — the evidence for sparsity property P1.

use crate::csr::Csr;
use serde::Serialize;

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, Serialize, PartialEq)]
pub struct DegreeStats {
    pub n: usize,
    pub m: usize,
    pub min: usize,
    pub max: usize,
    pub mean: f64,
    /// `histogram[d]` = number of nodes with degree `d`.
    pub histogram: Vec<usize>,
}

/// Compute degree statistics. For the empty graph all scalar fields are 0.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats {
            n: 0,
            m: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            histogram: Vec::new(),
        };
    }
    let degrees: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
    let max = degrees.iter().copied().max().unwrap();
    let min = degrees.iter().copied().min().unwrap();
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    DegreeStats {
        n,
        m: g.m(),
        min,
        max,
        mean: 2.0 * g.m() as f64 / n as f64,
        histogram,
    }
}

/// Degree statistics restricted to a node subset (e.g. the nodes actually in
/// the SENS subgraph, ignoring the unconnected leftovers).
pub fn degree_stats_masked(g: &Csr, mask: &[bool]) -> DegreeStats {
    assert_eq!(mask.len(), g.n());
    let degrees: Vec<usize> = (0..g.n() as u32)
        .filter(|&u| mask[u as usize])
        .map(|u| g.degree(u))
        .collect();
    if degrees.is_empty() {
        return DegreeStats {
            n: 0,
            m: 0,
            min: 0,
            max: 0,
            mean: 0.0,
            histogram: Vec::new(),
        };
    }
    let max = degrees.iter().copied().max().unwrap();
    let min = degrees.iter().copied().min().unwrap();
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    let m_in: usize = g
        .edges()
        .filter(|&(u, v)| mask[u as usize] && mask[v as usize])
        .count();
    DegreeStats {
        n: degrees.len(),
        m: m_in,
        min,
        max,
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
        histogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    fn star(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for i in 1..n as u32 {
            el.add(0, i);
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn star_stats() {
        let s = degree_stats(&star(5));
        assert_eq!(s.n, 5);
        assert_eq!(s.m, 4);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 1);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.histogram, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn histogram_sums_to_n() {
        let s = degree_stats(&star(8));
        assert_eq!(s.histogram.iter().sum::<usize>(), 8);
    }

    #[test]
    fn empty_graph() {
        let s = degree_stats(&Csr::empty(0));
        assert_eq!(s.n, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn masked_stats_ignore_outside_nodes() {
        let g = star(5);
        // Keep only the leaves: their degrees still count the hub edge, but
        // n/m reflect the masked subset.
        let mask = vec![false, true, true, true, true];
        let s = degree_stats_masked(&g, &mask);
        assert_eq!(s.n, 4);
        assert_eq!(s.m, 0); // no edge has both endpoints in the mask
        assert_eq!(s.max, 1);
        assert_eq!(s.mean, 1.0);
    }
}
