//! CSR (compressed sparse row) adjacency.

use crate::builder::EdgeList;

/// An undirected graph in CSR form: `targets[offsets[u]..offsets[u + 1]]`
/// are the neighbours of `u`, sorted ascending.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build from an edge list; duplicates are removed.
    pub fn from_edge_list(edges: EdgeList) -> Self {
        let (n, edges) = edges.dedup_edges();
        Self::from_canonical_edges(n, &edges)
    }

    /// Build from canonical `(min, max)` unique edges.
    pub fn from_canonical_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0u32; n + 1];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge out of range");
            deg[u as usize + 1] += 1;
            deg[v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let offsets = deg.clone();
        let mut cursor = deg;
        let mut targets = vec![0u32; edges.len() * 2];
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Neighbour lists come out sorted because edges are sorted
        // canonically... only per source of the first endpoint; sort each
        // list to guarantee the invariant cheaply.
        let mut csr = Csr { offsets, targets };
        for u in 0..n {
            let (s, e) = (csr.offsets[u] as usize, csr.offsets[u + 1] as usize);
            csr.targets[s..e].sort_unstable();
        }
        csr
    }

    /// Assemble from already-valid CSR arrays: `offsets` of length `n + 1`
    /// starting at 0, non-decreasing, ending at `targets.len()`, with each
    /// per-node slice strictly ascending. Callers (streaming relabel,
    /// chunked-CSR densification) uphold the invariants by construction;
    /// debug builds re-check them.
    pub(crate) fn from_sorted_parts(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(offsets.windows(2).all(|w| {
            targets[w[0] as usize..w[1] as usize]
                .windows(2)
                .all(|t| t[0] < t[1])
        }));
        Csr { offsets, targets }
    }

    /// An edgeless graph on `n` nodes.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbours of `u`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        &self.targets[s..e]
    }

    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Membership test via binary search (neighbour lists are sorted).
    #[inline]
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterate canonical undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The subgraph induced by keeping only nodes where `keep[u]` is true;
    /// node ids are preserved (non-kept nodes become isolated).
    pub fn filter_nodes(&self, keep: &[bool]) -> Csr {
        assert_eq!(keep.len(), self.n());
        let mut el = EdgeList::new(self.n());
        for (u, v) in self.edges() {
            if keep[u as usize] && keep[v as usize] {
                el.add(u, v);
            }
        }
        Csr::from_edge_list(el)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for i in 1..n as u32 {
            el.add(i - 1, i);
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn path_graph_structure() {
        let g = path_graph(4);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut el = EdgeList::new(3);
        el.add(0, 1);
        el.add(1, 0);
        el.add(0, 1);
        el.add(1, 2);
        let g = Csr::from_edge_list(el);
        assert_eq!(g.m(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = path_graph(5);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(7);
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 0);
        assert!(g.neighbors(3).is_empty());
    }

    #[test]
    fn filter_nodes_removes_incident_edges() {
        let g = path_graph(5);
        let keep = vec![true, true, false, true, true];
        let f = g.filter_nodes(&keep);
        assert_eq!(f.n(), 5);
        assert_eq!(f.m(), 2); // 0-1 and 3-4 survive
        assert!(f.has_edge(0, 1));
        assert!(f.has_edge(3, 4));
        assert!(!f.has_edge(1, 2));
        assert!(f.neighbors(2).is_empty());
    }

    #[test]
    fn neighbor_lists_sorted_regardless_of_insert_order() {
        let mut el = EdgeList::new(5);
        el.add(4, 0);
        el.add(2, 0);
        el.add(0, 3);
        el.add(1, 0);
        let g = Csr::from_edge_list(el);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }
}
