//! Disjoint-set forest (union by size, path halving).
//!
//! Used for percolation cluster labelling and connected components; both are
//! hot paths in the threshold experiments, hence the flat `u32` layout.

/// Disjoint sets over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set, with path halving.
    #[inline]
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    #[inline]
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    #[inline]
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }

    /// Number of disjoint sets.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Root and size of the largest set (`None` when empty).
    pub fn largest_set(&mut self) -> Option<(u32, usize)> {
        (0..self.parent.len() as u32)
            .map(|x| {
                let r = self.find(x);
                (r, self.size[r as usize] as usize)
            })
            .max_by_key(|&(r, s)| (s, std::cmp::Reverse(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_fully_disjoint() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.component_count(), 4);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.set_size(3), 4);
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn largest_set_tracks_chain() {
        let mut uf = UnionFind::new(10);
        for i in 0..4 {
            uf.union(i, i + 1); // {0..4} size 5
        }
        uf.union(7, 8); // size 2
        let (root, size) = uf.largest_set().unwrap();
        assert_eq!(size, 5);
        assert!(uf.connected(root, 0));
    }

    #[test]
    fn empty_unionfind() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.largest_set(), None);
        assert_eq!(uf.component_count(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Union-find agrees with a naive label-propagation reference.
        #[test]
        fn prop_matches_naive_labels(
            n in 1usize..40,
            ops in proptest::collection::vec((0usize..40, 0usize..40), 0..80),
        ) {
            let mut uf = UnionFind::new(n);
            let mut labels: Vec<usize> = (0..n).collect();
            for &(a, b) in &ops {
                let (a, b) = (a % n, b % n);
                if a == b { continue; }
                uf.union(a as u32, b as u32);
                let (la, lb) = (labels[a], labels[b]);
                if la != lb {
                    for l in labels.iter_mut() {
                        if *l == lb { *l = la; }
                    }
                }
            }
            // Same partition.
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(
                        uf.connected(a as u32, b as u32),
                        labels[a] == labels[b],
                        "pair ({}, {})", a, b
                    );
                }
            }
            // Same component count and sizes.
            let mut uniq: Vec<usize> = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            prop_assert_eq!(uf.component_count(), uniq.len());
            for a in 0..n {
                let naive = labels.iter().filter(|&&l| l == labels[a]).count();
                prop_assert_eq!(uf.set_size(a as u32), naive);
            }
        }
    }
}
