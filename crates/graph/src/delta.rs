//! Incremental CSR maintenance primitives.
//!
//! The construction pipeline shards a deployment and emits each canonical
//! edge exactly once, from the shard owning its smaller endpoint. This
//! module adds the id-space machinery that turns those per-shard emissions
//! into an *incrementally maintainable* graph:
//!
//! * [`ShardedEdgeStore`] — the per-shard edge cache. Replacing one shard's
//!   slice and re-splicing is the delta operation behind
//!   `wsn_rgg::incremental`: shards untouched by churn keep their cached
//!   emissions byte-for-byte.
//! * [`deactivate_vertices`] — pure vertex deactivation: drop every edge
//!   incident to a dead node without re-deriving anything (exact for
//!   topologies like the UDG whose edges never *appear* when a node dies).
//! * [`relabel`] — monotone id relabelling, used to lift a graph built on a
//!   compacted survivor set back into the stable universe id space so it
//!   can be compared byte-for-byte against the incrementally maintained
//!   CSR.
//! * [`fingerprint`] — an order-sensitive 64-bit hash of the CSR arrays; a
//!   cheap cross-run witness that two maintenance strategies walked through
//!   identical topologies.

use crate::builder::EdgeList;
use crate::csr::Csr;
use crate::view::GraphView;
use std::fmt;
use wsn_geom::hash::mix64;

/// A strict-monotonicity violation in an id map: `prev` at `index - 1` is
/// not below `next` at `index`.
///
/// Monotonicity is correctness load-bearing for [`IdRemap`] and
/// [`relabel`] (it is what makes id comparisons — canonical edge
/// orientation, sorted gathers — survive the remap), and the bench/gate
/// path runs in release mode, so the check must not be debug-only: a
/// corrupted gather has to fail loudly, not splice garbage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MonotonicityError {
    /// Position of the offending element.
    pub index: usize,
    /// The element before it.
    pub prev: u32,
    /// The element at `index`.
    pub next: u32,
}

impl fmt::Display for MonotonicityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ids not strictly ascending at index {}: {} !< {}",
            self.index, self.prev, self.next
        )
    }
}

impl std::error::Error for MonotonicityError {}

/// Check that `ids` is strictly ascending (a single branchy pass — cheap
/// against the derivation work that follows it).
pub fn check_monotone(ids: &[u32]) -> Result<(), MonotonicityError> {
    for (i, w) in ids.windows(2).enumerate() {
        if w[0] >= w[1] {
            return Err(MonotonicityError {
                index: i + 1,
                prev: w[0],
                next: w[1],
            });
        }
    }
    Ok(())
}

/// Per-shard canonical edge cache with splice-to-CSR.
///
/// Edges are stored exactly as the shard builders emit them (canonical
/// `(min, max)` pairs; the k-NN and Yao builders may emit one edge from
/// both endpoints — possibly in different shards — so [`Self::to_csr`]
/// offers both the duplicate-free fast path and the deduplicating one).
#[derive(Clone, Debug)]
pub struct ShardedEdgeStore {
    n: usize,
    per_shard: Vec<Vec<(u32, u32)>>,
}

impl ShardedEdgeStore {
    /// An empty store over `shards` shards of a graph on `n` nodes.
    pub fn new(n: usize, shards: usize) -> Self {
        ShardedEdgeStore {
            n,
            per_shard: vec![Vec::new(); shards],
        }
    }

    /// Number of nodes in the universe id space.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of shard slots.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.per_shard.len()
    }

    /// The cached emissions of shard `s`.
    #[inline]
    pub fn shard(&self, s: usize) -> &[(u32, u32)] {
        &self.per_shard[s]
    }

    /// Replace shard `s`'s cached emissions (the re-derivation path).
    pub fn replace(&mut self, s: usize, edges: Vec<(u32, u32)>) {
        self.per_shard[s] = edges;
    }

    /// Drop cached edges of shard `s` that fail `keep` (the vertex
    /// deactivation fast path: no geometry re-derivation, just a filter).
    pub fn retain<F: FnMut(u32, u32) -> bool>(&mut self, s: usize, mut keep: F) {
        self.per_shard[s].retain(|&(u, v)| keep(u, v));
    }

    /// Total cached edge emissions (duplicates counted).
    pub fn emission_count(&self) -> usize {
        self.per_shard.iter().map(Vec::len).sum()
    }

    /// Iterate every cached emission in shard order (duplicates included —
    /// the chunked-CSR build folds them into multiplicities).
    pub fn emissions(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.per_shard.iter().flat_map(|s| s.iter().copied())
    }

    /// Splice every shard's cache into one CSR.
    ///
    /// `dedup` selects the symmetrising edge-list path (needed when a
    /// topology emits an edge from both endpoints, as k-NN and Yao do);
    /// without it each canonical edge must already be unique across shards
    /// and the CSR builds without a global sort.
    pub fn to_csr(&self, dedup: bool) -> Csr {
        if dedup {
            let mut el = EdgeList::with_capacity(self.n, self.emission_count());
            for shard in &self.per_shard {
                for &(u, v) in shard {
                    el.add(u, v);
                }
            }
            Csr::from_edge_list(el)
        } else {
            let mut all = Vec::with_capacity(self.emission_count());
            for shard in &self.per_shard {
                all.extend_from_slice(shard);
            }
            Csr::from_canonical_edges(self.n, &all)
        }
    }
}

/// A compacted-local id space over a sparse, ascending subset of universe
/// ids — what the dirty-extent repair path hands to shard derivation.
///
/// The localized gather yields the universe ids of the alive points inside
/// a dirty region; geometry kernels, however, want a dense `0..len` id
/// space (their index buckets and neighbour lists are arrays). `IdRemap`
/// is that bridge, and its strict monotonicity is the correctness
/// load-bearing part: every id comparison — canonical `(min, max)` edge
/// orientation, k-NN heap tie-breaks, sorted gathers — resolves
/// identically in local and universe space, so derivations over the dense
/// space splice back byte-identical to a cold rebuild (the same argument
/// [`relabel`] rests on).
#[derive(Clone, Debug, Default)]
pub struct IdRemap {
    to_universe: Vec<u32>,
}

impl IdRemap {
    /// Wrap a strictly ascending universe-id list, panicking on violation
    /// — in release builds too, since the bench/gate path runs in release
    /// and a silently-accepted corrupted gather would splice garbage.
    pub fn from_sorted(to_universe: Vec<u32>) -> Self {
        match Self::try_from_sorted(to_universe) {
            Ok(remap) => remap,
            Err(e) => panic!("IdRemap requires strictly ascending universe ids: {e}"),
        }
    }

    /// Fallible constructor: the same monotonicity contract as
    /// [`Self::from_sorted`], surfaced as a typed error for callers that
    /// can recover (or report) instead of aborting.
    pub fn try_from_sorted(to_universe: Vec<u32>) -> Result<Self, MonotonicityError> {
        check_monotone(&to_universe)?;
        Ok(IdRemap { to_universe })
    }

    /// Number of local ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.to_universe.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to_universe.is_empty()
    }

    /// The full local→universe map (ascending).
    #[inline]
    pub fn to_universe(&self) -> &[u32] {
        &self.to_universe
    }

    /// Universe id of a local id.
    #[inline]
    pub fn universe_of(&self, local: u32) -> u32 {
        self.to_universe[local as usize]
    }

    /// Local id of a universe id, or `None` when the id is not in the
    /// subset (binary search — the map is sorted by construction).
    #[inline]
    pub fn local_of(&self, universe: u32) -> Option<u32> {
        self.to_universe
            .binary_search(&universe)
            .ok()
            .map(|i| i as u32)
    }
}

/// Drop every edge incident to a node marked dead; ids are preserved and
/// dead nodes become isolated.
///
/// This is the degenerate repair: exact whenever node removal can only
/// *remove* edges (UDG), and the "before" picture for topologies where
/// removal can also reveal new edges (Gabriel, RNG, k-NN).
pub fn deactivate_vertices(g: &Csr, dead: &[bool]) -> Csr {
    assert_eq!(dead.len(), g.n(), "mask length must match node count");
    let mut keep = vec![true; g.n()];
    for (u, &d) in dead.iter().enumerate() {
        if d {
            keep[u] = false;
        }
    }
    g.filter_nodes(&keep)
}

/// Relabel a graph through a strictly monotone id map (`map[local] =
/// universe`), producing a graph on `n_universe` nodes where unmapped ids
/// are isolated.
///
/// Monotonicity means every id comparison — and therefore every canonical
/// `(min, max)` orientation and every sorted neighbour list — is preserved,
/// so the result is byte-identical to building the same topology directly
/// in the universe id space.
pub fn relabel(g: &Csr, map: &[u32], n_universe: usize) -> Csr {
    assert_eq!(map.len(), g.n(), "map length must match node count");
    if let Err(e) = check_monotone(map) {
        panic!("relabel map must be strictly monotone: {e}");
    }
    if let Some(&last) = map.last() {
        assert!((last as usize) < n_universe, "map target out of range");
    }
    // Monotone maps preserve order, so the relabelled neighbour lists stay
    // sorted and the CSR arrays can be written directly — no transient
    // O(m) edge vector, no re-sort.
    let mut offsets = vec![0u32; n_universe + 1];
    for u in 0..g.n() {
        offsets[map[u] as usize + 1] = g.degree(u as u32) as u32;
    }
    for i in 0..n_universe {
        offsets[i + 1] += offsets[i];
    }
    let mut targets = vec![0u32; offsets[n_universe] as usize];
    for u in 0..g.n() as u32 {
        let base = offsets[map[u as usize] as usize] as usize;
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            targets[base + i] = map[v as usize];
        }
    }
    Csr::from_sorted_parts(offsets, targets)
}

/// Order-sensitive 64-bit fingerprint of the adjacency structure.
///
/// Two graphs have equal fingerprints iff (up to hash collision) they have
/// identical per-node neighbour lists — the same property `Csr::eq` checks,
/// but transportable across processes (the lifetime bench uses it to prove
/// the incremental and rebuild-per-epoch runs traversed identical
/// topologies). Generic over [`GraphView`], and deliberately blind to
/// layout: a chunked CSR and the dense CSR of the same graph hash equal.
pub fn fingerprint<G: GraphView + ?Sized>(g: &G) -> u64 {
    let mut h = 0xA076_1D64_78BD_642Fu64 ^ (g.n() as u64);
    for u in 0..g.n() as u32 {
        h = mix64(h ^ (g.degree(u) as u64).wrapping_add(0x9E37_79B9_7F4A_7C15));
        for &v in g.neighbors(u) {
            h = mix64(h ^ v as u64);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for i in 1..n as u32 {
            el.add(i - 1, i);
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn store_splices_shards_in_any_partition() {
        // The same edge set split 1 shard vs 3 shards gives the same CSR.
        let edges = [(0u32, 1u32), (1, 2), (2, 3), (0, 3)];
        let mut one = ShardedEdgeStore::new(4, 1);
        one.replace(0, edges.to_vec());
        let mut three = ShardedEdgeStore::new(4, 3);
        three.replace(0, vec![edges[0]]);
        three.replace(1, vec![edges[1], edges[2]]);
        three.replace(2, vec![edges[3]]);
        assert_eq!(one.to_csr(false), three.to_csr(false));
        assert_eq!(one.to_csr(false).m(), 4);
    }

    #[test]
    fn dedup_path_collapses_cross_shard_duplicates() {
        let mut store = ShardedEdgeStore::new(3, 2);
        store.replace(0, vec![(0, 1), (1, 2)]);
        store.replace(1, vec![(1, 2)]); // emitted again from the other side
        assert_eq!(store.to_csr(true).m(), 2);
        assert_eq!(store.emission_count(), 3);
    }

    #[test]
    fn retain_filters_one_shard_only() {
        let mut store = ShardedEdgeStore::new(4, 2);
        store.replace(0, vec![(0, 1), (1, 2)]);
        store.replace(1, vec![(2, 3)]);
        store.retain(0, |u, v| u != 1 && v != 1);
        assert_eq!(store.shard(0), &[]);
        assert_eq!(store.shard(1), &[(2, 3)]);
        assert_eq!(store.to_csr(false).m(), 1);
    }

    #[test]
    fn id_remap_round_trips_and_rejects_outsiders() {
        let m = IdRemap::from_sorted(vec![2, 5, 9, 40]);
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        for (local, universe) in [(0u32, 2u32), (1, 5), (2, 9), (3, 40)] {
            assert_eq!(m.universe_of(local), universe);
            assert_eq!(m.local_of(universe), Some(local));
        }
        for outsider in [0u32, 3, 10, 41] {
            assert_eq!(m.local_of(outsider), None);
        }
        assert!(IdRemap::default().is_empty());
        // Monotone by construction, so id comparisons survive the round
        // trip: local order == universe order.
        assert!(m.to_universe().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deactivation_matches_filter_nodes() {
        let g = path_graph(5);
        let dead = vec![false, false, true, false, false];
        let d = deactivate_vertices(&g, &dead);
        assert_eq!(d.n(), 5);
        assert_eq!(d.m(), 2); // 0-1 and 3-4 survive
        assert!(d.neighbors(2).is_empty());
    }

    #[test]
    fn relabel_lifts_into_universe_space() {
        // Compact graph on {0,1,2} ≙ universe nodes {1,3,4} of 6.
        let g = path_graph(3);
        let lifted = relabel(&g, &[1, 3, 4], 6);
        assert_eq!(lifted.n(), 6);
        assert_eq!(lifted.m(), 2);
        assert!(lifted.has_edge(1, 3));
        assert!(lifted.has_edge(3, 4));
        assert!(lifted.neighbors(0).is_empty());
        assert!(lifted.neighbors(5).is_empty());
    }

    #[test]
    fn relabel_identity_is_a_noop() {
        let g = path_graph(4);
        assert_eq!(relabel(&g, &[0, 1, 2, 3], 4), g);
    }

    #[test]
    fn id_remap_rejects_non_monotone_ids_in_release_builds_too() {
        let err = IdRemap::try_from_sorted(vec![2, 5, 5, 9]).unwrap_err();
        assert_eq!(
            err,
            MonotonicityError {
                index: 2,
                prev: 5,
                next: 5
            }
        );
        assert!(err.to_string().contains("index 2"));
        assert!(IdRemap::try_from_sorted(vec![0, 7, 40]).is_ok());
        // The panicking constructor carries the same diagnostic, with no
        // debug_assertions gate.
        let panic = std::panic::catch_unwind(|| IdRemap::from_sorted(vec![3, 1])).unwrap_err();
        let msg = panic.downcast_ref::<String>().unwrap();
        assert!(msg.contains("strictly ascending"), "got: {msg}");
    }

    #[test]
    fn relabel_rejects_non_monotone_maps_in_release_builds_too() {
        let g = path_graph(3);
        let panic = std::panic::catch_unwind(|| relabel(&g, &[1, 4, 2], 6)).unwrap_err();
        let msg = panic.downcast_ref::<String>().unwrap();
        assert!(msg.contains("strictly monotone"), "got: {msg}");
    }

    #[test]
    fn streamed_relabel_matches_edge_list_rebuild() {
        // Dense reference: collect mapped edges and rebuild from scratch.
        let mut el = EdgeList::new(5);
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (0, 4), (1, 4)] {
            el.add(u, v);
        }
        let g = Csr::from_edge_list(el);
        let map = [2u32, 3, 7, 8, 11];
        let streamed = relabel(&g, &map, 12);
        let edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (map[u as usize], map[v as usize]))
            .collect();
        assert_eq!(streamed, Csr::from_canonical_edges(12, &edges));
    }

    #[test]
    fn store_emissions_iterate_in_shard_order_with_duplicates() {
        let mut store = ShardedEdgeStore::new(3, 2);
        store.replace(0, vec![(0, 1), (1, 2)]);
        store.replace(1, vec![(1, 2)]);
        let all: Vec<(u32, u32)> = store.emissions().collect();
        assert_eq!(all, vec![(0, 1), (1, 2), (1, 2)]);
        assert_eq!(all.len(), store.emission_count());
    }

    #[test]
    fn fingerprint_is_layout_blind_across_representations() {
        let g = path_graph(6);
        let chunked = crate::chunked::ChunkedCsr::build(
            3,
            &[0, 0, 1, 1, 2, 2],
            g.edges().collect::<Vec<_>>().into_iter(),
        );
        assert_eq!(fingerprint(&g), fingerprint(&chunked));
        assert_eq!(
            fingerprint(&chunked),
            fingerprint(&crate::view::CsrView::Chunked(&chunked))
        );
    }

    #[test]
    fn fingerprint_separates_structures_and_matches_equality() {
        let a = path_graph(6);
        let b = path_graph(6);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let mut el = EdgeList::new(6);
        for i in 1..6u32 {
            el.add(i - 1, i);
        }
        el.add(0, 5); // cycle, not path
        let c = Csr::from_edge_list(el);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // Isolated tail changes n and must change the print.
        assert_ne!(fingerprint(&a), fingerprint(&path_graph(7)));
    }
}
