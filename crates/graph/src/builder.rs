//! Edge-list accumulation.

/// A growable undirected edge list over nodes `0..n`.
///
/// Self-loops are rejected; duplicate edges are removed at CSR build time, so
/// constructions may freely emit the same edge from both endpoints (as the
/// distributed protocol of Fig. 7 naturally does).
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl EdgeList {
    pub fn new(n: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::new(),
        }
    }

    pub fn with_capacity(n: usize, m: usize) -> Self {
        EdgeList {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (possibly duplicated) undirected edges accumulated so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Add the undirected edge `{u, v}`. Stored canonically (min, max).
    #[inline]
    pub fn add(&mut self, u: u32, v: u32) {
        debug_assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge out of range"
        );
        debug_assert_ne!(u, v, "self-loop");
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Canonical, deduplicated edges.
    pub fn dedup_edges(mut self) -> (usize, Vec<(u32, u32)>) {
        self.edges.sort_unstable();
        self.edges.dedup();
        (self.n, self.edges)
    }

    /// Raw (canonicalised, possibly duplicated) edges.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_and_dedups() {
        let mut el = EdgeList::new(4);
        el.add(2, 1);
        el.add(1, 2);
        el.add(0, 3);
        let (n, edges) = el.dedup_edges();
        assert_eq!(n, 4);
        assert_eq!(edges, vec![(0, 3), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops_in_debug() {
        let mut el = EdgeList::new(2);
        el.add(1, 1);
    }

    #[test]
    fn capacity_and_len() {
        let mut el = EdgeList::with_capacity(10, 5);
        assert!(el.is_empty());
        el.add(0, 1);
        assert_eq!(el.len(), 1);
        assert_eq!(el.n(), 10);
    }
}
