//! Stretch measurement — property P2.
//!
//! The paper defines distance stretch of a subgraph `H ⊆ G` as
//! `δ = max_{u,v} d_H(u, v) / d_G(u, v)` and power stretch as `δ^β` with the
//! path-loss exponent `β ∈ [2, 5]` (Li–Wan–Wang). Because Euclidean distance
//! lower-bounds graph distance in both base models, we also measure the
//! *Euclidean* stretch `d_H(u, v) / d(u, v)`, which is what Theorem 3.2
//! bounds.

use crate::csr::Csr;
use crate::dijkstra;
use serde::Serialize;
use wsn_geom::Point;

/// One measured pair.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StretchSample {
    pub u: u32,
    pub v: u32,
    /// Euclidean distance between the endpoints.
    pub euclid: f64,
    /// Length of the shortest path in the (sub)graph under Euclidean edge
    /// weights; infinite when disconnected.
    pub graph_dist: f64,
    /// Hop count of that path (`u32::MAX` when disconnected).
    pub hops: u32,
}

impl StretchSample {
    /// Euclidean stretch `d_H / d`; infinite when disconnected.
    #[inline]
    pub fn stretch(&self) -> f64 {
        if self.euclid > 0.0 {
            self.graph_dist / self.euclid
        } else {
            1.0
        }
    }

    /// Power stretch `(d_H / d)^β` for path-loss exponent `beta`.
    #[inline]
    pub fn power_stretch(&self, beta: f64) -> f64 {
        self.stretch().powf(beta)
    }
}

/// Measure stretch for explicit node pairs. `pos(u)` gives node positions;
/// edges are weighted by Euclidean length.
///
/// Runs one Dijkstra per distinct source, so sampling many pairs that share
/// sources is cheap.
pub fn measure_pairs<P: Fn(u32) -> Point>(
    g: &Csr,
    pos: P,
    pairs: &[(u32, u32)],
) -> Vec<StretchSample> {
    let weight = |u: u32, v: u32| pos(u).dist(pos(v));
    let mut out = Vec::with_capacity(pairs.len());
    // Group by source to reuse Dijkstra runs.
    let mut by_src: std::collections::BTreeMap<u32, Vec<u32>> = std::collections::BTreeMap::new();
    for &(u, v) in pairs {
        by_src.entry(u).or_default().push(v);
    }
    for (&src, dsts) in by_src.iter() {
        let dist = dijkstra::distances(g, src, weight);
        let hops = crate::bfs::distances(g, src);
        for &dst in dsts {
            out.push(StretchSample {
                u: src,
                v: dst,
                euclid: pos(src).dist(pos(dst)),
                graph_dist: dist[dst as usize],
                hops: hops[dst as usize],
            });
        }
    }
    out
}

/// Aggregate of finite-stretch samples.
#[derive(Clone, Debug, Serialize)]
pub struct StretchSummary {
    pub pairs: usize,
    pub connected_pairs: usize,
    pub max_stretch: f64,
    pub mean_stretch: f64,
    pub p95_stretch: f64,
}

/// Summarise samples, ignoring disconnected pairs (reported separately).
pub fn summarize(samples: &[StretchSample]) -> StretchSummary {
    let mut finite: Vec<f64> = samples
        .iter()
        .filter(|s| s.graph_dist.is_finite())
        .map(|s| s.stretch())
        .collect();
    finite.sort_by(f64::total_cmp);
    let connected = finite.len();
    if connected == 0 {
        return StretchSummary {
            pairs: samples.len(),
            connected_pairs: 0,
            max_stretch: f64::NAN,
            mean_stretch: f64::NAN,
            p95_stretch: f64::NAN,
        };
    }
    StretchSummary {
        pairs: samples.len(),
        connected_pairs: connected,
        max_stretch: *finite.last().unwrap(),
        mean_stretch: finite.iter().sum::<f64>() / connected as f64,
        p95_stretch: finite[((connected as f64 * 0.95) as usize).min(connected - 1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EdgeList;

    /// Unit square with corners 0..4 and edges around the boundary.
    fn square() -> (Csr, [Point; 4]) {
        let pos = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ];
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        el.add(1, 2);
        el.add(2, 3);
        el.add(3, 0);
        (Csr::from_edge_list(el), pos)
    }

    #[test]
    fn diagonal_stretch_is_sqrt2() {
        let (g, pos) = square();
        let s = measure_pairs(&g, |u| pos[u as usize], &[(0, 2)]);
        assert_eq!(s.len(), 1);
        assert!((s[0].euclid - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!((s[0].graph_dist - 2.0).abs() < 1e-12);
        assert_eq!(s[0].hops, 2);
        assert!((s[0].stretch() - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn adjacent_pair_has_stretch_one() {
        let (g, pos) = square();
        let s = measure_pairs(&g, |u| pos[u as usize], &[(0, 1)]);
        assert!((s[0].stretch() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_stretch_is_monotone_in_beta() {
        let (g, pos) = square();
        let s = measure_pairs(&g, |u| pos[u as usize], &[(0, 2)])[0];
        let mut prev = 0.0;
        for beta in [2.0, 3.0, 4.0, 5.0] {
            let ps = s.power_stretch(beta);
            assert!(ps > prev, "β = {beta}");
            prev = ps;
        }
    }

    #[test]
    fn disconnected_pairs_are_excluded_from_summary() {
        let mut el = EdgeList::new(4);
        el.add(0, 1);
        let g = Csr::from_edge_list(el);
        let pos = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(6.0, 0.0),
        ];
        let s = measure_pairs(&g, |u| pos[u as usize], &[(0, 1), (0, 2)]);
        let sum = summarize(&s);
        assert_eq!(sum.pairs, 2);
        assert_eq!(sum.connected_pairs, 1);
        assert!((sum.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics_are_ordered() {
        let (g, pos) = square();
        let pairs: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (1, 3), (2, 0), (3, 1)];
        let sum = summarize(&measure_pairs(&g, |u| pos[u as usize], &pairs));
        assert_eq!(sum.connected_pairs, 5);
        assert!(sum.mean_stretch <= sum.max_stretch);
        assert!(sum.p95_stretch <= sum.max_stretch);
        assert!(sum.mean_stretch >= 1.0);
    }
}
