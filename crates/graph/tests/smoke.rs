//! Smoke tests for the CSR substrate: build a graph through the public
//! EdgeList → Csr path and round-trip it through the traversal algorithms.

use wsn_graph::{bfs, components, dijkstra, Csr, EdgeList, UnionFind, UNREACHABLE};

/// A 4 × 4 grid graph: node (r, c) ↔ id 4r + c.
fn grid4() -> Csr {
    let mut el = EdgeList::new(16);
    for r in 0..4u32 {
        for c in 0..4u32 {
            let u = 4 * r + c;
            if c + 1 < 4 {
                el.add(u, u + 1);
            }
            if r + 1 < 4 {
                el.add(u, u + 4);
            }
        }
    }
    Csr::from_edge_list(el)
}

#[test]
fn csr_round_trips_edge_list() {
    let g = grid4();
    assert_eq!(g.n(), 16);
    assert_eq!(g.m(), 24);
    // Adjacency is symmetric and matches the grid structure.
    for (u, v) in g.edges() {
        assert!(g.has_edge(u, v) && g.has_edge(v, u));
        let (du, dv) = (u.abs_diff(v) % 4, u.abs_diff(v) / 4);
        assert!(
            (du == 1 && dv == 0) || (du == 0 && dv == 1),
            "edge ({u}, {v})"
        );
    }
    // Corner, edge and interior degrees.
    assert_eq!(g.degree(0), 2);
    assert_eq!(g.degree(1), 3);
    assert_eq!(g.degree(5), 4);
}

#[test]
fn bfs_distances_match_manhattan_on_grid() {
    let g = grid4();
    let dist = bfs::distances(&g, 0);
    for r in 0..4u32 {
        for c in 0..4u32 {
            assert_eq!(dist[(4 * r + c) as usize], r + c, "node ({r}, {c})");
        }
    }
    let path = bfs::path(&g, 0, 15).expect("grid is connected");
    assert_eq!(path.len() as u32, dist[15] + 1);
    assert_eq!((path[0], *path.last().unwrap()), (0, 15));
    for w in path.windows(2) {
        assert!(g.has_edge(w[0], w[1]));
    }
}

#[test]
fn dijkstra_with_unit_weights_equals_bfs() {
    let g = grid4();
    let hop = bfs::distances(&g, 5);
    let weighted = dijkstra::distances(&g, 5, |_, _| 1.0);
    for u in 0..16 {
        assert_eq!(hop[u] as f64, weighted[u], "node {u}");
    }
}

#[test]
fn components_and_unionfind_agree_on_disconnected_graph() {
    // Two triangles plus an isolated node.
    let mut el = EdgeList::new(7);
    for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        el.add(u, v);
    }
    let g = Csr::from_edge_list(el);
    let comps = components::connected_components(&g);
    let mut uf = UnionFind::new(7);
    for (u, v) in g.edges() {
        uf.union(u, v);
    }
    for u in 0..7u32 {
        for v in 0..7u32 {
            assert_eq!(comps.same(u, v), uf.connected(u, v), "pair ({u}, {v})");
        }
    }
    let far = bfs::distances(&g, 0);
    assert_eq!(far[6], UNREACHABLE);
    assert_eq!(far[3], UNREACHABLE);
}
