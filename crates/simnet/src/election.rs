//! Distributed leader election on region cliques.
//!
//! The paper's `electLeader` runs "any distributed leader election algorithm
//! on a complete graph topology since all the nodes within a region can talk
//! to each other" (citing Singh '92). We simulate the canonical one-round
//! variant: every candidate announces its id to its region-mates; everyone
//! then deterministically agrees on the minimum id. Messages are real engine
//! messages, so the clique assumption is *checked*, not assumed — a
//! candidate pair out of radio range panics the engine.

use crate::engine::Engine;
use std::collections::HashMap;

/// Announcement message: (group key, candidate id).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Announce<K: Clone> {
    pub group: K,
    pub id: u32,
}

/// Run leader election simultaneously in every group. `groups` maps a key
/// to the candidate ids of that group (each candidate knows its own key
/// locally — region identification is free, per Fig. 7 step 2).
///
/// Returns the elected leader per group (min id). Costs one communication
/// round and `Σ_g |g|·(|g|−1)` messages.
pub fn elect_leaders<K: Clone + Eq + std::hash::Hash + Ord>(
    engine: &mut Engine<Announce<K>>,
    groups: &HashMap<K, Vec<u32>>,
) -> HashMap<K, u32> {
    // Announcement round: each candidate unicasts to every group-mate.
    for (key, members) in groups {
        for &u in members {
            for &v in members {
                if u != v {
                    engine.send(
                        u,
                        v,
                        Announce {
                            group: key.clone(),
                            id: u,
                        },
                    );
                }
            }
        }
    }
    engine.deliver_round();
    // Decision: every member computes min(self, heard ids); by clique
    // completeness all members agree. We verify agreement node by node.
    let mut leaders = HashMap::new();
    for (key, members) in groups {
        let mut agreed: Option<u32> = None;
        for &u in members {
            let mut best = u;
            for (_, msg) in engine.inbox(u) {
                if msg.group == *key && msg.id < best {
                    best = msg.id;
                }
            }
            match agreed {
                None => agreed = Some(best),
                Some(prev) => assert_eq!(
                    prev, best,
                    "election disagreement in a group: clique assumption broken"
                ),
            }
        }
        if let Some(leader) = agreed {
            leaders.insert(key.clone(), leader);
        }
    }
    leaders
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_graph::{Csr, EdgeList};

    fn clique(n: usize) -> Csr {
        let mut el = EdgeList::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                el.add(u, v);
            }
        }
        Csr::from_edge_list(el)
    }

    #[test]
    fn single_group_elects_minimum() {
        let g = clique(5);
        let mut e = Engine::new(&g);
        let mut groups = HashMap::new();
        groups.insert("r", vec![3, 1, 4]);
        let leaders = elect_leaders(&mut e, &groups);
        assert_eq!(leaders["r"], 1);
        // 3 candidates → 6 messages, 1 round.
        assert_eq!(e.stats().sent, 6);
        assert_eq!(e.stats().rounds, 1);
    }

    #[test]
    fn multiple_disjoint_groups_run_in_parallel() {
        let g = clique(8);
        let mut e = Engine::new(&g);
        let mut groups = HashMap::new();
        groups.insert(0u8, vec![0, 2, 4]);
        groups.insert(1u8, vec![1, 7]);
        groups.insert(2u8, vec![5]);
        let leaders = elect_leaders(&mut e, &groups);
        assert_eq!(leaders[&0], 0);
        assert_eq!(leaders[&1], 1);
        assert_eq!(leaders[&2], 5, "singleton elects itself with no messages");
        assert_eq!(e.stats().rounds, 1, "all groups share the round");
        assert_eq!(e.stats().sent, 6 + 2);
    }

    #[test]
    fn empty_groups_yield_no_leaders() {
        let g = clique(3);
        let mut e: Engine<Announce<u8>> = Engine::new(&g);
        let groups: HashMap<u8, Vec<u32>> = HashMap::new();
        assert!(elect_leaders(&mut e, &groups).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a radio edge")]
    fn non_clique_group_is_detected() {
        // Path graph: 0 and 2 are not neighbours, election must panic.
        let mut el = EdgeList::new(3);
        el.add(0, 1);
        el.add(1, 2);
        let g = Csr::from_edge_list(el);
        let mut e = Engine::new(&g);
        let mut groups = HashMap::new();
        groups.insert((), vec![0, 2]);
        elect_leaders(&mut e, &groups);
    }
}
