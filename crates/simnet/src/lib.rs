//! # wsn-simnet
//!
//! A message-level simulator for the paper's *distributed* algorithms —
//! property P4 (local computability) made executable.
//!
//! The centralised builders in `wsn-core` compute what the network should
//! look like; this crate simulates how the nodes themselves build it:
//!
//! * [`engine`] — a synchronous-round message-passing engine over a radio
//!   graph, with per-node message accounting.
//! * [`election`] — distributed leader election on region cliques (the
//!   paper's `electLeader`, citing Singh '92 for complete networks).
//! * [`construct`] — the Fig. 7 construction protocol: region
//!   identification from GPS position, leader election, and `connect`
//!   handshakes, all through radio messages.
//! * [`route`] — the Fig. 9 routing algorithm with message-level
//!   accounting of probes and data forwarding.
//! * [`energy`] — a first-order radio energy model (`d^β` amplifier +
//!   per-message electronics) applied to the message log.
//! * [`fault`] — node-failure injection and rebuild/reroute analysis.
//! * [`churn`] — the epoch-driven lifetime simulation: traffic drains
//!   batteries, nodes die and join, and the topology is repaired in place
//!   (incrementally for the plain graphs, by rebuild for SENS).
//! * [`serve`] — the always-on topology service: epoch-versioned snapshot
//!   publication (RCU-style) so many reader threads query the graph while
//!   the churn repair splices the next epoch in place.
//!
//! The headline test (`construct::tests` and the cross-crate integration
//! tests) is that the distributed protocol reconstructs *exactly* the same
//! network as the centralised builder on the same deployment.

pub mod churn;
pub mod construct;
pub mod election;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod route;
pub mod serve;

pub use churn::{
    simulate_lifetime_plain, simulate_lifetime_sens, ChurnConfig, ChurnModel, EpochReport,
    LifetimeReport, RenewalPolicy, RepairMode, RoutePolicy, SensKind,
};
pub use construct::{distributed_build_udg, DistributedBuild, ShardAccounting};
pub use engine::{Engine, MsgStats};
pub use route::{route_packet, route_packet_with_path, SimRouteOutcome};
pub use serve::{run_replay, run_serve, RouteCache, ServeConfig, ServeReport, Snapshot};
