//! Failure injection.
//!
//! Sensor nodes die; the paper's resilience story is that the construction
//! only needs the *density of surviving useful nodes* to stay high — dead
//! nodes are re-elected around at the next maintenance epoch. We model an
//! epoch-based repair: kill a node set, re-run the (centralised) builder on
//! the survivors, and compare connectivity and delivery before and after.

use rand::RngExt;
use wsn_core::params::UdgSensParams;
use wsn_core::subgraph::SensNetwork;
use wsn_core::tilegrid::TileGrid;
use wsn_core::udg::build_udg_sens;
use wsn_pointproc::{rng_from_seed, PointSet};

/// Kill each node independently with probability `p_fail`. Returns the
/// surviving deployment and the old→new id map (`u32::MAX` = dead).
pub fn random_failures(points: &PointSet, p_fail: f64, seed: u64) -> (PointSet, Vec<u32>) {
    assert!((0.0..=1.0).contains(&p_fail));
    let mut rng = rng_from_seed(seed);
    let alive: Vec<bool> = (0..points.len())
        .map(|_| rng.random::<f64>() >= p_fail)
        .collect();
    let mut survivors = points.clone();
    let map = survivors.retain_with_map(|i, _| alive[i as usize]);
    (survivors, map)
}

/// Rebuild the SENS network after failures (one maintenance epoch).
pub fn rebuild_after_failures(
    survivors: &PointSet,
    params: UdgSensParams,
    grid: TileGrid,
) -> SensNetwork {
    build_udg_sens(survivors, params, grid).expect("params validated before failure run")
}

/// Fraction of sampled good-tile pairs that remain deliverable.
pub fn delivery_rate(net: &SensNetwork, pairs: usize, seed: u64) -> f64 {
    let cores: Vec<wsn_perc::Site> = net
        .lattice
        .sites()
        .filter(|&s| {
            net.lattice.is_open(s) && net.rep_of(s).map(|r| net.is_member(r)).unwrap_or(false)
        })
        .collect();
    if cores.len() < 2 {
        return 0.0;
    }
    let mut rng = rng_from_seed(seed);
    let mut delivered = 0usize;
    let mut tried = 0usize;
    for _ in 0..pairs {
        let a = cores[rng.random_range(0..cores.len())];
        let b = cores[rng.random_range(0..cores.len())];
        if a == b {
            continue;
        }
        tried += 1;
        let (_, path) = net.route(a, b);
        if path.is_some() {
            delivered += 1;
        }
    }
    if tried == 0 {
        0.0
    } else {
        delivered as f64 / tried as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_pointproc::sample_poisson_window;

    fn deployment(seed: u64, side: f64, lambda: f64) -> (PointSet, TileGrid, UdgSensParams) {
        let params = UdgSensParams::strict_default();
        let grid = TileGrid::fit(side, params.tile_side);
        let window = grid.covered_area();
        let pts = sample_poisson_window(&mut rng_from_seed(seed), lambda, &window);
        (pts, grid, params)
    }

    #[test]
    fn failure_map_is_consistent() {
        let (pts, _, _) = deployment(1, 10.0, 20.0);
        let (survivors, map) = random_failures(&pts, 0.3, 5);
        assert_eq!(map.len(), pts.len());
        let alive = map.iter().filter(|&&m| m != u32::MAX).count();
        assert_eq!(alive, survivors.len());
        for (old, &new) in map.iter().enumerate() {
            if new != u32::MAX {
                assert_eq!(survivors.get(new), pts.get(old as u32));
            }
        }
        // ~30% should have died (loose band).
        let frac = 1.0 - alive as f64 / pts.len() as f64;
        assert!((frac - 0.3).abs() < 0.1, "failure fraction {frac}");
    }

    #[test]
    fn zero_failure_changes_nothing() {
        let (pts, grid, params) = deployment(2, 12.0, 30.0);
        let (survivors, _) = random_failures(&pts, 0.0, 9);
        let before = build_udg_sens(&pts, params, grid.clone()).unwrap();
        let after = rebuild_after_failures(&survivors, params, grid);
        assert_eq!(before.lattice, after.lattice);
        assert_eq!(before.summary().edges, after.summary().edges);
    }

    #[test]
    fn goodness_degrades_monotonically_with_failures() {
        let (pts, grid, params) = deployment(3, 16.0, 30.0);
        let mut last = usize::MAX;
        for p_fail in [0.0, 0.4, 0.8] {
            let (survivors, _) = random_failures(&pts, p_fail, 7);
            let net = rebuild_after_failures(&survivors, params, grid.clone());
            let good = net.lattice.open_count();
            assert!(
                good <= last,
                "good tiles increased after more failures: {good} > {last}"
            );
            last = good;
        }
        assert!(last < grid.tile_count(), "80% failures must hurt");
    }

    #[test]
    fn delivery_survives_moderate_failures() {
        let (pts, grid, params) = deployment(4, 18.0, 40.0);
        let (survivors, _) = random_failures(&pts, 0.2, 11);
        let net = rebuild_after_failures(&survivors, params, grid);
        // λ_eff = 32 is still far above λ_s ≈ 18: the rebuilt network must
        // still deliver within its core.
        let rate = delivery_rate(&net, 60, 13);
        assert!(rate > 0.95, "delivery rate {rate}");
    }

    /// P1 audit across the failure spectrum: whatever fraction of nodes
    /// dies mid-construction, the epoch rebuild on the survivors is still a
    /// SENS network — max degree ≤ 4, every required link present, and the
    /// elected subgraph a subgraph of the survivors' UDG.
    #[test]
    fn mid_construction_failures_preserve_p1_degree_audit() {
        let (pts, grid, params) = deployment(6, 14.0, 35.0);
        for (i, p_fail) in [0.05, 0.25, 0.5, 0.75, 0.95].into_iter().enumerate() {
            let (survivors, _) = random_failures(&pts, p_fail, 100 + i as u64);
            let net = rebuild_after_failures(&survivors, params, grid.clone());
            let stats = net.degree_stats();
            assert!(
                stats.max <= 4,
                "P1 violated at p_fail {p_fail}: max degree {}",
                stats.max
            );
            assert_eq!(
                net.missing_links, 0,
                "strict geometry must always link (p_fail {p_fail})"
            );
            let udg = wsn_rgg::build_udg(&survivors, params.radius);
            for (u, v) in net.graph.edges() {
                assert!(
                    udg.has_edge(u, v),
                    "edge ({u},{v}) not in the survivors' UDG at p_fail {p_fail}"
                );
            }
        }
    }

    /// The audit holds per epoch under repeated partial failures — the
    /// maintenance story: kill, rebuild, kill again, rebuild again.
    #[test]
    fn repeated_failure_epochs_keep_the_audit() {
        let (pts, grid, params) = deployment(7, 12.0, 40.0);
        let mut alive = pts;
        for epoch in 0..3u64 {
            let (survivors, _) = random_failures(&alive, 0.3, 200 + epoch);
            let net = rebuild_after_failures(&survivors, params, grid.clone());
            assert!(net.degree_stats().max <= 4, "epoch {epoch}");
            assert_eq!(net.missing_links, 0, "epoch {epoch}");
            alive = survivors;
        }
        // Three rounds of 30% loss: density λ·0.7³ ≈ 13.7 < λ_s — the
        // lattice must have visibly degraded even though P1 held.
        let final_net = rebuild_after_failures(&alive, params, grid);
        assert!(final_net.lattice.open_fraction() < 0.6);
    }

    #[test]
    fn heavy_failures_break_delivery() {
        let (pts, grid, params) = deployment(5, 18.0, 25.0);
        let (survivors, _) = random_failures(&pts, 0.8, 17);
        // λ_eff = 5 ≪ λ_s: the rebuilt lattice is subcritical.
        let net = rebuild_after_failures(&survivors, params, grid);
        assert!(
            net.lattice.open_fraction() < 0.3,
            "open fraction {}",
            net.lattice.open_fraction()
        );
    }
}
