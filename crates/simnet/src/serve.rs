//! The always-on topology service: epoch-snapshot reads over a churning
//! network.
//!
//! Everything else in the repo is batch — build, churn, report. This
//! module is the read path the paper's topologies exist to power: a
//! long-running loop that keeps an [`IncrementalGraph`] live under a churn
//! schedule while many client threads query it concurrently.
//!
//! ## Snapshot model (RCU)
//!
//! The writer owns the graph. Each epoch it selects deaths and joins with
//! the *same* `Population` schedule the batch engine uses, splices the
//! repair in place, then captures an immutable [`Snapshot`] — chunked CSR,
//! alive state, component labels, fingerprint, and the repair's dirty
//! extents — and publishes it through a [`wsn_graph::EpochPublisher`].
//! Readers pin an epoch guard and never block on the splice: while the
//! writer mutates the live graph for epoch *e+1*, readers keep serving
//! epoch *e* from the pinned capture. A superseded snapshot retires when
//! its last guard drops, so resident snapshots stay bounded (the soak test
//! pins this).
//!
//! ## Query engine
//!
//! Four query kinds run against a pinned snapshot: route between two
//! nearby nodes (BFS over the snapshot CSR), k nearest *alive* sensors,
//! coverage at a probe point, and component/giant membership. Routes go
//! through a per-client LRU cache; at each epoch boundary the cache is
//! swept by the repair's dirty extents — an entry survives promotion to
//! the new epoch only if no node of its path lies inside any dirty extent
//! *and* every hop still exists in the new snapshot (k-NN straggler edges
//! can move without local churn, so the extent test alone is not a proof).
//! A served route is therefore always *valid* on the pinned snapshot,
//! though a promoted one may be stale-optimal.
//!
//! ## Determinism contract
//!
//! Every query is a pure function of `(seed, epoch, client, query)`, each
//! client's cache is touched only by that client's queries in query order,
//! and each client is owned by exactly one reader thread. Per-client
//! answer digests are therefore byte-identical across reader-thread
//! counts *and* equal to [`run_replay`], the single-threaded oracle that
//! drives the same engine code serially — the differential suite in
//! `tests/serve_concurrency.rs` pins exactly this.

use std::time::Instant;

use serde::Serialize;

use crate::churn::{cold_sharded_rebuild, pick, u01, ChurnConfig, Population};
use wsn_geom::hash::{derive_seed, derive_seed2, mix64};
use wsn_geom::{Aabb, Point};
use wsn_graph::components::connected_components;
use wsn_graph::{fingerprint, ChunkedCsr, EpochPublisher, GraphView, SnapshotStats, UNREACHABLE};
use wsn_pointproc::PointSet;
use wsn_rgg::{IncTopology, IncrementalGraph};
use wsn_spatial::GridIndex;

/// Seed stream of the query workload (distinct from the churn engine's
/// TRAFFIC/FAIL/BLAST streams so serving never perturbs the schedule).
mod stream {
    pub const QUERY: u64 = 0x14;
}

/// FNV offset basis — the digest accumulator's starting value.
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Configuration of one serve run.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Churn schedule (epochs, failure model, join rate, battery).
    /// `traffic_per_epoch` is ignored: serve reads never debit batteries,
    /// which is what lets serve fingerprints match a zero-traffic batch
    /// run of the same schedule.
    pub churn: ChurnConfig,
    /// Reader threads. 0 is rejected; 1 still exercises the full
    /// publish/pin machinery.
    pub readers: usize,
    /// Query clients, partitioned over readers by `client % readers`.
    pub clients: usize,
    /// Queries per client per epoch.
    pub queries_per_client: usize,
    /// Route destinations are sampled among alive nodes within this radius
    /// of the source (keeps early-exit BFS cost bounded at any scale).
    pub route_radius: f64,
    /// Coverage probes ask for an alive sensor within this radius.
    pub coverage_radius: f64,
    /// k of a k-NN query is drawn from `1..=knn_max`.
    pub knn_max: usize,
    /// Per-client LRU route-cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Route-source hot set: 0 draws sources uniformly over the alive
    /// population; `h > 0` draws them from the first `min(h, alive)` alive
    /// ids — the gateway/sink traffic model under which a bounded LRU can
    /// actually accumulate hits at deployment scale.
    pub hot_routes: usize,
    /// Base seed of the whole run (churn + queries).
    pub seed: u64,
}

impl ServeConfig {
    /// A serve run with the headline knobs set and query-shape defaults.
    pub fn new(churn: ChurnConfig, readers: usize, clients: usize, queries: usize) -> Self {
        assert!(readers >= 1, "need at least one reader thread");
        assert!(clients >= 1, "need at least one client");
        ServeConfig {
            churn,
            readers,
            clients,
            queries_per_client: queries,
            route_radius: 3.0,
            coverage_radius: 1.0,
            knn_max: 8,
            cache_capacity: 32,
            hot_routes: 0,
            seed: 0,
        }
    }
}

/// One epoch's immutable published state: everything a reader needs to
/// answer queries without touching the live graph.
#[derive(Clone, Debug)]
pub struct Snapshot {
    pub epoch: u64,
    /// The repaired adjacency in universe id space (dead nodes isolated).
    pub csr: ChunkedCsr,
    pub alive: Vec<bool>,
    /// Alive universe ids, ascending.
    pub alive_ids: Vec<u32>,
    /// Component label per universe node on `csr`.
    pub comp_label: Vec<u32>,
    /// Label of the giant (largest) component; `u32::MAX` when empty.
    pub giant_label: u32,
    /// Semantic fingerprint of `csr` — asserted equal to the live graph's
    /// post-splice fingerprint at capture (the batch `graph_hash` channel).
    pub fingerprint: u64,
    /// Merged padded extents of the repair that produced this epoch —
    /// the route-cache invalidation footprint.
    pub dirty_extents: Vec<Aabb>,
}

impl Snapshot {
    /// Capture the published view of `g` after its epoch repair. Asserts
    /// the capture's fingerprint equals the live post-splice graph's — the
    /// channel-sharing contract between serve mode and batch mode.
    pub fn capture(epoch: u64, g: &IncrementalGraph) -> Snapshot {
        let csr = g.graph().clone();
        let fp = fingerprint(&csr);
        assert_eq!(
            fp,
            fingerprint(g.graph()),
            "published snapshot fingerprint diverged from the live \
             post-splice graph at epoch {epoch}"
        );
        let comps = connected_components(&csr);
        let giant = comps.largest();
        let giant_label = giant.first().map_or(u32::MAX, |&u| comps.label[u as usize]);
        let alive = g.alive().to_vec();
        let alive_ids: Vec<u32> = (0..alive.len() as u32)
            .filter(|&u| alive[u as usize])
            .collect();
        Snapshot {
            epoch,
            csr,
            alive,
            alive_ids,
            comp_label: comps.label,
            giant_label,
            fingerprint: fp,
            dirty_extents: g.dirty_extents().to_vec(),
        }
    }

    /// Whether every hop of `path` exists on this snapshot and every node
    /// is alive — the promotion check for cached routes.
    pub fn path_valid(&self, path: &[u32]) -> bool {
        if path.iter().any(|&u| !self.alive[u as usize]) {
            return false;
        }
        path.windows(2).all(|w| self.csr.has_edge(w[0], w[1]))
    }
}

/// One cached route.
#[derive(Clone, Debug)]
struct CacheEntry {
    src: u32,
    dst: u32,
    path: Vec<u32>,
    /// Epoch the entry is valid for (bumped by promotion).
    epoch: u64,
}

/// A small deterministic LRU of routes, owned by one client.
///
/// Entries are keyed `(src, dst)`; the epoch tag records the snapshot the
/// path was last validated against. [`RouteCache::advance_epoch`] is the
/// invalidation rule the proptests pin: an entry is promoted to the new
/// epoch only if no node of its path lies inside any dirty extent and the
/// whole path is still valid on the new snapshot.
#[derive(Clone, Debug, Default)]
pub struct RouteCache {
    cap: usize,
    /// MRU-first order; linear scan is deterministic and fine at serve
    /// cache sizes (≤ a few dozen entries).
    entries: Vec<CacheEntry>,
    /// Snapshot fingerprint the cache was last advanced against — the
    /// quiescence witness: an epoch with no dirty extents *and* an
    /// unchanged fingerprint cannot invalidate any resident path.
    last_fingerprint: Option<u64>,
}

impl RouteCache {
    pub fn new(cap: usize) -> Self {
        RouteCache {
            cap,
            entries: Vec::new(),
            last_fingerprint: None,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a route for `(src, dst)`, refreshing its LRU position.
    pub fn get(&mut self, src: u32, dst: u32) -> Option<&[u32]> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.src == src && e.dst == dst)?;
        let entry = self.entries.remove(pos);
        self.entries.insert(0, entry);
        Some(&self.entries[0].path)
    }

    /// Insert a freshly computed route, evicting the LRU tail at capacity.
    pub fn insert(&mut self, src: u32, dst: u32, path: Vec<u32>, epoch: u64) {
        if self.cap == 0 {
            return;
        }
        self.entries.retain(|e| !(e.src == src && e.dst == dst));
        self.entries.insert(
            0,
            CacheEntry {
                src,
                dst,
                path,
                epoch,
            },
        );
        self.entries.truncate(self.cap);
    }

    /// Epoch-boundary sweep: drop every entry whose path touches a dirty
    /// extent or no longer validates on the new snapshot; promote the
    /// survivors to `epoch`.
    ///
    /// `fingerprint` is the new snapshot's semantic graph fingerprint.
    /// When the epoch is *quiescent* — no dirty extents and a fingerprint
    /// equal to the one this cache last advanced against — the graph the
    /// resident paths were validated on is unchanged, so the whole
    /// `still_valid` replay (a BFS-backed path walk per entry) is skipped
    /// and every entry is promoted as-is. The first advance a cache ever
    /// sees never takes the shortcut: its entries were inserted against an
    /// unwitnessed snapshot.
    pub fn advance_epoch(
        &mut self,
        epoch: u64,
        fingerprint: u64,
        dirty: &[Aabb],
        points: &PointSet,
        mut still_valid: impl FnMut(&[u32]) -> bool,
    ) {
        let quiescent = dirty.is_empty() && self.last_fingerprint == Some(fingerprint);
        self.last_fingerprint = Some(fingerprint);
        if quiescent {
            for e in &mut self.entries {
                debug_assert!(e.epoch < epoch, "promotion must move forward");
                e.epoch = epoch;
            }
            return;
        }
        self.entries.retain_mut(|e| {
            debug_assert!(e.epoch < epoch, "promotion must move forward");
            let crosses = e
                .path
                .iter()
                .any(|&u| dirty.iter().any(|x| x.contains(points.get(u))));
            if crosses || !still_valid(&e.path) {
                return false;
            }
            e.epoch = epoch;
            true
        });
    }

    /// Entries whose path has a node inside any of `dirty` — must be zero
    /// after [`RouteCache::advance_epoch`] with those extents (pinned by
    /// the cache proptest).
    pub fn paths_crossing(&self, dirty: &[Aabb], points: &PointSet) -> usize {
        self.entries
            .iter()
            .filter(|e| {
                e.path
                    .iter()
                    .any(|&u| dirty.iter().any(|x| x.contains(points.get(u))))
            })
            .count()
    }

    /// The epoch tags of the resident entries (test observability).
    pub fn epochs(&self) -> Vec<u64> {
        self.entries.iter().map(|e| e.epoch).collect()
    }
}

/// Reusable BFS workspace (stamped visited array: no O(n) clear per
/// query). One per reader thread; results are independent of which
/// scratch instance served a query.
struct BfsScratch {
    parent: Vec<u32>,
    stamp: Vec<u64>,
    mark: u64,
    queue: Vec<u32>,
}

impl BfsScratch {
    fn new(n: usize) -> Self {
        BfsScratch {
            parent: vec![UNREACHABLE; n],
            stamp: vec![0; n],
            mark: 0,
            queue: Vec::new(),
        }
    }

    /// Early-exit BFS path, identical order to [`wsn_graph::bfs::path`]
    /// (FIFO over ascending adjacency): same path, amortised O(visited).
    fn path<G: GraphView + ?Sized>(&mut self, g: &G, src: u32, dst: u32) -> Option<Vec<u32>> {
        if src == dst {
            return Some(vec![src]);
        }
        self.mark += 1;
        let mark = self.mark;
        self.queue.clear();
        self.stamp[src as usize] = mark;
        self.parent[src as usize] = src;
        self.queue.push(src);
        let mut head = 0;
        let mut found = false;
        'outer: while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for &v in g.neighbors(u) {
                if self.stamp[v as usize] != mark {
                    self.stamp[v as usize] = mark;
                    self.parent[v as usize] = u;
                    if v == dst {
                        found = true;
                        break 'outer;
                    }
                    self.queue.push(v);
                }
            }
        }
        if !found {
            return None;
        }
        let mut p = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = self.parent[cur as usize];
            p.push(cur);
        }
        p.reverse();
        Some(p)
    }
}

/// Per-client query state: the route cache plus the running answer digest.
struct ClientState {
    cache: RouteCache,
    digest: u64,
    cache_hits: u64,
    cache_lookups: u64,
    errors: u64,
}

impl ClientState {
    fn new(cap: usize) -> Self {
        ClientState {
            cache: RouteCache::new(cap),
            digest: DIGEST_SEED,
            cache_hits: 0,
            cache_lookups: 0,
            errors: 0,
        }
    }

    fn absorb(&mut self, word: u64) {
        self.digest = mix64(self.digest ^ word);
    }
}

/// Fold a path into one digest word (length + node sequence).
fn path_word(path: Option<&[u32]>) -> u64 {
    match path {
        None => 0x6e6f_726f_7574_6500, // "no route"
        Some(p) => {
            let mut d = DIGEST_SEED ^ p.len() as u64;
            for &u in p {
                d = mix64(d ^ u as u64);
            }
            d
        }
    }
}

/// What one run of the service produced.
#[derive(Clone, Debug, Serialize)]
pub struct ServeReport {
    pub epochs: u64,
    pub readers: usize,
    pub clients: usize,
    /// Queries answered (all kinds, all clients, all epochs).
    pub queries: u64,
    /// Queries that could not be evaluated (empty alive population).
    pub errors: u64,
    pub cache_hits: u64,
    pub cache_lookups: u64,
    /// Wall-clock of the whole run (epoch loop + readers).
    pub wall_secs: f64,
    /// Sustained queries per second over the run's wall clock.
    pub qps: f64,
    pub p50_us: f64,
    pub p99_us: f64,
    /// Post-repair fingerprint per epoch — equal to the batch engine's
    /// `graph_hash` channel for the same `(universe, kind, churn, seed)`.
    pub epoch_fingerprints: Vec<u64>,
    /// Per-client answer digests, index = client id. The differential
    /// suite's byte-identity witness.
    pub client_digests: Vec<u64>,
    /// All client digests folded in client order.
    pub answer_digest: u64,
    pub deaths_total: u64,
    pub joins_total: u64,
    pub final_alive: u64,
    /// Snapshot accounting at quiescence (publisher dropped, guards gone).
    pub snapshots_published: u64,
    pub snapshots_retired: u64,
    /// Peak resident snapshots observed at any publish point — the soak
    /// test's no-leak bound.
    pub max_live_snapshots: u64,
}

/// Output of one reader thread: the states of its clients plus latencies.
struct ReaderOutput {
    /// `(client id, final state)` for every client this reader owned.
    clients: Vec<(usize, ClientState)>,
    latency_ns: Vec<u64>,
}

/// Run one client's queries for one epoch against a pinned snapshot.
/// Shared verbatim by the concurrent serve loop and the replay oracle —
/// byte-identity between them is identity of *inputs*, not luck.
#[allow(clippy::too_many_arguments)]
fn run_client_epoch(
    snap: &Snapshot,
    index: &GridIndex,
    points: &PointSet,
    window: &Aabb,
    cfg: &ServeConfig,
    client: usize,
    state: &mut ClientState,
    scratch: &mut BfsScratch,
    latency_ns: &mut Vec<u64>,
) {
    // Promote / evict cached routes across the epoch boundary. Epoch 0
    // starts with an empty cache, so `advance_epoch` is vacuous there.
    // Quiescent epochs (no dirty extents, unchanged fingerprint) skip the
    // per-entry path replay entirely.
    state.cache.advance_epoch(
        snap.epoch,
        snap.fingerprint,
        &snap.dirty_extents,
        points,
        |p| snap.path_valid(p),
    );
    let cseed = derive_seed2(
        derive_seed(cfg.seed, stream::QUERY),
        snap.epoch,
        client as u64,
    );
    let mut in_disk = Vec::new();
    for qi in 0..cfg.queries_per_client as u64 {
        let h = derive_seed2(cseed, qi, 0);
        let t0 = Instant::now();
        if snap.alive_ids.is_empty() {
            state.errors += 1;
            state.absorb(0xdead);
            latency_ns.push(t0.elapsed().as_nanos() as u64);
            continue;
        }
        // Kind mix: routes dominate (they are what the cache serves).
        match h % 6 {
            0..=2 => {
                // Route between a node and a nearby alive node.
                let pool = if cfg.hot_routes > 0 {
                    cfg.hot_routes.min(snap.alive_ids.len())
                } else {
                    snap.alive_ids.len()
                };
                let src = snap.alive_ids[pick(derive_seed2(cseed, qi, 1), pool)];
                in_disk.clear();
                index.in_disk(points.get(src), cfg.route_radius, &mut in_disk);
                in_disk.retain(|&u| snap.alive[u as usize] && u != src);
                in_disk.sort_unstable();
                let dst = if in_disk.is_empty() {
                    src
                } else {
                    in_disk[pick(derive_seed2(cseed, qi, 2), in_disk.len())]
                };
                state.cache_lookups += 1;
                let word = if let Some(path) = state.cache.get(src, dst) {
                    state.cache_hits += 1;
                    path_word(Some(path))
                } else {
                    let path = scratch.path(&snap.csr, src, dst);
                    let w = path_word(path.as_deref());
                    if let Some(p) = path {
                        state.cache.insert(src, dst, p, snap.epoch);
                    }
                    w
                };
                state.absorb(word);
            }
            3 => {
                // k nearest alive sensors to a probe point.
                let q = sample_point(window, derive_seed2(cseed, qi, 3));
                let k = 1 + (derive_seed2(cseed, qi, 4) % cfg.knn_max.max(1) as u64) as usize;
                let ids = k_nearest_alive(index, points, &snap.alive, q, k, cfg.coverage_radius);
                let mut d = DIGEST_SEED ^ ids.len() as u64;
                for &u in &ids {
                    d = mix64(d ^ u as u64);
                }
                state.absorb(d);
            }
            4 => {
                // Coverage: alive sensors within the sensing radius of a
                // probe point.
                let q = sample_point(window, derive_seed2(cseed, qi, 5));
                let mut covered = 0u64;
                index.for_each_in_disk(q, cfg.coverage_radius, |u, _| {
                    if snap.alive[u as usize] {
                        covered += 1;
                    }
                });
                state.absorb(mix64(0xc0_0e1a ^ covered));
            }
            _ => {
                // Component / giant membership of a random alive pair.
                let u = snap.alive_ids[pick(derive_seed2(cseed, qi, 6), snap.alive_ids.len())];
                let v = snap.alive_ids[pick(derive_seed2(cseed, qi, 7), snap.alive_ids.len())];
                let same = (snap.comp_label[u as usize] == snap.comp_label[v as usize]) as u64;
                let giant = (snap.comp_label[u as usize] == snap.giant_label) as u64;
                state.absorb(mix64(0x91a27 ^ (same << 1) ^ giant));
            }
        }
        latency_ns.push(t0.elapsed().as_nanos() as u64);
    }
}

/// Uniform point in `window` from one hash word.
fn sample_point(window: &Aabb, h: u64) -> Point {
    Point::new(
        window.min.x + window.width() * u01(derive_seed2(h, 0, 0)),
        window.min.y + window.height() * u01(derive_seed2(h, 0, 1)),
    )
}

/// k nearest *alive* sensors by expanding-ring search over the universe
/// index (ties broken by id; fully deterministic).
fn k_nearest_alive(
    index: &GridIndex,
    points: &PointSet,
    alive: &[bool],
    q: Point,
    k: usize,
    r0: f64,
) -> Vec<u32> {
    let mut r = r0.max(1e-9);
    let diag = {
        let bb = index.points().bounding_box();
        bb.map_or(1.0, |b| b.width().hypot(b.height()))
    };
    let mut ids: Vec<u32> = Vec::new();
    loop {
        ids.clear();
        index.for_each_in_disk(q, r, |u, _| {
            if alive[u as usize] {
                ids.push(u);
            }
        });
        if ids.len() >= k || r > diag {
            break;
        }
        r *= 2.0;
    }
    let mut with_d: Vec<(f64, u32)> = ids.iter().map(|&u| (q.dist_sq(points.get(u)), u)).collect();
    with_d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    with_d.truncate(k);
    with_d.into_iter().map(|(_, u)| u).collect()
}

/// All-readers-done-with-epoch barrier (writer side of the lockstep).
struct EpochBarrier {
    done: std::sync::Mutex<Vec<usize>>,
    cond: std::sync::Condvar,
}

impl EpochBarrier {
    fn new(epochs: usize) -> Self {
        EpochBarrier {
            done: std::sync::Mutex::new(vec![0; epochs]),
            cond: std::sync::Condvar::new(),
        }
    }

    fn reader_done(&self, epoch: u64) {
        let mut done = self.done.lock().unwrap();
        done[epoch as usize] += 1;
        drop(done);
        self.cond.notify_all();
    }

    fn wait_all_done(&self, epoch: u64, readers: usize) {
        let mut done = self.done.lock().unwrap();
        while done[epoch as usize] < readers {
            done = self.cond.wait(done).unwrap();
        }
    }
}

/// Run the service: writer repairs and publishes, `cfg.readers` threads
/// serve the query workload. See module docs for the concurrency model.
pub fn run_serve(
    points: &PointSet,
    initial_alive: &[bool],
    kind: IncTopology,
    cfg: &ServeConfig,
) -> ServeReport {
    run_service(points, initial_alive, kind, cfg, true)
}

/// The single-threaded oracle: identical schedule, identical engine code,
/// clients executed serially in id order on the writer thread. The
/// differential suite asserts `run_serve` output is byte-identical.
pub fn run_replay(
    points: &PointSet,
    initial_alive: &[bool],
    kind: IncTopology,
    cfg: &ServeConfig,
) -> ServeReport {
    run_service(points, initial_alive, kind, cfg, false)
}

fn run_service(
    points: &PointSet,
    initial_alive: &[bool],
    kind: IncTopology,
    cfg: &ServeConfig,
    concurrent: bool,
) -> ServeReport {
    assert_eq!(points.len(), initial_alive.len());
    assert!(cfg.readers >= 1, "need at least one reader thread");
    assert!(cfg.clients >= 1, "need at least one client");
    assert!(cfg.churn.epochs >= 1, "need at least one epoch");
    let epochs = cfg.churn.epochs;
    let window = points.bounding_box().unwrap_or_else(|| Aabb::square(1.0));
    let cell = cfg.route_radius.max(cfg.coverage_radius).max(1e-9);
    let index = GridIndex::build(points, cell);

    let mut g = IncrementalGraph::build(
        points.clone(),
        initial_alive.to_vec(),
        kind,
        cfg.churn.repair_tiles,
    );
    let mut pop = Population::new(points.len(), initial_alive, cfg.churn.battery);
    let publisher: EpochPublisher<Snapshot> = EpochPublisher::new();
    let barrier = EpochBarrier::new(epochs);

    let mut epoch_fingerprints = Vec::with_capacity(epochs);
    let (mut deaths_total, mut joins_total) = (0u64, 0u64);
    let mut max_live = 0u64;
    let started = Instant::now();

    let mut reader_outputs: Vec<ReaderOutput> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        if concurrent {
            for r in 0..cfg.readers {
                let handle = publisher.handle();
                let barrier = &barrier;
                let index = &index;
                let cfg_ref = cfg;
                handles.push(scope.spawn(move || {
                    let mut scratch = BfsScratch::new(points.len());
                    let mut clients: Vec<(usize, ClientState)> = (0..cfg_ref.clients)
                        .filter(|c| c % cfg_ref.readers == r)
                        .map(|c| (c, ClientState::new(cfg_ref.cache_capacity)))
                        .collect();
                    let mut latency_ns = Vec::new();
                    for epoch in 0..epochs as u64 {
                        let guard = handle
                            .wait_for(epoch)
                            .expect("publisher outlives the reader loop");
                        // The barrier guarantees the writer cannot have
                        // published past the epoch we are waiting on.
                        assert_eq!(guard.epoch(), epoch, "reader skipped an epoch");
                        for (c, state) in clients.iter_mut() {
                            run_client_epoch(
                                &guard,
                                index,
                                points,
                                &window,
                                cfg_ref,
                                *c,
                                state,
                                &mut scratch,
                                &mut latency_ns,
                            );
                        }
                        drop(guard);
                        barrier.reader_done(epoch);
                    }
                    ReaderOutput {
                        clients,
                        latency_ns,
                    }
                }));
            }
        }

        // Replay-mode client states, driven inline on the writer thread.
        let mut replay_clients: Vec<ClientState> = if concurrent {
            Vec::new()
        } else {
            (0..cfg.clients)
                .map(|_| ClientState::new(cfg.cache_capacity))
                .collect()
        };
        let mut replay_scratch = BfsScratch::new(if concurrent { 0 } else { points.len() });
        let mut replay_latency = Vec::new();

        for epoch in 0..epochs as u64 {
            let (deaths, _, _) =
                pop.select_deaths(points, g.alive(), &window, &cfg.churn, cfg.seed, epoch);
            let (joins, _) = pop.admit_joins(deaths.len(), &cfg.churn);
            deaths_total += deaths.len() as u64;
            joins_total += joins.len() as u64;
            // The splice below runs while readers are still serving the
            // previous epoch from their pinned guards — reads never block
            // on repair.
            g.apply_churn(&deaths, &joins);
            if cfg.churn.verify {
                assert!(
                    g.verify_cold(),
                    "incremental repair diverged from cold rebuild at epoch {epoch}"
                );
            }
            let snap = Snapshot::capture(epoch, &g);
            epoch_fingerprints.push(snap.fingerprint);
            if concurrent {
                if epoch > 0 {
                    // Lockstep: nobody may still be reading epoch-1 when
                    // its successor is published, so every reader sees
                    // every epoch exactly once.
                    barrier.wait_all_done(epoch - 1, cfg.readers);
                }
                publisher.publish(epoch, snap);
                max_live = max_live.max(publisher.stats().live_snapshots());
            } else {
                for (c, state) in replay_clients.iter_mut().enumerate() {
                    run_client_epoch(
                        &snap,
                        &index,
                        points,
                        &window,
                        cfg,
                        c,
                        state,
                        &mut replay_scratch,
                        &mut replay_latency,
                    );
                }
                max_live = 1;
            }
        }
        if concurrent {
            barrier.wait_all_done(epochs as u64 - 1, cfg.readers);
            for h in handles {
                reader_outputs.push(h.join().expect("reader thread panicked"));
            }
        } else {
            reader_outputs.push(ReaderOutput {
                clients: replay_clients.into_iter().enumerate().collect(),
                latency_ns: replay_latency,
            });
        }
    });
    let wall_secs = started.elapsed().as_secs_f64();

    // Quiesce: drop the publisher so the final snapshot retires, then read
    // the accounting (guards are gone — the readers joined).
    let handle = publisher.handle();
    drop(publisher);
    let stats: SnapshotStats = handle.stats();

    // Merge per-client results in client-id order (digest order must not
    // depend on the reader partition).
    let mut client_digests = vec![0u64; cfg.clients];
    let (mut cache_hits, mut cache_lookups, mut errors) = (0u64, 0u64, 0u64);
    let mut latency_ns: Vec<u64> = Vec::new();
    for out in &mut reader_outputs {
        for (c, state) in &out.clients {
            client_digests[*c] = state.digest;
            cache_hits += state.cache_hits;
            cache_lookups += state.cache_lookups;
            errors += state.errors;
        }
        latency_ns.append(&mut out.latency_ns);
    }
    let mut answer_digest = DIGEST_SEED;
    for &d in &client_digests {
        answer_digest = mix64(answer_digest ^ d);
    }
    latency_ns.sort_unstable();
    let pct = |q: f64| -> f64 {
        if latency_ns.is_empty() {
            return 0.0;
        }
        let i = ((latency_ns.len() - 1) as f64 * q).round() as usize;
        latency_ns[i] as f64 / 1_000.0
    };
    let queries = (cfg.clients * cfg.queries_per_client * epochs) as u64;
    let final_alive = g.n_alive() as u64;

    ServeReport {
        epochs: epochs as u64,
        readers: if concurrent { cfg.readers } else { 1 },
        clients: cfg.clients,
        queries,
        errors,
        cache_hits,
        cache_lookups,
        wall_secs,
        qps: if wall_secs > 0.0 {
            queries as f64 / wall_secs
        } else {
            0.0
        },
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        epoch_fingerprints,
        client_digests,
        answer_digest,
        deaths_total,
        joins_total,
        final_alive,
        snapshots_published: stats.published,
        snapshots_retired: stats.retired,
        max_live_snapshots: max_live,
    }
}

/// Compare a serve run's per-epoch fingerprints against a batch lifetime
/// run's `graph_hash` channel (convenience for the regression test and
/// the `serve --verify` CLI path): both must walk identical topologies
/// when given the same `(universe, kind, churn, seed)`.
pub fn fingerprints_match_batch(
    report: &ServeReport,
    batch: &crate::churn::LifetimeReport,
) -> bool {
    report.epoch_fingerprints.len() == batch.epochs.len()
        && report
            .epoch_fingerprints
            .iter()
            .zip(&batch.epochs)
            .all(|(fp, e)| *fp == e.graph_hash)
}

/// Cold reference for the snapshot capture (tests): the captured CSR must
/// fingerprint-match a cold sharded rebuild of the same alive set.
pub fn cold_fingerprint(points: &PointSet, alive: &[bool], kind: IncTopology) -> u64 {
    fingerprint(&cold_sharded_rebuild(points, alive, kind))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnModel;
    use wsn_pointproc::{rng_from_seed, sample_poisson_window};

    fn universe(seed: u64, side: f64, lambda: f64, reserve: f64) -> (PointSet, Vec<bool>) {
        let pts = sample_poisson_window(&mut rng_from_seed(seed), lambda, &Aabb::square(side));
        let n = pts.len();
        let deployed = n - (reserve * n as f64).round() as usize;
        (pts, (0..n).map(|i| i < deployed).collect())
    }

    fn small_cfg(epochs: usize, readers: usize) -> ServeConfig {
        let mut churn = ChurnConfig::new(epochs, 1e9, 0, 0.08, 1.0);
        churn.churn_model = ChurnModel::Clustered { radius: 1.5 };
        churn.verify = false;
        let mut cfg = ServeConfig::new(churn, readers, 6, 12);
        cfg.seed = 0xABCD;
        cfg
    }

    #[test]
    fn serve_matches_replay_on_a_small_network() {
        let (pts, alive) = universe(11, 8.0, 18.0, 0.2);
        let cfg = small_cfg(3, 4);
        let kind = IncTopology::Udg { radius: 1.0 };
        let serve = run_serve(&pts, &alive, kind, &cfg);
        let replay = run_replay(&pts, &alive, kind, &cfg);
        assert_eq!(serve.client_digests, replay.client_digests);
        assert_eq!(serve.answer_digest, replay.answer_digest);
        assert_eq!(serve.epoch_fingerprints, replay.epoch_fingerprints);
        assert_eq!(serve.cache_hits, replay.cache_hits);
        assert_eq!(serve.errors, 0);
        assert_eq!(serve.queries, (6 * 12 * 3) as u64);
    }

    #[test]
    fn serve_snapshot_accounting_is_leak_free() {
        let (pts, alive) = universe(12, 8.0, 18.0, 0.2);
        let cfg = small_cfg(4, 2);
        let r = run_serve(&pts, &alive, IncTopology::Rng { radius: 1.0 }, &cfg);
        assert_eq!(r.snapshots_published, 4);
        assert_eq!(
            r.snapshots_retired, r.snapshots_published,
            "every snapshot must retire at quiescence"
        );
        assert!(
            r.max_live_snapshots <= 2,
            "lockstep keeps residency bounded"
        );
        assert!(r.qps > 0.0);
    }

    #[test]
    fn serve_fingerprints_equal_zero_traffic_batch_run() {
        let (pts, alive) = universe(13, 8.0, 16.0, 0.25);
        let cfg = small_cfg(3, 2);
        let kind = IncTopology::Udg { radius: 1.0 };
        let serve = run_serve(&pts, &alive, kind, &cfg);
        let mut batch_cfg = cfg.churn;
        batch_cfg.traffic_per_epoch = 0;
        let batch = crate::churn::simulate_lifetime_plain(&pts, &alive, kind, &batch_cfg, cfg.seed);
        assert!(fingerprints_match_batch(&serve, &batch));
    }

    #[test]
    fn route_cache_serves_hits_within_an_epoch() {
        let (pts, alive) = universe(14, 4.0, 2.5, 0.0);
        let mut cfg = small_cfg(2, 1);
        cfg.churn.p_fail = 0.0; // stable pairs: cross-epoch promotion hits too
        cfg.queries_per_client = 300; // enough route repeats to collide
        cfg.cache_capacity = 512;
        cfg.clients = 2;
        let r = run_serve(&pts, &alive, IncTopology::Udg { radius: 1.0 }, &cfg);
        assert!(r.cache_lookups > 0);
        assert!(r.cache_hits > 0, "repeated nearby routes must hit the LRU");
    }

    #[test]
    fn cache_disabled_still_matches_replay() {
        let (pts, alive) = universe(15, 6.0, 20.0, 0.1);
        let mut cfg = small_cfg(2, 3);
        cfg.cache_capacity = 0;
        let kind = IncTopology::Knn { k: 4 };
        let serve = run_serve(&pts, &alive, kind, &cfg);
        let replay = run_replay(&pts, &alive, kind, &cfg);
        assert_eq!(serve.answer_digest, replay.answer_digest);
        assert_eq!(serve.cache_hits, 0);
    }

    #[test]
    fn k_nearest_alive_orders_by_distance_then_id() {
        let mut pts = PointSet::with_capacity(4);
        pts.push(Point::new(0.0, 0.0));
        pts.push(Point::new(1.0, 0.0));
        pts.push(Point::new(0.0, 1.0)); // same distance as id 1
        pts.push(Point::new(5.0, 5.0));
        let index = GridIndex::build(&pts, 1.0);
        let alive = vec![true, true, true, true];
        let got = k_nearest_alive(&index, &pts, &alive, Point::new(0.0, 0.0), 3, 0.5);
        assert_eq!(got, vec![0, 1, 2]);
        let dead = vec![false, true, true, true];
        let got = k_nearest_alive(&index, &pts, &dead, Point::new(0.0, 0.0), 2, 0.5);
        assert_eq!(got, vec![1, 2]);
    }
}
